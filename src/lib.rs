//! Umbrella crate for the Cycloid reproduction suite.
//!
//! Re-exports the public surface of every member crate so the examples and
//! integration tests can use a single dependency:
//!
//! * [`cycloid`] — the paper's contribution: a constant-degree DHT
//!   emulating cube-connected cycles;
//! * [`chord`], [`koorde`], [`viceroy`] — the baseline DHTs of the
//!   evaluation, plus [`pastry`] and [`can`] (the hypercube and mesh
//!   representatives of Table 1, built as extensions);
//! * [`ccc`] — the cube-connected-cycles graph substrate;
//! * [`dht_core`] — shared identifiers, traces, statistics and the
//!   [`dht_core::Overlay`] trait;
//! * [`dht_sim`] — the experiment harness regenerating every table and
//!   figure;
//! * [`kvstore`] — a replicated key-value storage layer over any overlay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use can;
pub use ccc;
pub use chord;
pub use cycloid;
pub use dht_core;
pub use dht_sim;
pub use koorde;
pub use kvstore;
pub use pastry;
pub use viceroy;

/// Everything a typical example needs, in one import.
pub mod prelude {
    pub use can::{CanConfig, CanNetwork};
    pub use chord::{ChordConfig, ChordNetwork};
    pub use cycloid::{CycloidConfig, CycloidId, CycloidNetwork, Dim};
    pub use dht_core::audit::{AuditReport, AuditScope, AuditViolation, StateAudit};
    pub use dht_core::hash::hash_str;
    pub use dht_core::lookup::{HopPhase, LookupOutcome, LookupTrace};
    pub use dht_core::net::{DelayModel, FaultPlan, NetConditions, NetCosts, RetryPolicy};
    pub use dht_core::overlay::{key_counts, NodeToken, Overlay};
    pub use dht_core::stats::Summary;
    pub use dht_sim::{build_overlay, OverlayKind, PAPER_KINDS};
    pub use koorde::{KoordeConfig, KoordeNetwork};
    pub use kvstore::KvStore;
    pub use pastry::{PastryConfig, PastryNetwork};
    pub use viceroy::{ViceroyConfig, ViceroyNetwork};
}
