//! Property-based tests of CAN's geometric invariants.

use can::{CanConfig, CanNetwork, Zone};
use dht_core::lookup::LookupOutcome;
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zones_always_tile_the_torus(seed in any::<u64>(), count in 1usize..120, dims in 1usize..=3) {
        let net = CanNetwork::with_nodes(CanConfig::new(dims), count, seed);
        prop_assert_eq!(net.tiling_holes(200), 0);
        let total: u128 = net
            .tokens()
            .iter()
            .map(|&t| net.node(t).unwrap().volume())
            .sum();
        prop_assert_eq!(total, u128::from(net.config().side()).pow(dims as u32));
    }

    #[test]
    fn churn_preserves_the_tiling(seed in any::<u64>(), steps in 1usize..40) {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 40, seed);
        let mut rng = stream(seed, "can-churn-prop");
        for _ in 0..steps {
            if rng.gen_bool(0.5) {
                let _ = net.join_random_point();
            } else if net.node_count() > 2 {
                let toks = net.tokens();
                net.leave(toks[(rng.gen::<u64>() % toks.len() as u64) as usize]);
            }
        }
        prop_assert_eq!(net.tiling_holes(200), 0);
        // Every lookup still resolves.
        let toks = net.tokens();
        for i in 0..10 {
            let t = net.route(toks[i % toks.len()], rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn crash_plus_takeover_restores_tiling(seed in any::<u64>(), crashes in 1usize..10) {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 50, seed);
        let mut rng = stream(seed, "can-crash-prop");
        for _ in 0..crashes {
            if net.node_count() > 2 {
                let toks = net.tokens();
                net.fail_node(toks[(rng.gen::<u64>() % toks.len() as u64) as usize]);
            }
        }
        net.stabilize_takeover();
        prop_assert_eq!(net.tiling_holes(200), 0);
        let toks = net.tokens();
        for i in 0..10 {
            let t = net.route(toks[i % toks.len()], rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn split_preserves_containment(lo in 0u64..100, sx in 2u64..64, sy in 2u64..64, px in 0u64..64, py in 0u64..64) {
        let zone = Zone {
            lo: vec![lo, lo],
            hi: vec![lo + sx, lo + sy],
        };
        let p = vec![lo + px % sx, lo + py % sy];
        prop_assert!(zone.contains(&p));
        if let Some((a, b)) = zone.split() {
            prop_assert!(a.contains(&p) ^ b.contains(&p));
            prop_assert_eq!(a.volume() + b.volume(), zone.volume());
        }
    }

    #[test]
    fn point_mapping_is_deterministic_and_in_range(raw in any::<u64>(), dims in 1usize..=4) {
        let net = CanNetwork::with_nodes(CanConfig::new(dims), 4, 1);
        let p1 = net.point_of(raw);
        let p2 = net.point_of(raw);
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(p1.len(), dims);
        for &c in &p1 {
            prop_assert!(c < net.config().side());
        }
    }
}
