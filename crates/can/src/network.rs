//! The simulated CAN: membership, zone splitting/takeover, greedy torus
//! routing, and stabilization.

use crate::index::ZoneIndex;
use crate::zone::{Point, Zone};
use dht_core::hash::{reduce, splitmix64};
use dht_core::lookup::{HopPhase, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::RngCore;

/// Configuration of a CAN deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanConfig {
    /// Number of torus dimensions `d` (CAN's original evaluation uses 2
    /// by default).
    pub dims: usize,
    /// Bits per coordinate: each dimension has side `2^bits_per_dim`.
    pub bits_per_dim: u32,
}

impl CanConfig {
    /// A `d`-dimensional torus with 16-bit coordinates.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!((1..=8).contains(&dims), "dims must be in [1, 8]");
        Self {
            dims,
            bits_per_dim: 16,
        }
    }

    /// Side length of each dimension.
    #[must_use]
    pub fn side(&self) -> u64 {
        1u64 << self.bits_per_dim
    }
}

/// One CAN node: a token plus the zones it currently owns (one after a
/// plain join; several after takeovers).
#[derive(Debug, Clone)]
pub struct CanNode {
    /// Opaque node token.
    pub token: u64,
    /// Owned zones (disjoint boxes).
    pub zones: Vec<Zone>,
}

impl CanNode {
    /// Total owned volume.
    #[must_use]
    pub fn volume(&self) -> u128 {
        self.zones.iter().map(Zone::volume).sum()
    }
}

/// The walk state of one CAN lookup: the target point on the torus.
#[derive(Debug, Clone)]
pub struct CanWalk {
    /// Torus point the lookup is routing towards.
    pub point: Point,
}

/// A simulated CAN network.
#[derive(Debug, Clone)]
pub struct CanNetwork {
    config: CanConfig,
    pub(crate) members: Membership<CanNode>,
    /// Zones whose owner crashed, awaiting takeover by the stabilizer.
    pub(crate) orphans: Vec<Zone>,
    /// Dyadic index of the current tiling: point location and neighbour
    /// sweeps in `O(depth)` instead of a full membership scan. Mirrors
    /// the zone lists exactly on every protocol transition; the
    /// `index_matches_membership_scans_under_churn` test pins the
    /// equivalence against the original scan formulations.
    pub(crate) index: ZoneIndex,
}

impl CanNetwork {
    /// Creates a network with a single founding node owning the whole
    /// torus.
    #[must_use]
    pub fn bootstrap(config: CanConfig, seed: u64) -> Self {
        let mut members = Membership::new(seed);
        let token = members.next_raw();
        let founder = CanNode {
            token,
            zones: vec![Zone::full(config.dims, config.side())],
        };
        members.insert(token, founder);
        let mut index = ZoneIndex::new(config.dims, config.bits_per_dim);
        index.insert_root(token);
        Self {
            config,
            members,
            orphans: Vec::new(),
            index,
        }
    }

    /// Builds a network of `count` nodes by repeated protocol joins.
    #[must_use]
    pub fn with_nodes(config: CanConfig, count: usize, seed: u64) -> Self {
        assert!(count >= 1);
        let mut net = Self::bootstrap(config, seed);
        while net.node_count() < count {
            net.join_random_point()
                .expect("space has room for another split");
        }
        net
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> CanConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `token` is live.
    #[must_use]
    pub fn is_live(&self, token: u64) -> bool {
        self.members.contains(token)
    }

    /// Live node tokens in ascending token order.
    #[must_use]
    pub fn tokens(&self) -> Vec<u64> {
        self.members.tokens()
    }

    /// Read access to one node.
    #[must_use]
    pub fn node(&self, token: u64) -> Option<&CanNode> {
        self.members.get(token)
    }

    /// Exclusive access to one node — for the audit tests, which inject
    /// corruptions the protocol itself never produces.
    #[cfg(test)]
    pub(crate) fn node_mut(&mut self, token: u64) -> Option<&mut CanNode> {
        self.members.get_mut(token)
    }

    /// Zones orphaned by crashes, awaiting takeover.
    pub(crate) fn orphan_zones(&self) -> &[Zone] {
        &self.orphans
    }

    /// Maps a raw key to its point on the torus (one derived coordinate
    /// per dimension).
    #[must_use]
    pub fn point_of(&self, raw_key: u64) -> Point {
        (0..self.config.dims)
            .map(|k| {
                reduce(
                    splitmix64(raw_key ^ (0xC0FFEEu64 + k as u64)),
                    self.config.side(),
                )
            })
            .collect()
    }

    /// The live owner of `point`, if its zone is not orphaned.
    #[must_use]
    pub fn owner_of_point(&self, point: &[u64]) -> Option<u64> {
        // Point location through the dyadic index; the tiling invariant
        // makes the covering zone unique, so this agrees with the
        // original scan over every live node's zone list.
        self.index.locate(point).1
    }

    /// Tokens of the nodes whose zones abut any of `token`'s zones, in
    /// ascending token order.
    #[must_use]
    pub fn neighbors_of(&self, token: u64) -> Vec<u64> {
        let me = match self.members.get(token) {
            Some(n) => n,
            None => return Vec::new(),
        };
        let mut slots = Vec::new();
        for zone in &me.zones {
            self.index.face_owners(zone, &mut slots);
        }
        // Orphaned zones (owner `None`) and the node's own zones drop
        // out, exactly like the membership scan they replace.
        let mut nbrs: Vec<u64> = slots
            .into_iter()
            .flatten()
            .filter(|&t| t != token)
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs
    }

    /// Protocol join: a random point is drawn, the zone containing it is
    /// split, and the newcomer takes the half containing the point.
    /// Returns `None` when every zone has unit volume.
    pub fn join_random_point(&mut self) -> Option<u64> {
        let raw = self.members.next_raw();
        let point = self.point_of(raw);
        self.join_at(&point)
    }

    /// Protocol join at an explicit point.
    pub fn join_at(&mut self, point: &[u64]) -> Option<u64> {
        let owner = self.owner_of_point(point)?;
        let owner_node = self.members.get_mut(owner).expect("owner is live");
        let zone_idx = owner_node
            .zones
            .iter()
            .position(|z| z.contains(point))
            .expect("owner contains the point");
        let parent = owner_node.zones[zone_idx].clone();
        let (lower, upper) = parent.split()?;
        let newcomer_zone = if lower.contains(point) {
            lower.clone()
        } else {
            upper.clone()
        };
        let keeper_zone = if lower.contains(point) { upper } else { lower };
        owner_node.zones[zone_idx] = keeper_zone.clone();
        let token = self.members.next_raw();
        self.members.insert(
            token,
            CanNode {
                token,
                zones: vec![newcomer_zone.clone()],
            },
        );
        self.index
            .split(&parent, (&keeper_zone, owner), (&newcomer_zone, token));
        Some(token)
    }

    /// Graceful departure: the leaver hands all its zones to its
    /// smallest-volume neighbour (real CAN's takeover, without the later
    /// defragmentation — the successor may own several boxes).
    pub fn leave(&mut self, token: u64) -> bool {
        if !self.is_live(token) || self.members.len() == 1 {
            return false;
        }
        let heirs = self.neighbors_of(token);
        let node = self.members.remove(token).expect("checked live");
        let heir = heirs
            .into_iter()
            .filter(|t| self.is_live(*t))
            .min_by_key(|&t| (self.members.get(t).expect("live").volume(), t));
        match heir {
            Some(h) => {
                for zone in &node.zones {
                    self.index.set_owner(zone, Some(h));
                }
                self.members
                    .get_mut(h)
                    .expect("heir is live")
                    .zones
                    .extend(node.zones);
            }
            None => {
                for zone in &node.zones {
                    self.index.set_owner(zone, None);
                }
                self.orphans.extend(node.zones);
            }
        }
        true
    }

    /// Ungraceful failure: the zones are orphaned until [`CanNetwork::stabilize_takeover`].
    pub fn fail_node(&mut self, token: u64) -> bool {
        if !self.is_live(token) || self.members.len() == 1 {
            return false;
        }
        let node = self.members.remove(token).expect("checked live");
        for zone in &node.zones {
            self.index.set_owner(zone, None);
        }
        self.orphans.extend(node.zones);
        true
    }

    /// The takeover protocol: each orphaned zone is adopted by the live
    /// node with the smallest volume among those abutting it.
    pub fn stabilize_takeover(&mut self) {
        let orphans = std::mem::take(&mut self.orphans);
        let mut slots = Vec::new();
        for zone in orphans {
            // Candidates via the face sweep: the live owners of every
            // zone abutting the orphan, including zones adopted earlier
            // in this same pass (their index owner is already updated).
            // The scan's `contains(zone.lo)` clause is unreachable on an
            // exact tiling — only the orphan itself covers its corner.
            slots.clear();
            self.index.face_owners(&zone, &mut slots);
            let adopter = slots
                .iter()
                .copied()
                .flatten()
                .min_by_key(|&t| (self.members.get(t).expect("live").volume(), t))
                .or_else(|| self.members.first_token());
            match adopter {
                Some(t) => {
                    self.index.set_owner(&zone, Some(t));
                    self.members.get_mut(t).expect("live").zones.push(zone);
                }
                None => self.orphans.push(zone), // empty network
            }
        }
    }

    /// Minimum torus distance from any of `token`'s zones to `point`.
    fn zone_dist(&self, token: u64, point: &[u64]) -> u64 {
        let side = self.config.side();
        self.members
            .get(token)
            .map(|n| {
                n.zones
                    .iter()
                    .map(|z| z.torus_distance(point, side))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .unwrap_or(u64::MAX)
    }

    /// One lookup from `src` towards the point of `raw_key`: greedy
    /// forwarding to the neighbour whose zone is torus-closest to the
    /// target. All hops are tagged [`HopPhase::Finger`] (geometric
    /// forwarding has a single phase). Zone handover repairs adjacency
    /// eagerly, so lookups never time out.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let point = self.point_of(raw_key);
        walk_from(self, src, CanWalk { point }, true)
    }

    /// Validates the tiling invariant: every point belongs to exactly one
    /// zone (live or orphaned). Checks a probe grid rather than the whole
    /// space.
    #[must_use]
    pub fn tiling_holes(&self, probes: usize) -> usize {
        let side = self.config.side();
        let mut holes = 0;
        for i in 0..probes {
            let point: Point = (0..self.config.dims)
                .map(|k| reduce(splitmix64((i as u64) << 8 | k as u64), side))
                .collect();
            let owners = self
                .members
                .states()
                .flat_map(|n| &n.zones)
                .chain(&self.orphans)
                .filter(|z| z.contains(&point))
                .count();
            if owners != 1 {
                holes += 1;
            }
        }
        holes
    }
}

impl SimOverlay for CanNetwork {
    type State = CanNode;
    type Walk = CanWalk;

    fn membership(&self) -> &Membership<CanNode> {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership<CanNode> {
        &mut self.members
    }

    fn label(&self) -> String {
        format!("CAN(d={})", self.config.dims)
    }

    fn degree_limit(&self) -> Option<usize> {
        // O(d) on average, but irregular tilings have no hard per-node
        // bound; report unbounded like the other non-constant systems.
        None
    }

    /// One message per zone-abutting neighbour of the node's zones.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        (self.neighbors_of(node).len() as u64).max(1)
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        // No scalar identifier space; report the first coordinate.
        self.point_of(raw_key)[0]
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        self.owner_of_point(&self.point_of(raw_key))
    }

    fn hop_budget(&self) -> usize {
        let n = self.members.len().max(2) as f64;
        let d = self.config.dims as f64;
        (8.0 * d * n.powf(1.0 / d)) as usize + 64
    }

    fn begin_walk(&self, _src: NodeToken, raw_key: u64) -> CanWalk {
        CanWalk {
            point: self.point_of(raw_key),
        }
    }

    fn walk_owner(&self, walk: &CanWalk) -> Option<NodeToken> {
        self.owner_of_point(&walk.point)
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut CanWalk) -> StepDecision {
        let cur_dist = self.zone_dist(cur, &walk.point);
        if cur_dist == 0 {
            return StepDecision::Terminate;
        }
        let next = self
            .neighbors_of(cur)
            .into_iter()
            .map(|t| (self.zone_dist(t, &walk.point), t))
            .filter(|&(d, _)| d < cur_dist)
            .min();
        match next {
            Some((_, t)) => StepDecision::Forward(vec![(HopPhase::Finger, t)]),
            // Local minimum: the target zone is orphaned (or the greedy
            // frontier is blocked by a hole) — Stuck via `on_exhausted`.
            None => StepDecision::Forward(Vec::new()),
        }
    }

    fn budget_before_terminal(&self) -> bool {
        // Landing in the target zone ends the walk even on the last
        // budgeted hop (the original loop tested the zone first).
        false
    }

    fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        // Joins draw their point from the network's own deterministic
        // allocator, not the caller's churn stream.
        self.join_random_point()
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    fn node_fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize_network(&mut self) {
        self.stabilize_takeover();
    }

    fn stabilize_one(&mut self, _node: NodeToken) {
        // Takeover is a zone-level (not per-node) repair.
        self.stabilize_takeover();
    }

    fn state_heap_bytes(&self, state: &CanNode) -> usize {
        // Zone list plus each zone's coordinate vectors.
        state.zones.capacity() * std::mem::size_of::<Zone>()
            + state
                .zones
                .iter()
                .map(|z| (z.lo.capacity() + z.hi.capacity()) * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    fn aux_bytes(&self) -> usize {
        // The dyadic zone index plus the orphan list.
        self.index.heap_bytes()
            + self.orphans.capacity() * std::mem::size_of::<Zone>()
            + self
                .orphans
                .iter()
                .map(|z| (z.lo.capacity() + z.hi.capacity()) * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::LookupOutcome;
    use dht_core::rng::stream;
    use rand::Rng;

    #[test]
    fn with_nodes_tiles_the_torus() {
        let net = CanNetwork::with_nodes(CanConfig::new(2), 100, 1);
        assert_eq!(net.node_count(), 100);
        assert_eq!(net.tiling_holes(500), 0, "zones must tile exactly");
        let total: u128 = net
            .tokens()
            .iter()
            .map(|&t| net.node(t).unwrap().volume())
            .sum();
        assert_eq!(total, u128::from(net.config().side()).pow(2));
    }

    #[test]
    fn all_lookups_resolve() {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 128, 2);
        let toks = net.tokens();
        let mut rng = stream(3, "can");
        for i in 0..500 {
            let raw: u64 = rng.gen();
            let t = net.route(toks[i % toks.len()], raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(Some(t.terminal), net.owner_of_point(&net.point_of(raw)));
            assert_eq!(t.timeouts, 0, "zone handover repairs adjacency eagerly");
        }
    }

    #[test]
    fn path_length_scales_as_n_to_1_over_d() {
        // O(d n^{1/d}): quadrupling n in 2-d should roughly double paths.
        let mean = |n: usize| {
            let mut net = CanNetwork::with_nodes(CanConfig::new(2), n, 4);
            let toks = net.tokens();
            let mut rng = stream(5, "canlen");
            let mut total = 0usize;
            for i in 0..400 {
                total += net.route(toks[i % toks.len()], rng.gen()).path_len();
            }
            total as f64 / 400.0
        };
        let small = mean(64);
        let large = mean(256);
        assert!(
            large > small * 1.4 && large < small * 3.0,
            "scaling off: {small} -> {large}"
        );
    }

    #[test]
    fn graceful_leave_hands_zones_over() {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 50, 6);
        let toks = net.tokens();
        assert!(net.leave(toks[10]));
        assert_eq!(net.node_count(), 49);
        assert_eq!(net.tiling_holes(300), 0, "no holes after graceful leave");
        let mut rng = stream(7, "canleave");
        let toks = net.tokens();
        for i in 0..200 {
            let t = net.route(toks[i % toks.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn crash_orphans_zone_until_takeover() {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 60, 8);
        let toks = net.tokens();
        let victim = toks[30];
        assert!(net.fail_node(victim));
        // Lookups towards the orphaned zone get stuck...
        let mut rng = stream(9, "cancrash");
        let mut stuck = 0;
        for _ in 0..400 {
            let t = net.route(net.tokens()[0], rng.gen());
            if !t.outcome.is_success() {
                stuck += 1;
            }
        }
        assert!(stuck > 0, "orphaned zone must break some lookups");
        // ... until takeover adopts it.
        net.stabilize_takeover();
        assert_eq!(net.tiling_holes(300), 0);
        let mut rng = stream(9, "cancrash");
        for i in 0..400 {
            let t = net.route(net.tokens()[i % net.node_count()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    /// The original O(n) membership-scan formulation of
    /// [`CanNetwork::owner_of_point`], kept as the reference the zone
    /// index must reproduce.
    fn scan_owner_of_point(net: &CanNetwork, point: &[u64]) -> Option<u64> {
        net.members
            .states()
            .find(|n| n.zones.iter().any(|z| z.contains(point)))
            .map(|n| n.token)
    }

    /// The original O(n²)-ish membership-scan formulation of
    /// [`CanNetwork::neighbors_of`], sorted for comparison.
    fn scan_neighbors(net: &CanNetwork, token: u64) -> Vec<u64> {
        let side = net.config.side();
        let me = match net.members.get(token) {
            Some(n) => n,
            None => return Vec::new(),
        };
        let mut nbrs: Vec<u64> = net
            .members
            .iter()
            .filter(|&(other, _)| other != token)
            .filter(|(_, on)| {
                me.zones
                    .iter()
                    .any(|a| on.zones.iter().any(|b| a.abuts(b, side)))
            })
            .map(|(other, _)| other)
            .collect();
        nbrs.sort_unstable();
        nbrs
    }

    #[test]
    fn index_matches_membership_scans_under_churn() {
        for dims in [1usize, 2, 3] {
            let mut net = CanNetwork::with_nodes(CanConfig::new(dims), 40, 21 + dims as u64);
            let mut rng = stream(22, "canidx");
            for step in 0..60 {
                match step % 4 {
                    0 => {
                        net.join_random_point();
                    }
                    1 if net.node_count() > 2 => {
                        let toks = net.tokens();
                        net.leave(toks[rng.gen::<usize>() % toks.len()]);
                    }
                    2 if net.node_count() > 2 => {
                        let toks = net.tokens();
                        net.fail_node(toks[rng.gen::<usize>() % toks.len()]);
                    }
                    _ => net.stabilize_takeover(),
                }
                for &t in &net.tokens() {
                    assert_eq!(
                        net.neighbors_of(t),
                        scan_neighbors(&net, t),
                        "dims {dims} step {step} token {t}"
                    );
                }
                for probe in 0..16u64 {
                    let p = net.point_of(rng.gen::<u64>() ^ probe);
                    assert_eq!(
                        net.owner_of_point(&p),
                        scan_owner_of_point(&net, &p),
                        "dims {dims} step {step} point {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let net = CanNetwork::with_nodes(CanConfig::new(2), 40, 10);
        for &t in &net.tokens() {
            for nb in net.neighbors_of(t) {
                assert!(
                    net.neighbors_of(nb).contains(&t),
                    "adjacency must be symmetric"
                );
            }
        }
    }

    #[test]
    fn mean_degree_is_order_2d() {
        let net = CanNetwork::with_nodes(CanConfig::new(2), 200, 11);
        let mean: f64 = net
            .tokens()
            .iter()
            .map(|&t| net.neighbors_of(t).len() as f64)
            .sum::<f64>()
            / net.node_count() as f64;
        // 2-d CAN: ~2d = 4 neighbours on average (more for irregular
        // tilings, but bounded well below log n scales).
        assert!((3.0..=9.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn three_dimensional_torus_works() {
        let mut net = CanNetwork::with_nodes(CanConfig::new(3), 64, 12);
        assert_eq!(net.tiling_holes(300), 0);
        let toks = net.tokens();
        let mut rng = stream(13, "can3");
        for i in 0..300 {
            let t = net.route(toks[i % toks.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn trait_roundtrip() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> = Box::new(CanNetwork::with_nodes(CanConfig::new(2), 80, 1));
        assert_eq!(net.name(), "CAN(d=2)");
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[3], 777);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(777));
    }

    #[test]
    fn key_counts_sum_matches() {
        use dht_core::overlay::key_counts;
        use dht_core::workload;
        let net = CanNetwork::with_nodes(CanConfig::new(2), 60, 2);
        let keys = workload::key_population(2_000, &mut stream(3, "cank"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn churn_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 32, 4);
        let mut rng = stream(5, "canj");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert_eq!(net.len(), 33);
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 32);
    }
}
