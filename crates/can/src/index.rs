//! Dyadic zone index: constant-ish-time point location and neighbour
//! enumeration over the CAN tiling.
//!
//! Every zone in the network is produced by repeatedly halving the full
//! torus ([`Zone::split`] cuts the longest dimension, ties toward the
//! lowest index), so the set of boxes that can ever exist forms one fixed
//! binary-space partition: all zones after `k` splits are congruent, and
//! a zone is uniquely identified by `(split depth, lower corner)`. The
//! index keeps exactly one entry per *current* zone — keyed by that pair,
//! valued by the owning token (`None` while the zone is crash-orphaned) —
//! and answers two queries without touching the membership:
//!
//! * [`ZoneIndex::locate`]: descend the partition from the root towards a
//!   point, probing each depth's box, `O(depth)` hash lookups (depth ≤
//!   `dims · bits_per_dim`).
//! * [`ZoneIndex::face_owners`]: owners of every zone abutting a given
//!   zone, found by sweeping a one-cell-thick probe layer just outside
//!   each face (wrapping across the torus seam) and covering it with
//!   located zones via guillotine subtraction.
//!
//! Both reproduce the membership-scan formulations exactly on protocol
//! states: the index's entries tile the torus at every instant (splits
//! replace a parent with its two halves; departures only change owners),
//! so `locate` finds the unique covering zone, and the face sweep finds a
//! zone iff it touches the probed face and overlaps the zone's extent in
//! every other dimension — precisely [`Zone::abuts`]. The equivalence is
//! pinned against the scan formulations in `network.rs` tests.

use crate::zone::Zone;
use std::collections::HashMap;

/// Owner-or-orphan of one zone: the adopting token, or `None` between a
/// crash and the takeover stabilizer.
type Slot = Option<u64>;

/// The index: one entry per current zone of the tiling.
#[derive(Debug, Clone)]
pub(crate) struct ZoneIndex {
    dims: usize,
    side: u64,
    bits: u32,
    /// `(split depth, packed lower corner)` → owner.
    boxes: HashMap<(u8, u128), Slot>,
}

impl ZoneIndex {
    /// An empty index over a `dims`-dimensional torus with side
    /// `2^bits`. The packed-corner key needs `dims · bits ≤ 128`.
    pub(crate) fn new(dims: usize, bits: u32) -> Self {
        assert!(
            dims as u32 * bits <= 128,
            "zone index requires dims * bits_per_dim <= 128"
        );
        Self {
            dims,
            side: 1u64 << bits,
            bits,
            boxes: HashMap::new(),
        }
    }

    /// Packs a zone's lower corner into the key (bijective because every
    /// coordinate is below `2^bits`).
    fn key(&self, depth: u8, lo: &[u64]) -> (u8, u128) {
        let mut packed = 0u128;
        for (k, &c) in lo.iter().enumerate() {
            packed |= u128::from(c) << (k as u32 * self.bits);
        }
        (depth, packed)
    }

    /// Split depth of `zone`: volume exactly halves per split, so the
    /// depth is the log of its share of the full space.
    fn depth_of(&self, zone: &Zone) -> u8 {
        let full = u128::from(self.side).pow(self.dims as u32);
        let ratio = full / zone.volume();
        debug_assert!(ratio.is_power_of_two(), "zones come from halving");
        ratio.trailing_zeros() as u8
    }

    /// Registers the founding zone (the full torus).
    pub(crate) fn insert_root(&mut self, owner: u64) {
        let root = Zone::full(self.dims, self.side);
        self.boxes.insert(self.key(0, &root.lo), Some(owner));
    }

    /// Replaces `parent` with its two halves.
    pub(crate) fn split(&mut self, parent: &Zone, a: (&Zone, u64), b: (&Zone, u64)) {
        let depth = self.depth_of(parent);
        let removed = self.boxes.remove(&self.key(depth, &parent.lo));
        debug_assert!(removed.is_some(), "split of an unindexed zone");
        self.boxes.insert(self.key(depth + 1, &a.0.lo), Some(a.1));
        self.boxes.insert(self.key(depth + 1, &b.0.lo), Some(b.1));
    }

    /// Reassigns a zone's owner (`None` orphans it).
    pub(crate) fn set_owner(&mut self, zone: &Zone, owner: Slot) {
        let key = self.key(self.depth_of(zone), &zone.lo);
        let slot = self.boxes.get_mut(&key).expect("zone is indexed");
        *slot = owner;
    }

    /// The current zone containing `p` and its owner: descend the fixed
    /// partition from the root, probing each depth's box until the entry
    /// is found. The entries always tile the torus, so this cannot miss
    /// for in-range points.
    pub(crate) fn locate(&self, p: &[u64]) -> (Zone, Slot) {
        let mut cursor = Zone::full(self.dims, self.side);
        let mut depth = 0u8;
        loop {
            if let Some(&slot) = self.boxes.get(&self.key(depth, &cursor.lo)) {
                return (cursor, slot);
            }
            let (lower, upper) = cursor
                .split()
                .expect("index tiles the torus: some prefix box is an entry");
            cursor = if lower.contains(p) { lower } else { upper };
            depth += 1;
        }
    }

    /// Appends the owner of every zone abutting `zone` (in the
    /// [`Zone::abuts`] sense, torus wrap included) to `out`. Owners are
    /// *not* deduplicated, and orphaned zones contribute `None`.
    pub(crate) fn face_owners(&self, zone: &Zone, out: &mut Vec<Slot>) {
        for k in 0..self.dims {
            // One-cell-thick layers just outside the two faces of
            // dimension k, wrapped across the seam; each spans the zone's
            // own (half-open) extent in every other dimension, which is
            // exactly the plain-overlap requirement of `abuts`. When the
            // zone spans the full side, both probes land inside the zone
            // itself and contribute only its own owner, which callers
            // filter — consistent with the scan, where full-span
            // dimensions can never be the touching dimension.
            let coords = [
                zone.hi[k] % self.side,
                (zone.lo[k] + self.side - 1) % self.side,
            ];
            for c in coords {
                let mut region = zone.clone();
                region.lo[k] = c;
                region.hi[k] = c + 1;
                self.cover(region, out);
            }
        }
    }

    /// Covers `region` (a non-wrapping box) with located zones,
    /// appending each one's owner: locate the zone at the region's lower
    /// corner, subtract it, and recurse on the guillotine remainders.
    fn cover(&self, region: Zone, out: &mut Vec<Slot>) {
        let mut stack = vec![region];
        while let Some(mut r) = stack.pop() {
            let (zone, slot) = self.locate(&r.lo);
            out.push(slot);
            // The located zone contains r.lo, so its intersection with r
            // is anchored at r.lo; carve the remainder one axis at a
            // time.
            for k in 0..self.dims {
                let cut = zone.hi[k].min(r.hi[k]);
                if cut < r.hi[k] {
                    let mut rem = r.clone();
                    rem.lo[k] = cut;
                    stack.push(rem);
                    r.hi[k] = cut;
                }
            }
        }
    }

    /// Approximate heap footprint of the index: one slot per entry at
    /// the table's 7/8 load factor, entry size plus control bytes. The
    /// live capacity is deliberately not consulted — it depends on the
    /// map's reallocation history, while the accounting must be a pure
    /// function of the current tiling (the scale sweep's stdout table
    /// is diffed across `--jobs` values in CI).
    pub(crate) fn heap_bytes(&self) -> usize {
        let slots = (self.boxes.len() * 8).div_ceil(7);
        slots * (std::mem::size_of::<((u8, u128), Slot)>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_descends_to_split_zones() {
        let mut idx = ZoneIndex::new(2, 4);
        idx.insert_root(7);
        let root = Zone::full(2, 16);
        let (lower, upper) = root.split().unwrap();
        idx.split(&root, (&lower, 7), (&upper, 9));
        assert_eq!(idx.locate(&[0, 0]).1, Some(7));
        assert_eq!(idx.locate(&[8, 0]).1, Some(9));
        idx.set_owner(&upper, None);
        assert_eq!(idx.locate(&[15, 15]).1, None);
    }

    #[test]
    fn face_owners_sees_both_sides_and_wrap() {
        let mut idx = ZoneIndex::new(1, 4);
        idx.insert_root(1);
        let root = Zone::full(1, 16);
        let (a, b) = root.split().unwrap();
        idx.split(&root, (&a, 1), (&b, 2));
        let mut out = Vec::new();
        idx.face_owners(&a, &mut out);
        // b abuts a across the interior cut and across the torus seam.
        assert_eq!(out, vec![Some(2), Some(2)]);
    }
}
