//! Axis-aligned zones of the toroidal coordinate space, and the geometry
//! CAN routing needs: containment, adjacency (shared faces), splitting,
//! and torus distance.

use dht_core::ring::ring_dist;

/// A point of the `d`-dimensional torus: one coordinate per dimension,
/// each in `[0, side)`.
pub type Point = Vec<u64>;

/// An axis-aligned box `∏ [lo_i, hi_i)`. Zones never wrap internally
/// (they arise from repeated halving of the full space); adjacency wraps
/// across the torus seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    /// Inclusive lower corner.
    pub lo: Vec<u64>,
    /// Exclusive upper corner.
    pub hi: Vec<u64>,
}

impl Zone {
    /// The full space: `[0, side)` in every dimension.
    #[must_use]
    pub fn full(dims: usize, side: u64) -> Self {
        Self {
            lo: vec![0; dims],
            hi: vec![side; dims],
        }
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// `true` iff `p` lies inside this zone.
    #[must_use]
    pub fn contains(&self, p: &[u64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        p.iter()
            .zip(&self.lo)
            .zip(&self.hi)
            .all(|((&x, &lo), &hi)| x >= lo && x < hi)
    }

    /// Zone volume (product of side lengths).
    #[must_use]
    pub fn volume(&self) -> u128 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| u128::from(hi - lo))
            .product()
    }

    /// The longest dimension (ties towards the lowest index) — the split
    /// axis CAN uses to keep zones square-ish.
    #[must_use]
    pub fn longest_dim(&self) -> usize {
        (0..self.dims())
            .max_by_key(|&k| (self.hi[k] - self.lo[k], std::cmp::Reverse(k)))
            .expect("zones have at least one dimension")
    }

    /// Splits this zone in half along its longest dimension, returning
    /// `(lower half, upper half)`. Zones of volume 1 cannot split.
    #[must_use]
    pub fn split(&self) -> Option<(Zone, Zone)> {
        let k = self.longest_dim();
        let len = self.hi[k] - self.lo[k];
        if len < 2 {
            return None;
        }
        let mid = self.lo[k] + len / 2;
        let mut lower = self.clone();
        let mut upper = self.clone();
        lower.hi[k] = mid;
        upper.lo[k] = mid;
        Some((lower, upper))
    }

    /// `true` iff the two zones share a `(d-1)`-dimensional face on the
    /// torus with side length `side`: abutting (or wrapping) in exactly
    /// one dimension and overlapping in all others.
    #[must_use]
    pub fn abuts(&self, other: &Zone, side: u64) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        let mut touching_dim = false;
        for k in 0..self.dims() {
            let overlap = self.lo[k] < other.hi[k] && other.lo[k] < self.hi[k];
            if overlap {
                continue;
            }
            let touches = self.hi[k] == other.lo[k]
                || other.hi[k] == self.lo[k]
                || (self.hi[k] == side && other.lo[k] == 0)
                || (other.hi[k] == side && self.lo[k] == 0);
            if touches && !touching_dim {
                touching_dim = true;
            } else {
                return false; // disjoint in a second dimension, or a gap
            }
        }
        touching_dim
    }

    /// Minimal L1 torus distance from this zone to point `p`: per
    /// dimension, zero if the coordinate is covered, otherwise the
    /// shorter way around to the nearest edge.
    #[must_use]
    pub fn torus_distance(&self, p: &[u64], side: u64) -> u64 {
        debug_assert_eq!(p.len(), self.dims());
        (0..self.dims())
            .map(|k| {
                if p[k] >= self.lo[k] && p[k] < self.hi[k] {
                    0
                } else {
                    ring_dist(self.lo[k], p[k], side).min(ring_dist(self.hi[k] - 1, p[k], side))
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(lo: &[u64], hi: &[u64]) -> Zone {
        Zone {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        }
    }

    #[test]
    fn full_zone_contains_everything() {
        let full = Zone::full(2, 16);
        assert!(full.contains(&[0, 0]));
        assert!(full.contains(&[15, 15]));
        assert_eq!(full.volume(), 256);
    }

    #[test]
    fn split_halves_volume_and_tiles() {
        let full = Zone::full(2, 16);
        let (a, b) = full.split().unwrap();
        assert_eq!(a.volume() + b.volume(), full.volume());
        for p in [[0u64, 0], [7, 3], [8, 3], [15, 15]] {
            assert!(
                a.contains(&p) ^ b.contains(&p),
                "exactly one half owns {p:?}"
            );
        }
    }

    #[test]
    fn repeated_splits_stay_square_ish() {
        let mut zone = Zone::full(2, 16);
        for _ in 0..4 {
            let (a, _) = zone.split().unwrap();
            zone = a;
        }
        // After 4 splits of a 16x16 square: 4x4.
        assert_eq!(zone.hi[0] - zone.lo[0], 4);
        assert_eq!(zone.hi[1] - zone.lo[1], 4);
    }

    #[test]
    fn unit_zone_cannot_split() {
        let unit = z(&[3, 3], &[4, 4]);
        assert!(unit.split().is_none());
    }

    #[test]
    fn adjacency_shared_edge() {
        let a = z(&[0, 0], &[8, 8]);
        let b = z(&[8, 0], &[16, 8]);
        let c = z(&[8, 8], &[16, 16]);
        assert!(a.abuts(&b, 16), "share the x=8 edge");
        assert!(!a.abuts(&c, 16), "corner contact only");
        assert!(b.abuts(&c, 16), "share the y=8 edge");
    }

    #[test]
    fn adjacency_wraps_around_torus() {
        let left = z(&[0, 0], &[4, 16]);
        let right = z(&[12, 0], &[16, 16]);
        assert!(left.abuts(&right, 16), "wraps across the x seam");
    }

    #[test]
    fn torus_distance_basics() {
        let zone = z(&[4, 4], &[8, 8]);
        assert_eq!(zone.torus_distance(&[5, 5], 16), 0);
        assert_eq!(zone.torus_distance(&[10, 5], 16), 3); // to x edge 7
        assert_eq!(zone.torus_distance(&[15, 15], 16), 5 + 5); // wraps to lo corner
    }
}
