//! [`dht_core::Overlay`] adapter for the CAN baseline.

use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

use crate::network::CanNetwork;

impl Overlay for CanNetwork {
    fn name(&self) -> String {
        format!("CAN(d={})", self.config().dims)
    }

    fn len(&self) -> usize {
        self.node_count()
    }

    fn degree_bound(&self) -> Option<usize> {
        // O(d) on average, but irregular tilings have no hard per-node
        // bound; report unbounded like the other non-constant systems.
        None
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        self.tokens()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        let tokens = self.tokens();
        if tokens.is_empty() {
            return None;
        }
        Some(tokens[(rng.next_u64() % tokens.len() as u64) as usize])
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        // No scalar identifier space; report the first coordinate.
        self.point_of(raw_key)[0]
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        self.owner_of_point(&self.point_of(raw_key))
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        self.route(src, raw_key)
    }

    fn join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random_point()
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        CanNetwork::leave(self, node)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize(&mut self) {
        self.stabilize_takeover();
    }

    fn stabilize_node(&mut self, _node: NodeToken) {
        // Takeover is a zone-level (not per-node) repair.
        self.stabilize_takeover();
    }

    fn query_loads(&self) -> Vec<u64> {
        CanNetwork::query_loads(self)
    }

    fn reset_query_loads(&mut self) {
        CanNetwork::reset_query_loads(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CanConfig;
    use dht_core::overlay::key_counts;
    use dht_core::rng::stream;
    use dht_core::workload;

    #[test]
    fn trait_roundtrip() {
        let mut net: Box<dyn Overlay> = Box::new(CanNetwork::with_nodes(CanConfig::new(2), 80, 1));
        assert_eq!(net.name(), "CAN(d=2)");
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[3], 777);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(777));
    }

    #[test]
    fn key_counts_sum_matches() {
        let net = CanNetwork::with_nodes(CanConfig::new(2), 60, 2);
        let keys = workload::key_population(2_000, &mut stream(3, "cank"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn churn_through_trait() {
        let mut net = CanNetwork::with_nodes(CanConfig::new(2), 32, 4);
        let mut rng = stream(5, "canj");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert_eq!(net.len(), 33);
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 32);
    }
}
