//! Conformance audit: checks zone geometry, volume conservation, and
//! neighbour consistency of the CAN torus tiling.
//!
//! Zone ownership *is* CAN's routing state, and graceful joins/leaves keep
//! the tiling exact at every instant, so geometry, volume conservation,
//! and neighbour connectivity are checked at [`AuditScope::Online`].
//! Crash-orphaned zones are only re-adopted by the takeover stabilizer, so
//! the no-orphans and probe-grid tiling checks run at [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::CanNetwork;

impl StateAudit for CanNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let config = self.config();
        let side = config.side();
        let n = self.node_count();

        let mut total: u128 = 0;
        for token in self.tokens() {
            report.note_checked(1);
            let node = self.node(token).expect("live token");
            report.check_eq(token, "can/token-id", &node.token, &token);

            // Every zone is a non-degenerate box inside the torus, and a
            // live node owns at least one.
            let valid = !node.zones.is_empty()
                && node.zones.iter().all(|z| {
                    z.dims() == config.dims
                        && (0..config.dims).all(|k| z.lo[k] < z.hi[k] && z.hi[k] <= side)
                });
            report.check(token, "can/zone-valid", valid, || {
                format!("invalid zone list: {:?}", node.zones)
            });
            total += node.volume();

            // The tiling is connected: every node in a multi-node network
            // abuts at least one other node's zone.
            report.check(
                token,
                "can/neighbor-connectivity",
                n <= 1 || !self.neighbors_of(token).is_empty(),
                || "node has no neighbours in a multi-node network".to_string(),
            );
        }

        // Live zones plus crash orphans always partition the torus, so
        // their volumes sum to `side^dims` — conservation holds through
        // every split, merge, and takeover.
        let orphaned: u128 = self.orphan_zones().iter().map(|z| z.volume()).sum();
        let space = (u128::from(side)).pow(config.dims as u32);
        report.check(
            0,
            "can/volume-conservation",
            total + orphaned == space,
            || format!("live {total} + orphaned {orphaned} != space {space}"),
        );

        if scope == AuditScope::Full {
            report.check(0, "can/no-orphans", self.orphan_zones().is_empty(), || {
                format!(
                    "{} orphaned zones await takeover",
                    self.orphan_zones().len()
                )
            });
            let probes = (2 * n).max(256);
            let holes = self.tiling_holes(probes);
            report.check(0, "can/zone-tiling", holes == 0, || {
                format!("{holes} of {probes} probe points not covered exactly once")
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CanConfig;
    use crate::zone::Zone;

    fn net(n: usize) -> CanNetwork {
        CanNetwork::with_nodes(CanConfig::new(2), n, 3)
    }

    #[test]
    fn fresh_network_is_fully_clean() {
        let net = net(70);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 70);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn invariants_survive_graceful_churn_without_stabilization() {
        let mut net = net(48);
        for step in 0..30 {
            if step % 3 == 0 {
                let victim = net.tokens()[step % net.node_count()];
                net.leave(victim);
            } else {
                net.join_random_point();
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn crash_orphans_fail_full_but_not_online_audit() {
        let mut net = net(40);
        let victim = net.tokens()[7];
        net.fail_node(victim);
        assert!(net.audit(AuditScope::Online).is_clean());
        let report = net.audit(AuditScope::Full);
        assert!(
            report.violated_invariants().contains(&"can/no-orphans"),
            "{report}"
        );
        net.stabilize_takeover();
        assert!(net.audit(AuditScope::Full).is_clean());
    }

    #[test]
    fn corrupted_zone_is_caught_by_name() {
        let mut net = net(40);
        let token = net.tokens()[3];
        // Shrink one zone: geometry stays valid but volume leaks.
        let zone = {
            let z = &net.node(token).unwrap().zones[0];
            Zone {
                lo: z.lo.clone(),
                hi: z
                    .hi
                    .iter()
                    .zip(&z.lo)
                    .map(|(&h, &l)| l + (h - l) / 2)
                    .collect(),
            }
        };
        net.node_mut(token).unwrap().zones[0] = zone;
        let report = net.audit(AuditScope::Online);
        assert!(
            report
                .violated_invariants()
                .contains(&"can/volume-conservation"),
            "{report}"
        );
    }
}
