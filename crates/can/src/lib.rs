//! # CAN: a Content-Addressable Network
//!
//! The mesh-based representative of §2.3 / Table 1 (Ratnasamy et al.,
//! SIGCOMM 2001): keys hash to points in a `d`-dimensional toroidal
//! coordinate space, each node *owns a zone* (an axis-aligned box) of that
//! torus, neighbours are the owners of abutting zones, and routing greedily
//! forwards towards the key's point. Nodes keep `O(d)` neighbours and
//! lookups take `O(d · n^{1/d})` hops — the other end of the
//! degree/diameter tradeoff from the constant-degree DHTs.
//!
//! Joins split the zone containing the newcomer's random point; graceful
//! leaves hand the zone to the smallest neighbour (which may then own
//! several boxes, as in real CAN before defragmentation); crashes orphan
//! the zone until the stabilizer's takeover reassigns it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use can::{CanConfig, CanNetwork};
//!
//! let mut net = CanNetwork::with_nodes(CanConfig::new(2), 100, 42);
//! let src = net.tokens()[0];
//! let trace = net.route(src, 0xfeed);
//! assert!(trace.outcome.is_success());
//! assert_eq!(net.tiling_holes(200), 0); // zones tile the torus exactly
//! ```

mod audit;
mod index;
pub mod network;
mod repair;
pub mod zone;

pub use network::{CanConfig, CanNetwork, CanNode};
pub use zone::{Point, Zone};
