//! Corruption and self-stabilizing repair of CAN zone ownership.
//!
//! CAN has no per-node routing table to scramble: neighbour lists are
//! derived from the tiling on demand, so *zone ownership is the routing
//! state*. Every strategy of the shared catalogue therefore maps to the
//! one damage CAN can suffer — a node's zones become ownerless orphans
//! (exactly the post-crash state of [`CanNetwork::fail_node`], except
//! the node stays live and zoneless). Strategies still differ through
//! the plan's victim selection: `EclipseRegion` orphans a contiguous
//! token range, the rest a seeded uniform sample.
//!
//! Repair is per-node takeover with two extra duties the global
//! [`CanNetwork::stabilize_takeover`] does not have:
//!
//! 1. A **zoneless live node** violates `can/zone-valid` and — owning no
//!    faces — can never be chosen as an adopter by the face sweep, so
//!    takeover alone would leave it broken forever. Its repair step
//!    hands it one orphan directly.
//! 2. Orphans are adopted **by chaining**: each zone this node adopts
//!    exposes new faces, which may abut further orphans. A corrupted
//!    region is thus peeled from its boundary inward, one repair step at
//!    a time, bounding rounds-to-recovery by the region's diameter.

use dht_core::corrupt::{CorruptionPlan, CorruptionReport};

use crate::network::CanNetwork;

impl CanNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]):
    /// every victim's zones are orphaned while the victim stays live.
    /// Mutated entries count the zones torn from their owners.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let live = self.tokens();
        let victims = plan.victims(&live);
        let mut report = CorruptionReport::default();
        for &token in &victims {
            let zones =
                std::mem::take(&mut self.members.get_mut(token).expect("victim is live").zones);
            for zone in &zones {
                self.index.set_owner(zone, None);
            }
            report.note(zones.len() as u64);
            self.orphans.extend(zones);
        }
        report
    }

    /// One node's repair step: reclaim a zone if this node has none,
    /// then adopt orphans abutting its zones, chaining through the newly
    /// adopted faces. Adoption **reserves one orphan per still-zoneless
    /// live node** — without the reservation, whichever nodes repair
    /// first would swallow the whole orphan pool and leave late-firing
    /// zoneless nodes unrepairable forever (corruption guarantees the
    /// pool starts at least as large as the zoneless population, and
    /// both repair moves preserve that inequality). Returns the number
    /// of zones adopted (0 on a healthy network); ignores dead tokens.
    pub fn repair_one(&mut self, token: u64) -> u64 {
        if !self.is_live(token) {
            return 0;
        }
        let mut adopted = 0u64;
        if self.node(token).expect("live").zones.is_empty() {
            if let Some(zone) = self.orphans.pop() {
                self.index.set_owner(&zone, Some(token));
                self.members.get_mut(token).expect("live").zones.push(zone);
                adopted += 1;
            }
        }
        let reserved = self.members.states().filter(|n| n.zones.is_empty()).count();
        let mut slots = Vec::new();
        let mut i = 0;
        while self.orphans.len() > reserved && i < self.orphans.len() {
            let zone = self.orphans[i].clone();
            slots.clear();
            self.index.face_owners(&zone, &mut slots);
            if slots.iter().copied().flatten().any(|t| t == token) {
                self.orphans.swap_remove(i);
                self.index.set_owner(&zone, Some(token));
                self.members.get_mut(token).expect("live").zones.push(zone);
                adopted += 1;
                i = 0; // new faces: earlier orphans may now abut us
            } else {
                i += 1;
            }
        }
        adopted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CanConfig;
    use dht_core::audit::{AuditScope, StateAudit};
    use dht_core::corrupt::CorruptionStrategy;

    fn net(n: usize) -> CanNetwork {
        CanNetwork::with_nodes(CanConfig::new(2), n, 42)
    }

    fn repair_sweep(net: &mut CanNetwork) -> u64 {
        let mut total = 0;
        for token in net.tokens() {
            total += net.repair_one(token);
        }
        total
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_network() {
        let mut n = net(64);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(64);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 32, "{strategy:?}");
            assert!(
                report.mutated_entries >= 32,
                "{strategy:?} orphaned too little"
            );
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            // Boundary peeling: a contiguous corrupted region can need
            // several sweeps before interior zones reach a live face.
            let mut sweeps = 0;
            while !n.audit(AuditScope::Full).is_clean() {
                assert!(sweeps < 64, "{strategy:?} did not converge");
                repair_sweep(&mut n);
                sweeps += 1;
            }
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }

    #[test]
    fn zoneless_nodes_get_a_zone_back() {
        let mut n = net(48);
        n.corrupt(&CorruptionPlan::new(
            CorruptionStrategy::RandomizeLinks,
            0.25,
            3,
        ));
        let zoneless: Vec<u64> = n
            .tokens()
            .into_iter()
            .filter(|&t| n.node(t).unwrap().zones.is_empty())
            .collect();
        assert!(!zoneless.is_empty());
        for &t in &zoneless {
            n.repair_one(t);
            assert!(
                !n.node(t).unwrap().zones.is_empty(),
                "node {t} still zoneless"
            );
        }
    }
}
