//! Cube-connected cycles (CCC) graph substrate.
//!
//! A *d*-dimensional CCC (Preparata & Vuillemin, CACM 1981) is a
//! *d*-dimensional hypercube with each vertex replaced by a cycle of *d*
//! nodes. It has `d * 2^d` nodes, each of degree 3: two *cycle* neighbours
//! and one *cube* neighbour. Cycloid (§3.1, Fig. 1 of the paper) emulates
//! this graph: "the network will be the traditional cube-connected cycles
//! if all nodes are alive".
//!
//! This crate provides the exact static graph — construction, neighbour
//! enumeration, the classic cycle-walking routing scheme, and BFS-based
//! property validation — used both as a specification oracle for the
//! `cycloid` crate's tests and as a standalone interconnection-network
//! library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod route;

pub use graph::{CccGraph, CccNode};
pub use route::classic_route;
