//! The static cube-connected cycles graph.

/// A node of the CCC: a cyclic index `k ∈ [0, d)` locating it on its local
/// cycle, and a cubical index `a ∈ [0, 2^d)` naming the hypercube vertex the
/// cycle replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CccNode {
    /// Position on the local cycle (`k` in the paper's `(k, a_{d-1}…a_0)`).
    pub cyclic: u32,
    /// Hypercube vertex the cycle replaces.
    pub cubical: u64,
}

impl CccNode {
    /// Convenience constructor.
    #[must_use]
    pub fn new(cyclic: u32, cubical: u64) -> Self {
        Self { cyclic, cubical }
    }
}

/// A `d`-dimensional cube-connected cycles graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CccGraph {
    d: u32,
}

impl CccGraph {
    /// Creates the `d`-dimensional CCC. `d` must be in `[1, 32]` (the
    /// paper's simulations use `d ∈ [3, 8]`; 32 keeps `d * 2^d` within
    /// `u64` comfortably).
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > 32`.
    #[must_use]
    pub fn new(d: u32) -> Self {
        assert!(
            (1..=32).contains(&d),
            "CCC dimension must be in [1, 32], got {d}"
        );
        Self { d }
    }

    /// The dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Total node count, `d * 2^d`.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        u64::from(self.d) << self.d
    }

    /// Number of hypercube vertices / local cycles, `2^d`.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        1u64 << self.d
    }

    /// `true` iff `node` is a valid node of this graph.
    #[must_use]
    pub fn contains(&self, node: CccNode) -> bool {
        node.cyclic < self.d && node.cubical < self.cycle_count()
    }

    /// Linearizes a node to a dense index in `[0, node_count)`:
    /// `cubical * d + cyclic`. This is also the order Cycloid's identifier
    /// space uses ("first numerically closest to the cubical index and then
    /// to the cyclic index").
    #[must_use]
    pub fn index_of(&self, node: CccNode) -> u64 {
        debug_assert!(self.contains(node));
        node.cubical * u64::from(self.d) + u64::from(node.cyclic)
    }

    /// Inverse of [`CccGraph::index_of`].
    #[must_use]
    pub fn node_at(&self, index: u64) -> CccNode {
        debug_assert!(index < self.node_count());
        CccNode {
            cyclic: (index % u64::from(self.d)) as u32,
            cubical: index / u64::from(self.d),
        }
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = CccNode> + '_ {
        (0..self.node_count()).map(move |i| self.node_at(i))
    }

    /// Cycle successor: `(k + 1 mod d, a)`.
    #[must_use]
    pub fn cycle_next(&self, node: CccNode) -> CccNode {
        CccNode {
            cyclic: (node.cyclic + 1) % self.d,
            cubical: node.cubical,
        }
    }

    /// Cycle predecessor: `(k - 1 mod d, a)`.
    #[must_use]
    pub fn cycle_prev(&self, node: CccNode) -> CccNode {
        CccNode {
            cyclic: (node.cyclic + self.d - 1) % self.d,
            cubical: node.cubical,
        }
    }

    /// Cube neighbour: `(k, a XOR 2^k)` — the edge along hypercube
    /// dimension `k`.
    #[must_use]
    pub fn cube_neighbor(&self, node: CccNode) -> CccNode {
        CccNode {
            cyclic: node.cyclic,
            cubical: node.cubical ^ (1u64 << node.cyclic),
        }
    }

    /// The (up to three distinct) neighbours of `node`. For `d >= 3` this
    /// is always exactly three distinct nodes; for `d < 3` the cycle
    /// collapses and duplicates are removed.
    #[must_use]
    pub fn neighbors(&self, node: CccNode) -> Vec<CccNode> {
        let mut out = vec![
            self.cycle_prev(node),
            self.cycle_next(node),
            self.cube_neighbor(node),
        ];
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != node);
        out
    }

    /// Breadth-first distances from `src` to every node, indexed by
    /// [`CccGraph::index_of`]. Used to validate routing and diameter.
    #[must_use]
    pub fn bfs_distances(&self, src: CccNode) -> Vec<u32> {
        let n = self.node_count() as usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[self.index_of(src) as usize] = 0;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            let dcur = dist[self.index_of(cur) as usize];
            for nb in self.neighbors(cur) {
                let i = self.index_of(nb) as usize;
                if dist[i] == u32::MAX {
                    dist[i] = dcur + 1;
                    queue.push_back(nb);
                }
            }
        }
        dist
    }

    /// Exact diameter by all-pairs BFS. Exponential in `d`; intended for
    /// validation at small dimensions only.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        self.nodes()
            .map(|s| {
                self.bfs_distances(s)
                    .into_iter()
                    .max()
                    .expect("graph is non-empty")
            })
            .max()
            .expect("graph is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_formula() {
        for d in 1..=8 {
            let g = CccGraph::new(d);
            assert_eq!(g.node_count(), u64::from(d) << d);
            assert_eq!(g.nodes().count() as u64, g.node_count());
        }
    }

    #[test]
    fn index_roundtrip() {
        let g = CccGraph::new(5);
        for i in 0..g.node_count() {
            let node = g.node_at(i);
            assert!(g.contains(node));
            assert_eq!(g.index_of(node), i);
        }
    }

    #[test]
    fn three_regular_for_d_at_least_3() {
        for d in 3..=6 {
            let g = CccGraph::new(d);
            for node in g.nodes() {
                assert_eq!(
                    g.neighbors(node).len(),
                    3,
                    "node {node:?} in CCC({d}) must have degree 3"
                );
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = CccGraph::new(4);
        for node in g.nodes() {
            for nb in g.neighbors(node) {
                assert!(
                    g.neighbors(nb).contains(&node),
                    "edge {node:?} -> {nb:?} must be undirected"
                );
            }
        }
    }

    #[test]
    fn cube_neighbor_is_involution() {
        let g = CccGraph::new(6);
        for node in g.nodes() {
            assert_eq!(g.cube_neighbor(g.cube_neighbor(node)), node);
        }
    }

    #[test]
    fn cycle_next_prev_inverse() {
        let g = CccGraph::new(5);
        for node in g.nodes() {
            assert_eq!(g.cycle_prev(g.cycle_next(node)), node);
            assert_eq!(g.cycle_next(g.cycle_prev(node)), node);
        }
    }

    #[test]
    fn cycle_has_length_d() {
        let g = CccGraph::new(7);
        let start = CccNode::new(0, 42);
        let mut cur = start;
        for step in 1..=7 {
            cur = g.cycle_next(cur);
            if step < 7 {
                assert_ne!(cur, start);
            }
        }
        assert_eq!(cur, start);
    }

    #[test]
    fn connected_small_dimensions() {
        for d in 1..=5 {
            let g = CccGraph::new(d);
            let dist = g.bfs_distances(g.node_at(0));
            assert!(
                dist.iter().all(|&x| x != u32::MAX),
                "CCC({d}) must be connected"
            );
        }
    }

    #[test]
    fn diameter_known_values() {
        // Known exact diameters: CCC(3) = 6 (Preparata–Vuillemin; for d >= 4
        // the diameter is 2d + floor(d/2) - 2).
        assert_eq!(CccGraph::new(3).diameter(), 6);
        assert_eq!(CccGraph::new(4).diameter(), 2 * 4 + 2 - 2);
        assert_eq!(CccGraph::new(5).diameter(), 2 * 5 + 2 - 2);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_zero_dimension() {
        let _ = CccGraph::new(0);
    }
}
