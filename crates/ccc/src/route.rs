//! Classic CCC routing (the scheme Cycloid's lookup algorithm emulates).
//!
//! The textbook algorithm sweeps the cycle position across every hypercube
//! dimension in which source and destination differ, taking a cube edge at
//! each such position, then walks the local cycle to the destination's
//! cyclic index. Cycloid's three-phase lookup (§3.2) is exactly this sweep
//! re-expressed over a *partial* node population:
//! ascending ≈ reaching the most significant differing bit, descending ≈
//! the alternation of cube edges and cycle steps, traverse-cycle ≈ the
//! final cycle walk.

use crate::graph::{CccGraph, CccNode};

/// Routes from `src` to `dst` through the complete CCC, returning the full
/// node path including both endpoints.
///
/// The path length is `O(d)` — at most `2d + d/2` hops, matching the CCC
/// diameter bound — and every consecutive pair in the returned path is an
/// edge of the graph (validated by tests).
#[must_use]
pub fn classic_route(g: &CccGraph, src: CccNode, dst: CccNode) -> Vec<CccNode> {
    assert!(
        g.contains(src) && g.contains(dst),
        "endpoints must be in the graph"
    );
    let mut path = vec![src];
    let mut cur = src;

    // Phase 1+2: sweep over differing cube dimensions from the most
    // significant down to bit 0, as Cycloid's left-to-right prefix routing
    // does. Between cube edges, walk the cycle (choosing the shorter
    // direction) to bring the cyclic index to the next differing bit.
    let mut diff = cur.cubical ^ dst.cubical;
    while diff != 0 {
        let bit = 63 - diff.leading_zeros(); // most significant differing bit
        cur = walk_cycle_to(g, cur, bit, &mut path);
        cur = g.cube_neighbor(cur);
        path.push(cur);
        diff = cur.cubical ^ dst.cubical;
    }

    // Phase 3: walk the local cycle to the destination's cyclic index.
    cur = walk_cycle_to(g, cur, dst.cyclic, &mut path);
    debug_assert_eq!(cur, dst);
    path
}

/// Walks the local cycle from `cur` to cyclic index `target`, appending each
/// hop to `path`, picking the shorter direction around the cycle.
fn walk_cycle_to(g: &CccGraph, mut cur: CccNode, target: u32, path: &mut Vec<CccNode>) -> CccNode {
    let d = g.dimension();
    let fwd = (target + d - cur.cyclic) % d; // steps via cycle_next
    let bwd = (cur.cyclic + d - target) % d; // steps via cycle_prev
    if fwd <= bwd {
        for _ in 0..fwd {
            cur = g.cycle_next(cur);
            path.push(cur);
        }
    } else {
        for _ in 0..bwd {
            cur = g.cycle_prev(cur);
            path.push(cur);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_edge(g: &CccGraph, a: CccNode, b: CccNode) -> bool {
        g.neighbors(a).contains(&b)
    }

    #[test]
    fn route_reaches_destination() {
        let g = CccGraph::new(4);
        for s in 0..g.node_count() {
            for t in (0..g.node_count()).step_by(7) {
                let path = classic_route(&g, g.node_at(s), g.node_at(t));
                assert_eq!(*path.first().unwrap(), g.node_at(s));
                assert_eq!(*path.last().unwrap(), g.node_at(t));
            }
        }
    }

    #[test]
    fn route_uses_only_graph_edges() {
        let g = CccGraph::new(4);
        for s in (0..g.node_count()).step_by(5) {
            for t in (0..g.node_count()).step_by(11) {
                let path = classic_route(&g, g.node_at(s), g.node_at(t));
                for w in path.windows(2) {
                    assert!(
                        is_edge(&g, w[0], w[1]),
                        "{:?} -> {:?} is not an edge",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn route_length_is_order_d() {
        // Classic routing is within a constant factor of the 2.5d diameter
        // bound; this sweep allows up to 3d to cover the cycle re-walks.
        for d in 3..=7 {
            let g = CccGraph::new(d);
            let worst = (0..g.node_count())
                .step_by(13)
                .flat_map(|s| (0..g.node_count()).step_by(17).map(move |t| (s, t)))
                .map(|(s, t)| classic_route(&g, g.node_at(s), g.node_at(t)).len() - 1)
                .max()
                .unwrap();
            assert!(
                worst as u32 <= 3 * d,
                "CCC({d}) classic route took {worst} > {} hops",
                3 * d
            );
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let g = CccGraph::new(5);
        let n = g.node_at(77);
        assert_eq!(classic_route(&g, n, n), vec![n]);
    }

    #[test]
    fn route_not_much_longer_than_bfs() {
        let g = CccGraph::new(4);
        let src = g.node_at(0);
        let dist = g.bfs_distances(src);
        for t in 0..g.node_count() {
            let hops = classic_route(&g, src, g.node_at(t)).len() as u32 - 1;
            let opt = dist[t as usize];
            assert!(
                hops <= opt + g.dimension() * 2,
                "route {hops} vs optimal {opt} for target {t}"
            );
        }
    }
}
