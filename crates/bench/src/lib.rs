//! Benchmark and reproduction harness for the Cycloid paper.
//!
//! The `repro` binary (`cargo run --release -p bench --bin repro -- all`)
//! regenerates every table and figure of the evaluation; the Criterion
//! benches (`cargo bench -p bench`) time the underlying operations. This
//! library crate hosts the shared rendering helpers both entry points use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod metrics_io;
pub mod render;
