//! Reading and validating the `BENCH_*.json` documents `repro` writes.
//!
//! The schema (version 2) is produced by
//! [`dht_core::obs::to_bench_json`]; this module is the consuming side:
//! it re-parses the documents with the same zero-dependency JSON reader
//! and checks every field the writer promises, so a drifting writer
//! fails the `metrics` subcommand (and CI) instead of silently emitting
//! documents downstream tooling cannot read.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use dht_core::obs::json::{self, Json};
use dht_core::obs::SCHEMA_VERSION;

/// Short git revision of the working tree, or `"unknown"` when git (or
/// the repository) is unavailable — e.g. when building from a tarball.
#[must_use]
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One loaded and schema-validated benchmark document.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// Where the document was read from.
    pub path: PathBuf,
    /// The parsed document.
    pub doc: Json,
}

fn require_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field \"{key}\""))
}

fn require_num(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field \"{key}\""))
}

fn validate_metric(entry: &Json) -> Result<(), String> {
    let name = require_str(entry, "name")?;
    let kind = require_str(entry, "type")?;
    let ctx = |e: String| format!("metric \"{name}\": {e}");
    match kind.as_str() {
        "counter" | "gauge" => {
            require_num(entry, "value").map_err(ctx)?;
        }
        "timer" => {
            require_num(entry, "total_us").map_err(ctx)?;
            require_num(entry, "spans").map_err(ctx)?;
            require_num(entry, "max_us").map_err(ctx)?;
        }
        "histogram" => {
            let count = require_num(entry, "count").map_err(ctx)?;
            require_num(entry, "sum").map_err(ctx)?;
            require_num(entry, "min").map_err(ctx)?;
            require_num(entry, "max").map_err(ctx)?;
            require_num(entry, "mean").map_err(ctx)?;
            let buckets = entry
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or_else(|| ctx("missing or non-array field \"buckets\"".into()))?;
            let mut bucket_total = 0.0;
            let mut prev_le = -1.0;
            for b in buckets {
                let le = require_num(b, "le").map_err(&ctx)?;
                let c = require_num(b, "count").map_err(&ctx)?;
                if le <= prev_le {
                    return Err(ctx(format!("bucket bounds not increasing at le={le}")));
                }
                prev_le = le;
                bucket_total += c;
            }
            if bucket_total != count {
                return Err(ctx(format!(
                    "bucket counts sum to {bucket_total}, document says count={count}"
                )));
            }
        }
        other => return Err(ctx(format!("unknown metric type \"{other}\""))),
    }
    Ok(())
}

fn validate_series(entry: &Json) -> Result<(), String> {
    let name = require_str(entry, "name")?;
    let ctx = |e: String| format!("series \"{name}\": {e}");
    let points = entry
        .get("points")
        .and_then(Json::as_array)
        .ok_or_else(|| ctx("missing or non-array field \"points\"".into()))?;
    let mut prev_t = f64::NEG_INFINITY;
    for p in points {
        let t = require_num(p, "t_us").map_err(&ctx)?;
        require_num(p, "value").map_err(&ctx)?;
        if t < prev_t {
            return Err(ctx(format!("point timestamps not monotone at t_us={t}")));
        }
        prev_t = t;
    }
    Ok(())
}

/// Validates a parsed document against schema version
/// [`SCHEMA_VERSION`]: the header fields must be present with the right
/// types, every metric entry must carry its type-specific fields,
/// histogram buckets must be strictly increasing and sum to `count`,
/// and every series (schema v2) must carry name-tagged points with
/// non-decreasing virtual timestamps.
pub fn validate(doc: &Json) -> Result<(), String> {
    let version = require_num(doc, "schema_version")?;
    if version != f64::from(SCHEMA_VERSION) {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    require_str(doc, "experiment")?;
    require_str(doc, "git_rev")?;
    require_num(doc, "seed")?;
    doc.get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing or non-boolean field \"quick\"")?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_array)
        .ok_or("missing or non-array field \"metrics\"")?;
    for entry in metrics {
        validate_metric(entry)?;
    }
    let series = doc
        .get("series")
        .and_then(Json::as_array)
        .ok_or("missing or non-array field \"series\"")?;
    for entry in series {
        validate_series(entry)?;
    }
    Ok(())
}

/// Parses and validates one document's text.
pub fn parse_and_validate(text: &str) -> Result<Json, String> {
    let doc = json::parse(text)?;
    validate(&doc)?;
    Ok(doc)
}

/// Loads every `BENCH_*.json` in `dir`, sorted by file name. I/O errors
/// surface as `Err`; schema violations surface per file in the returned
/// `Result`s so one bad document doesn't hide the rest.
pub fn read_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Result<BenchFile, String>)>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let loaded = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_and_validate(&text))
            .map(|doc| BenchFile {
                path: path.clone(),
                doc,
            });
        out.push((path, loaded));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::obs::{to_bench_json, BenchMeta, MetricsRegistry};

    fn sample_doc() -> String {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.lookups").add(10);
        reg.gauge("a.lookups_per_sec").set(123.5);
        let h = reg.histogram("a.hops");
        h.record(1);
        h.record(3);
        h.record(9);
        reg.timer("a.wall").record_us(42);
        reg.series("a.live").push(0, 19.5);
        reg.series("a.live").push(7, 21.5);
        to_bench_json(
            &BenchMeta {
                experiment: "sample".into(),
                git_rev: "deadbee".into(),
                seed: 7,
                quick: true,
            },
            &reg,
        )
    }

    #[test]
    fn writer_output_validates() {
        let doc = parse_and_validate(&sample_doc()).expect("round-trip");
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("sample"));
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = sample_doc().replacen("\"schema_version\": 2", "\"schema_version\": 99", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn rejects_v1_documents() {
        // Pre-series documents must be regenerated, not silently read.
        let text = sample_doc().replacen("\"schema_version\": 2", "\"schema_version\": 1", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn rejects_missing_series_section() {
        let text = sample_doc().replacen("\"series\"", "\"serues\"", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("series"), "{err}");
    }

    #[test]
    fn rejects_non_monotone_series_points() {
        let text = sample_doc().replacen("\"t_us\": 7", "\"t_us\": -1", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_series_point_missing_value() {
        let text = sample_doc().replacen("\"value\": 19.5", "\"val\": 19.5", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("value"), "{err}");
    }

    #[test]
    fn rejects_missing_metric_fields() {
        let text = sample_doc().replacen("\"value\"", "\"val\"", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("value"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_histogram_count() {
        let text = sample_doc().replacen("\"count\": 3", "\"count\": 4", 1);
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("count"), "{err}");
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_and_validate("{not json").is_err());
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
