//! `repro` — regenerates every table and figure of the Cycloid paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig5 fig7 --quick
//! cargo run --release -p bench --bin repro -- table4 --seed 7 --csv
//! ```
//!
//! Experiments: `table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 table4 fig12 table5 fig13 fig14`, the extensions `extfail
//! extpath extdegree exthotspot fault`, and the `all` shorthand.
//! Flags: `--quick` (reduced workloads), `--seed <u64>` (default 2004),
//! `--csv` (machine-readable output), `--chart` (terminal line charts
//! for the line figures).

use std::collections::BTreeSet;
use std::time::Instant;

use bench::render;
use dht_core::lookup::HopPhase;
use dht_sim::experiments::{
    churn_exp, fault_tolerance, hotspot, key_distribution, maintenance, mass_departure,
    path_length, query_load, sparsity, ungraceful,
};
use dht_sim::report::Table;

#[derive(Debug, Clone)]
struct Options {
    experiments: BTreeSet<String>,
    quick: bool,
    csv: bool,
    chart: bool,
    seed: u64,
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table4",
    "fig12",
    "table5",
    "fig13",
    "fig14",
    "extfail",
    "extpath",
    "extdegree",
    "exthotspot",
    "fault",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [EXPERIMENT...] [--quick] [--csv] [--chart] [--seed N]\n\
         experiments: {} all",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        experiments: BTreeSet::new(),
        quick: false,
        csv: false,
        chart: false,
        seed: 2004, // IPPS 2004
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            "--chart" => opts.chart = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            "all" => {
                opts.experiments.extend(ALL.iter().map(|s| s.to_string()));
            }
            name if ALL.contains(&name) => {
                opts.experiments.insert(name.to_string());
            }
            _ => usage(),
        }
    }
    if opts.experiments.is_empty() {
        usage();
    }
    opts
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.render_csv());
        println!();
    } else {
        println!("{}", table.render());
    }
}

fn main() {
    let opts = parse_args();
    let wants = |name: &str| opts.experiments.contains(name);
    let started = Instant::now();

    if wants("table1") {
        emit(&render::table1(), opts.csv);
    }
    if wants("table2") {
        emit(&render::table2(), opts.csv);
    }
    if wants("table3") {
        emit(&render::table3(), opts.csv);
    }

    // Figs. 5/6/7 share one sweep.
    if wants("fig5") || wants("fig6") || wants("fig7") {
        eprintln!("[repro] running path-length sweep (figs 5-7)...");
        let params = if opts.quick {
            path_length::PathLengthParams::quick(opts.seed)
        } else {
            path_length::PathLengthParams::paper(opts.seed)
        };
        let rows = path_length::measure(&params);
        if wants("fig5") {
            emit(&render::fig5(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig5(&rows).render());
            }
        }
        if wants("fig6") {
            emit(&render::fig6(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig6(&rows).render());
            }
        }
        if wants("fig7") {
            let cyc_phases = [
                HopPhase::Ascending,
                HopPhase::Descending,
                HopPhase::TraverseCycle,
            ];
            emit(&render::fig7(&rows, "Cycloid(7)", &cyc_phases), opts.csv);
            emit(&render::fig7(&rows, "Cycloid(11)", &cyc_phases), opts.csv);
            emit(&render::fig7(&rows, "Viceroy", &cyc_phases), opts.csv);
            emit(
                &render::fig7(&rows, "Koorde", &[HopPhase::DeBruijn, HopPhase::Successor]),
                opts.csv,
            );
        }
    }

    if wants("fig8") {
        eprintln!("[repro] running key-distribution sweep (fig 8, dense)...");
        let params = if opts.quick {
            key_distribution::KeyDistributionParams {
                nodes: 2000,
                key_counts: vec![10_000, 50_000, 100_000],
                ..key_distribution::KeyDistributionParams::quick(opts.seed)
            }
        } else {
            key_distribution::KeyDistributionParams::fig8(opts.seed)
        };
        let rows = key_distribution::measure(&params);
        emit(
            &render::fig_keys(
                &rows,
                "Fig 8: keys per node, 2000 nodes in a 2048-slot space, mean (p01, p99)",
            ),
            opts.csv,
        );
    }

    if wants("fig9") {
        eprintln!("[repro] running key-distribution sweep (fig 9, sparse)...");
        let params = if opts.quick {
            key_distribution::KeyDistributionParams {
                nodes: 1000,
                key_counts: vec![10_000, 50_000, 100_000],
                ..key_distribution::KeyDistributionParams::quick(opts.seed)
            }
        } else {
            key_distribution::KeyDistributionParams::fig9(opts.seed)
        };
        let rows = key_distribution::measure(&params);
        emit(
            &render::fig_keys(
                &rows,
                "Fig 9: keys per node, 1000 nodes in a 2048-slot space, mean (p01, p99)",
            ),
            opts.csv,
        );
    }

    if wants("fig10") {
        eprintln!("[repro] running query-load sweep (fig 10)...");
        let params = if opts.quick {
            query_load::QueryLoadParams {
                sizes: vec![64, 512],
                per_node_cap: Some(16),
                ..query_load::QueryLoadParams::paper(opts.seed)
            }
        } else {
            query_load::QueryLoadParams::paper(opts.seed)
        };
        let rows = query_load::measure(&params);
        emit(&render::fig10(&rows), opts.csv);
    }

    if wants("fig11") || wants("table4") {
        eprintln!("[repro] running mass-departure sweep (fig 11 / table 4)...");
        let params = if opts.quick {
            mass_departure::MassDepartureParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                nodes: 2048,
                lookups: 2_000,
                ..mass_departure::MassDepartureParams::quick(opts.seed)
            }
        } else {
            mass_departure::MassDepartureParams::paper(opts.seed)
        };
        let rows = mass_departure::measure(&params);
        if wants("fig11") {
            emit(&render::fig11(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig11(&rows).render());
            }
        }
        if wants("table4") {
            emit(&render::table4(&rows), opts.csv);
            emit(&render::table4_failures(&rows), opts.csv);
        }
    }

    if wants("fig12") || wants("table5") {
        eprintln!("[repro] running churn sweep (fig 12 / table 5)...");
        let params = if opts.quick {
            churn_exp::ChurnExpParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                nodes: 512,
                lookups: 1_000,
                rates: vec![0.05, 0.20, 0.40],
                audit: true,
                ..churn_exp::ChurnExpParams::paper(opts.seed)
            }
        } else {
            churn_exp::ChurnExpParams::paper(opts.seed)
        };
        let rows = churn_exp::measure(&params);
        if wants("fig12") {
            emit(&render::fig12(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig12(&rows).render());
            }
        }
        if wants("table5") {
            emit(&render::table5(&rows), opts.csv);
        }
        if rows.iter().any(|r| r.audit.is_some()) {
            emit(&render::churn_audit(&rows), opts.csv);
        }
    }

    if wants("fig13") || wants("fig14") {
        eprintln!("[repro] running sparsity sweep (figs 13-14)...");
        let params = if opts.quick {
            sparsity::SparsityParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                id_space: 2048,
                lookups: 2_000,
                sparsities: vec![0.0, 0.3, 0.6, 0.9],
                seed: opts.seed,
            }
        } else {
            sparsity::SparsityParams::paper(opts.seed)
        };
        let rows = sparsity::measure(&params);
        if wants("fig13") {
            emit(&render::fig13(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig13(&rows).render());
            }
        }
        if wants("fig14") {
            emit(&render::fig14(&rows), opts.csv);
        }
    }

    if wants("extpath") {
        eprintln!("[repro] running extended path-length comparison (Pastry, CAN)...");
        let params = path_length::PathLengthParams {
            kinds: dht_sim::EXTENDED_KINDS.to_vec(),
            sizes: vec![(4, 64), (5, 160), (6, 384)],
            per_node_factor: 0.25,
            per_node_cap: Some(if opts.quick { 8 } else { 32 }),
            seed: opts.seed,
        };
        let rows = path_length::measure(&params);
        emit(&render::ext_path(&rows), opts.csv);
    }

    if wants("exthotspot") {
        eprintln!("[repro] running hot-spot workload extension...");
        let params = if opts.quick {
            hotspot::HotspotParams::quick(opts.seed)
        } else {
            hotspot::HotspotParams::paper_scale(opts.seed)
        };
        let rows = hotspot::measure(&params);
        emit(&render::ext_hotspot(&rows), opts.csv);
    }

    if wants("extdegree") {
        eprintln!("[repro] measuring maintenance degrees (extension)...");
        let params = if opts.quick {
            maintenance::MaintenanceParams::quick(opts.seed)
        } else {
            maintenance::MaintenanceParams::paper_scale(opts.seed)
        };
        let rows = maintenance::measure(&params);
        emit(&render::ext_degree(&rows), opts.csv);
    }

    if wants("fault") {
        eprintln!("[repro] running message-loss sweep (fault extension)...");
        let params = if opts.quick {
            fault_tolerance::FaultToleranceParams::quick(opts.seed)
        } else {
            fault_tolerance::FaultToleranceParams::paper(opts.seed)
        };
        let rows = fault_tolerance::measure(&params);
        emit(&render::fault(&rows), opts.csv);
        if opts.chart {
            println!("{}", render::charts::fault(&rows).render());
        }
        if rows.iter().any(|r| r.audit.is_some()) {
            emit(&render::fault_audit(&rows), opts.csv);
        }
    }

    if wants("extfail") {
        eprintln!("[repro] running ungraceful-failure extension...");
        let params = if opts.quick {
            ungraceful::UngracefulParams::quick(opts.seed)
        } else {
            ungraceful::UngracefulParams::paper_scale(opts.seed)
        };
        let rows = ungraceful::measure(&params);
        emit(&render::ext_failures(&rows), opts.csv);
    }

    eprintln!(
        "[repro] done in {:.1}s (seed {}, {})",
        started.elapsed().as_secs_f64(),
        opts.seed,
        if opts.quick { "quick" } else { "paper scale" }
    );
}
