//! `repro` — regenerates every table and figure of the Cycloid paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig5 fig7 --quick
//! cargo run --release -p bench --bin repro -- table4 --seed 7 --csv
//! cargo run --release -p bench --bin repro -- path --quick --metrics-out bench-out
//! cargo run --release -p bench --bin repro -- metrics --metrics-out bench-out
//! ```
//!
//! Experiments: `table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 table4 fig12 table5 fig13 fig14`, the extensions `extfail
//! extpath extdegree exthotspot fault`, the `all` shorthand, the `path`
//! alias (figs 5–7), and `metrics` (summarise previously written
//! `BENCH_*.json` files).
//! Flags: `--quick` (reduced workloads), `--seed <u64>` (default 2004),
//! `--csv` (machine-readable output), `--chart` (terminal line charts
//! for the line figures), `--metrics-out <dir>` (write one versioned
//! `BENCH_<experiment>.json` per experiment group), `--quiet` (suppress
//! progress lines; `REPRO_LOG=debug|info|quiet` overrides), and
//! `--jobs <N>` (worker threads per lookup batch; default: available
//! parallelism). Results are bit-identical for every `--jobs` value —
//! the flag only changes wall clock. The extra `throughput` subcommand
//! (not part of `all`) measures the sequential-vs-sharded speedup and
//! exports it as `BENCH_lookup_throughput.json`; the extra `converge`
//! subcommand measures time-to-stabilize after membership shocks and
//! lookup latency under continuous-time churn, exported as
//! `BENCH_converge.json`; the extra `scale` subcommand sweeps 10⁴–10⁶
//! node populations on the compact membership store and exports memory
//! footprint, throughput, and join latency as `BENCH_scale.json`; the
//! extra `recover` subcommand corrupts routing state through the seeded
//! strategy catalogue and measures time and repair cost to audit-clean,
//! exported as `BENCH_recover.json`.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bench::{metrics_io, render};
use dht_core::lookup::HopPhase;
use dht_core::obs::{to_bench_json, BenchMeta, LogLevel, MetricsRegistry, Phase, Progress};
use dht_sim::experiments::{
    churn_exp, converge, fault_tolerance, hotspot, key_distribution, maintenance, mass_departure,
    path_length, profile, query_load, recover, scale, sparsity, static_tables, throughput,
    ungraceful,
};
use dht_sim::report::Table;

#[derive(Debug, Clone)]
struct Options {
    experiments: BTreeSet<String>,
    quick: bool,
    csv: bool,
    chart: bool,
    quiet: bool,
    metrics_out: Option<PathBuf>,
    seed: u64,
    jobs: usize,
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table4",
    "fig12",
    "table5",
    "fig13",
    "fig14",
    "extfail",
    "extpath",
    "extdegree",
    "exthotspot",
    "fault",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [EXPERIMENT...] [--quick] [--csv] [--chart] [--quiet]\n\
         \x20            [--seed N] [--metrics-out DIR]\n\
         \x20            [--jobs N]\n\
         experiments: {} all path metrics throughput converge scale recover profile",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        experiments: BTreeSet::new(),
        quick: false,
        csv: false,
        chart: false,
        quiet: false,
        metrics_out: None,
        seed: 2004, // IPPS 2004
        jobs: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            "--chart" => opts.chart = true,
            "--quiet" => opts.quiet = true,
            "--metrics-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.metrics_out = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.jobs = v.parse().unwrap_or_else(|_| usage());
                if opts.jobs == 0 {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            "all" => {
                opts.experiments.extend(ALL.iter().map(|s| s.to_string()));
            }
            "path" => {
                opts.experiments
                    .extend(["fig5", "fig6", "fig7"].map(str::to_string));
            }
            "metrics" => {
                opts.experiments.insert("metrics".to_string());
            }
            "throughput" => {
                opts.experiments.insert("throughput".to_string());
            }
            "converge" => {
                opts.experiments.insert("converge".to_string());
            }
            "scale" => {
                opts.experiments.insert("scale".to_string());
            }
            "recover" => {
                opts.experiments.insert("recover".to_string());
            }
            "profile" => {
                opts.experiments.insert("profile".to_string());
            }
            name if ALL.contains(&name) => {
                opts.experiments.insert(name.to_string());
            }
            _ => usage(),
        }
    }
    if opts.experiments.is_empty() {
        usage();
    }
    opts
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.render_csv());
        println!();
    } else {
        println!("{}", table.render());
    }
}

/// Summarises previously exported `BENCH_*.json` files from `dir`.
/// Exits nonzero when the directory is unreadable or any document fails
/// schema validation.
fn run_metrics(dir: &std::path::Path, csv: bool, progress: &Progress) {
    let entries = match metrics_io::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("[repro] error: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    if entries.is_empty() {
        eprintln!(
            "[repro] error: no BENCH_*.json files in {} (run an experiment with --metrics-out first)",
            dir.display()
        );
        std::process::exit(1);
    }
    let mut files = Vec::new();
    let mut bad = 0usize;
    for (path, loaded) in entries {
        match loaded {
            Ok(file) => files.push(file),
            Err(e) => {
                bad += 1;
                eprintln!("[repro] error: {}: {e}", path.display());
            }
        }
    }
    progress.info(format!(
        "validated {} benchmark file(s) in {}",
        files.len(),
        dir.display()
    ));
    emit(&render::metrics_summary(&files), csv);
    if bad > 0 {
        eprintln!("[repro] error: {bad} invalid benchmark file(s)");
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_args();
    let progress = Progress::from_env(
        "repro",
        "REPRO_LOG",
        if opts.quiet {
            LogLevel::Quiet
        } else {
            LogLevel::Info
        },
    );
    let wants = |name: &str| opts.experiments.contains(name);
    let started = Instant::now();

    // Writes one versioned BENCH_<experiment>.json when --metrics-out is
    // set; a write failure is fatal (CI consumes these files).
    let write_bench = |experiment: &str, reg: &MetricsRegistry| {
        let Some(dir) = &opts.metrics_out else {
            return;
        };
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("[repro] error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let meta = BenchMeta {
            experiment: experiment.to_string(),
            git_rev: metrics_io::git_rev(),
            seed: opts.seed,
            quick: opts.quick,
        };
        let path = dir.join(format!("BENCH_{experiment}.json"));
        if let Err(e) = fs::write(&path, to_bench_json(&meta, reg)) {
            eprintln!("[repro] error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        progress.info(format!("wrote {}", path.display()));
    };

    if wants("table1") {
        emit(&render::table1(), opts.csv);
        let mut reg = MetricsRegistry::new();
        static_tables::register_metrics(&mut reg);
        write_bench("static_tables", &reg);
    }
    if wants("table2") {
        emit(&render::table2(), opts.csv);
    }
    if wants("table3") {
        emit(&render::table3(), opts.csv);
    }

    // Figs. 5/6/7 share one sweep.
    if wants("fig5") || wants("fig6") || wants("fig7") {
        progress.info("running path-length sweep (figs 5-7)...");
        let mut params = if opts.quick {
            path_length::PathLengthParams::quick(opts.seed)
        } else {
            path_length::PathLengthParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = path_length::measure(&params);
        if wants("fig5") {
            emit(&render::fig5(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig5(&rows).render());
            }
        }
        if wants("fig6") {
            emit(&render::fig6(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig6(&rows).render());
            }
        }
        if wants("fig7") {
            let cyc_phases = [
                HopPhase::Ascending,
                HopPhase::Descending,
                HopPhase::TraverseCycle,
            ];
            emit(&render::fig7(&rows, "Cycloid(7)", &cyc_phases), opts.csv);
            emit(&render::fig7(&rows, "Cycloid(11)", &cyc_phases), opts.csv);
            emit(&render::fig7(&rows, "Viceroy", &cyc_phases), opts.csv);
            emit(
                &render::fig7(&rows, "Koorde", &[HopPhase::DeBruijn, HopPhase::Successor]),
                opts.csv,
            );
        }
        let mut reg = MetricsRegistry::new();
        path_length::register_metrics(&rows, &mut reg);
        write_bench("path_length", &reg);
    }

    if wants("fig8") {
        progress.info("running key-distribution sweep (fig 8, dense)...");
        let params = if opts.quick {
            key_distribution::KeyDistributionParams {
                nodes: 2000,
                key_counts: vec![10_000, 50_000, 100_000],
                ..key_distribution::KeyDistributionParams::quick(opts.seed)
            }
        } else {
            key_distribution::KeyDistributionParams::fig8(opts.seed)
        };
        let rows = key_distribution::measure(&params);
        emit(
            &render::fig_keys(
                &rows,
                "Fig 8: keys per node, 2000 nodes in a 2048-slot space, mean (p01, p99)",
            ),
            opts.csv,
        );
        let mut reg = MetricsRegistry::new();
        key_distribution::register_metrics(&rows, &mut reg);
        write_bench("key_distribution_dense", &reg);
    }

    if wants("fig9") {
        progress.info("running key-distribution sweep (fig 9, sparse)...");
        let params = if opts.quick {
            key_distribution::KeyDistributionParams {
                nodes: 1000,
                key_counts: vec![10_000, 50_000, 100_000],
                ..key_distribution::KeyDistributionParams::quick(opts.seed)
            }
        } else {
            key_distribution::KeyDistributionParams::fig9(opts.seed)
        };
        let rows = key_distribution::measure(&params);
        emit(
            &render::fig_keys(
                &rows,
                "Fig 9: keys per node, 1000 nodes in a 2048-slot space, mean (p01, p99)",
            ),
            opts.csv,
        );
        let mut reg = MetricsRegistry::new();
        key_distribution::register_metrics(&rows, &mut reg);
        write_bench("key_distribution_sparse", &reg);
    }

    if wants("fig10") {
        progress.info("running query-load sweep (fig 10)...");
        let mut params = if opts.quick {
            query_load::QueryLoadParams {
                sizes: vec![64, 512],
                per_node_cap: Some(16),
                ..query_load::QueryLoadParams::paper(opts.seed)
            }
        } else {
            query_load::QueryLoadParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = query_load::measure(&params);
        emit(&render::fig10(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        query_load::register_metrics(&rows, &mut reg);
        write_bench("query_load", &reg);
    }

    if wants("fig11") || wants("table4") {
        progress.info("running mass-departure sweep (fig 11 / table 4)...");
        let mut params = if opts.quick {
            mass_departure::MassDepartureParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                nodes: 2048,
                lookups: 2_000,
                ..mass_departure::MassDepartureParams::quick(opts.seed)
            }
        } else {
            mass_departure::MassDepartureParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = mass_departure::measure(&params);
        if wants("fig11") {
            emit(&render::fig11(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig11(&rows).render());
            }
        }
        if wants("table4") {
            emit(&render::table4(&rows), opts.csv);
            emit(&render::table4_failures(&rows), opts.csv);
        }
        let mut reg = MetricsRegistry::new();
        mass_departure::register_metrics(&rows, &mut reg);
        write_bench("mass_departure", &reg);
    }

    if wants("fig12") || wants("table5") {
        progress.info("running churn sweep (fig 12 / table 5)...");
        let mut params = if opts.quick {
            churn_exp::ChurnExpParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                nodes: 512,
                lookups: 1_000,
                rates: vec![0.05, 0.20, 0.40],
                audit: true,
                ..churn_exp::ChurnExpParams::paper(opts.seed)
            }
        } else {
            churn_exp::ChurnExpParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = churn_exp::measure(&params);
        if wants("fig12") {
            emit(&render::fig12(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig12(&rows).render());
            }
        }
        if wants("table5") {
            emit(&render::table5(&rows), opts.csv);
        }
        if rows.iter().any(|r| r.audit.is_some()) {
            emit(&render::churn_audit(&rows), opts.csv);
        }
        let mut reg = MetricsRegistry::new();
        churn_exp::register_metrics(&rows, &mut reg);
        write_bench("churn", &reg);
    }

    if wants("fig13") || wants("fig14") {
        progress.info("running sparsity sweep (figs 13-14)...");
        let mut params = if opts.quick {
            sparsity::SparsityParams {
                kinds: dht_sim::PAPER_KINDS.to_vec(),
                id_space: 2048,
                lookups: 2_000,
                sparsities: vec![0.0, 0.3, 0.6, 0.9],
                seed: opts.seed,
                jobs: 1,
            }
        } else {
            sparsity::SparsityParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = sparsity::measure(&params);
        if wants("fig13") {
            emit(&render::fig13(&rows), opts.csv);
            if opts.chart {
                println!("{}", render::charts::fig13(&rows).render());
            }
        }
        if wants("fig14") {
            emit(&render::fig14(&rows), opts.csv);
        }
        let mut reg = MetricsRegistry::new();
        sparsity::register_metrics(&rows, &mut reg);
        write_bench("sparsity", &reg);
    }

    if wants("extpath") {
        progress.info("running extended path-length comparison (Pastry, CAN)...");
        let params = path_length::PathLengthParams {
            kinds: dht_sim::EXTENDED_KINDS.to_vec(),
            sizes: vec![(4, 64), (5, 160), (6, 384)],
            per_node_factor: 0.25,
            per_node_cap: Some(if opts.quick { 8 } else { 32 }),
            seed: opts.seed,
            jobs: opts.jobs,
        };
        let rows = path_length::measure(&params);
        emit(&render::ext_path(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        path_length::register_metrics(&rows, &mut reg);
        write_bench("ext_path", &reg);
    }

    if wants("exthotspot") {
        progress.info("running hot-spot workload extension...");
        let mut params = if opts.quick {
            hotspot::HotspotParams::quick(opts.seed)
        } else {
            hotspot::HotspotParams::paper_scale(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = hotspot::measure(&params);
        emit(&render::ext_hotspot(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        hotspot::register_metrics(&rows, &mut reg);
        write_bench("hotspot", &reg);
    }

    if wants("extdegree") {
        progress.info("measuring maintenance degrees (extension)...");
        let params = if opts.quick {
            maintenance::MaintenanceParams::quick(opts.seed)
        } else {
            maintenance::MaintenanceParams::paper_scale(opts.seed)
        };
        let rows = maintenance::measure(&params);
        emit(&render::ext_degree(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        maintenance::register_metrics(&rows, &mut reg);
        write_bench("maintenance", &reg);
    }

    if wants("fault") {
        progress.info("running message-loss sweep (fault extension)...");
        let mut params = if opts.quick {
            fault_tolerance::FaultToleranceParams::quick(opts.seed)
        } else {
            fault_tolerance::FaultToleranceParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = fault_tolerance::measure(&params);
        emit(&render::fault(&rows), opts.csv);
        if opts.chart {
            println!("{}", render::charts::fault(&rows).render());
        }
        if rows.iter().any(|r| r.audit.is_some()) {
            emit(&render::fault_audit(&rows), opts.csv);
        }
        let mut reg = MetricsRegistry::new();
        fault_tolerance::register_metrics(&rows, &mut reg);
        write_bench("fault", &reg);
    }

    if wants("extfail") {
        progress.info("running ungraceful-failure extension...");
        let mut params = if opts.quick {
            ungraceful::UngracefulParams::quick(opts.seed)
        } else {
            ungraceful::UngracefulParams::paper_scale(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = ungraceful::measure(&params);
        emit(&render::ext_failures(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        ungraceful::register_metrics(&rows, &mut reg);
        write_bench("ungraceful", &reg);
    }

    if wants("throughput") {
        progress.info(format!(
            "running lookup-throughput benchmark (jobs={})...",
            opts.jobs
        ));
        let params = if opts.quick {
            throughput::ThroughputParams::quick(opts.seed, opts.jobs)
        } else {
            throughput::ThroughputParams::paper(opts.seed, opts.jobs)
        };
        let rows = throughput::measure(&params);
        emit(&render::throughput(&rows), opts.csv);
        if let Some(bad) = rows.iter().find(|r| !r.results_identical()) {
            eprintln!(
                "[repro] error: {} results diverged between jobs=1 and jobs={}",
                bad.label, bad.jobs
            );
            std::process::exit(1);
        }
        let mut reg = MetricsRegistry::new();
        throughput::register_metrics(&rows, &mut reg);
        write_bench("lookup_throughput", &reg);
    }

    if wants("converge") {
        progress.info("running stabilization-convergence sweep (virtual clock)...");
        let mut params = if opts.quick {
            converge::ConvergeParams::quick(opts.seed)
        } else {
            converge::ConvergeParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = converge::measure(&params);
        emit(&render::converge(&rows), opts.csv);
        emit(&render::converge_latency(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        converge::register_metrics(&rows, &mut reg);
        write_bench("converge", &reg);
    }

    if wants("recover") {
        progress.info("running corruption-recovery sweep (virtual clock)...");
        let mut params = if opts.quick {
            recover::RecoverParams::quick(opts.seed)
        } else {
            recover::RecoverParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = recover::measure(&params);
        emit(&render::recover(&rows), opts.csv);
        if let Some(bad) = rows.iter().find(|r| r.clean_s.is_none()) {
            eprintln!(
                "[repro] error: {} did not recover from {} within the horizon",
                bad.label,
                bad.strategy.label()
            );
            std::process::exit(1);
        }
        if let Some(bad) = rows.iter().find(|r| r.post.failures > 0) {
            eprintln!(
                "[repro] error: {} failed {} lookups after recovering from {}",
                bad.label,
                bad.post.failures,
                bad.strategy.label()
            );
            std::process::exit(1);
        }
        let mut reg = MetricsRegistry::new();
        recover::register_metrics(&rows, &mut reg);
        write_bench("recover", &reg);
    }

    if wants("scale") {
        progress.info(format!(
            "running large-population scale sweep (jobs={})...",
            opts.jobs
        ));
        let mut params = if opts.quick {
            scale::ScaleParams::quick(opts.seed)
        } else {
            scale::ScaleParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = scale::measure_with(&params, |row| {
            progress.info(format!(
                "{} n={}: build {:.1}s, {:.0} bytes/node, {:.1}k lookups/s, join p99 {:.0}µs",
                row.label,
                row.n,
                row.build_us as f64 / 1_000_000.0,
                row.bytes_per_node,
                row.lookups_per_sec() / 1_000.0,
                row.join_us.p99,
            ));
        });
        emit(&render::scale(&rows), opts.csv);
        let mut reg = MetricsRegistry::new();
        scale::register_metrics(&rows, &mut reg);
        write_bench("scale", &reg);
    }

    if wants("profile") {
        progress.info("running per-phase cost profile (all kinds, default churn)...");
        let mut params = if opts.quick {
            profile::ProfileParams::quick(opts.seed)
        } else {
            profile::ProfileParams::paper(opts.seed)
        };
        params.jobs = opts.jobs;
        let rows = profile::measure(&params);
        emit(&render::profile_messages(&rows), opts.csv);
        emit(&render::profile_calls(&rows), opts.csv);
        emit(&render::profile_latency(&rows), opts.csv);
        // The profile's contract: every kind exercises every maintenance
        // phase. A structurally-zero cell means the accounting lost a
        // billing site, so fail loudly rather than export a hole.
        for row in &rows {
            for phase in [Phase::Lookup, Phase::Stabilize, Phase::Repair] {
                if row.phases.get(phase).msgs == 0 {
                    eprintln!(
                        "[repro] error: {} billed no {} messages",
                        row.label,
                        phase.label()
                    );
                    std::process::exit(1);
                }
            }
        }
        let mut reg = MetricsRegistry::new();
        profile::register_metrics(&rows, &mut reg);
        write_bench("profile", &reg);
    }

    // Reader side, after any producers so `repro path metrics
    // --metrics-out d` summarises what this very invocation wrote.
    if wants("metrics") {
        let dir = opts
            .metrics_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("bench-out"));
        run_metrics(&dir, opts.csv, &progress);
    }

    progress.info(format!(
        "done in {:.1}s (seed {}, {})",
        started.elapsed().as_secs_f64(),
        opts.seed,
        if opts.quick { "quick" } else { "paper scale" }
    ));
}
