//! `bench-diff`: the CI bench-regression gate.
//!
//! Compares every `BENCH_*.json` in a fresh output directory against
//! the committed baselines, under the gating rules of [`bench::diff`]:
//! counters, histograms, deterministic gauges, and telemetry series
//! must match within the tolerance band (exact by default — the
//! simulations are seeded and run on a virtual clock); timers and
//! wall-clock gauges are skipped; a baseline metric missing from the
//! fresh run is a regression; files whose `quick` flag or seed differ
//! are skipped whole.
//!
//! ```text
//! bench-diff FRESH_DIR BASELINE_DIR [--tolerance FRACTION] [--update-baselines]
//! ```
//!
//! Exits 0 when every gated value matched, 1 on any regression or
//! unreadable document, 2 on usage errors. `--update-baselines` copies
//! each fresh document over its baseline (creating new ones) instead of
//! comparing — run it after an intentional behaviour change, then
//! commit the refreshed `results/bench/`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::diff::compare_docs;
use bench::metrics_io;

struct Options {
    fresh: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    update: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-diff FRESH_DIR BASELINE_DIR [--tolerance FRACTION] [--update-baselines]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut dirs = Vec::new();
    let mut tolerance = 0.0f64;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| usage());
                tolerance = v.parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&tolerance) {
                    usage();
                }
            }
            "--update-baselines" => update = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => dirs.push(PathBuf::from(arg)),
        }
    }
    if dirs.len() != 2 {
        usage();
    }
    let baseline = dirs.pop().expect("two dirs");
    let fresh = dirs.pop().expect("two dirs");
    Options {
        fresh,
        baseline,
        tolerance,
        update,
    }
}

fn load(dir: &Path) -> Result<Vec<metrics_io::BenchFile>, String> {
    let entries =
        metrics_io::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for (path, loaded) in entries {
        match loaded {
            Ok(file) => files.push(file),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }
    Ok(files)
}

fn update_baselines(opts: &Options) -> ExitCode {
    let fresh = match load(&opts.fresh) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("[bench-diff] error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&opts.baseline) {
        eprintln!(
            "[bench-diff] error: cannot create {}: {e}",
            opts.baseline.display()
        );
        return ExitCode::FAILURE;
    }
    for file in &fresh {
        let name = file.path.file_name().expect("BENCH file has a name");
        let dest = opts.baseline.join(name);
        if let Err(e) = fs::copy(&file.path, &dest) {
            eprintln!("[bench-diff] error: copying to {}: {e}", dest.display());
            return ExitCode::FAILURE;
        }
        println!("[bench-diff] updated {}", dest.display());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.update {
        return update_baselines(&opts);
    }
    let (fresh, baseline) = match (load(&opts.fresh), load(&opts.baseline)) {
        (Ok(f), Ok(b)) => (f, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("[bench-diff] error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.is_empty() {
        eprintln!(
            "[bench-diff] error: no BENCH_*.json baselines in {}",
            opts.baseline.display()
        );
        return ExitCode::FAILURE;
    }
    let mut regressions = 0usize;
    for base in &baseline {
        let name = base
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<unnamed>")
            .to_string();
        let Some(counterpart) = fresh
            .iter()
            .find(|f| f.path.file_name() == base.path.file_name())
        else {
            println!("[bench-diff] {name}: SKIP (not produced by this run)");
            continue;
        };
        let diff = compare_docs(&base.doc, &counterpart.doc, opts.tolerance);
        if let Some(reason) = &diff.skipped_file {
            println!("[bench-diff] {name}: SKIP ({reason})");
            continue;
        }
        if diff.passed() {
            let extra = if diff.extra > 0 {
                format!(", {} new without baselines", diff.extra)
            } else {
                String::new()
            };
            println!(
                "[bench-diff] {name}: OK ({} gated, {} skipped{extra})",
                diff.gated, diff.skipped
            );
        } else {
            regressions += diff.failures.len();
            println!(
                "[bench-diff] {name}: FAIL ({} regressions, {} gated)",
                diff.failures.len(),
                diff.gated
            );
            for failure in &diff.failures {
                println!("[bench-diff]   {failure}");
            }
        }
    }
    if regressions > 0 {
        eprintln!(
            "[bench-diff] {regressions} regression(s); if intentional, refresh with \
             bench-diff {} {} --update-baselines",
            opts.fresh.display(),
            opts.baseline.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
