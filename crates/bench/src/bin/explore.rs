//! `explore` — an interactive REPL for poking at any of the overlays:
//! build a network, run lookups and watch the route, churn nodes in and
//! out, crash them, stabilize, and inspect statistics.
//!
//! ```text
//! cargo run --release -p bench --bin explore
//! dht> new cycloid7 500
//! dht> lookup movie.mp4
//! dht> fail 1234
//! dht> stats
//! ```

use std::io::{self, BufRead, Write};

use dht_core::hash::hash_str;
use dht_core::overlay::Overlay;
use dht_core::rng::stream;
use dht_core::stats::Summary;
use dht_sim::{build_overlay, OverlayKind, ALL_KINDS};
use rand::rngs::StdRng;
use rand::Rng;

struct Session {
    net: Box<dyn Overlay>,
    rng: StdRng,
}

fn kind_by_name(name: &str) -> Option<OverlayKind> {
    let needle = name.to_ascii_lowercase();
    ALL_KINDS.into_iter().find(|k| {
        k.label()
            .to_ascii_lowercase()
            .replace(['(', ')', '-', '='], "")
            .contains(&needle.replace(['(', ')', '-', '='], ""))
    })
}

const HELP: &str = "\
commands:
  new <kind> <n> [seed]   build a network (kinds: cycloid7 cycloid11 viceroy
                          koorde koordebestfit chord pastry can)
  lookup <name>           route a lookup for the named object from a random node
  owner <name>            show which node stores the named object
  join                    one node joins via the overlay's protocol
  leave <token>           graceful departure of a node
  fail <token>            ungraceful crash of a node (no notifications)
  stabilize               one full stabilization round
  nodes [count]           list the first node tokens
  stats [lookups]         run a lookup batch and print path/timeout stats
  loads                   summarize per-node query loads
  help                    this text
  quit                    exit";

fn main() {
    println!("dht explorer — `help` for commands");
    let stdin = io::stdin();
    let mut session: Option<Session> = None;
    loop {
        print!("dht> ");
        io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = parts.first() else { continue };
        match cmd {
            "quit" | "exit" | "q" => break,
            "help" | "?" => println!("{HELP}"),
            "new" => {
                let Some(kind) = parts.get(1).and_then(|n| kind_by_name(n)) else {
                    println!("unknown kind; try: cycloid7, koorde, viceroy, chord, pastry, can");
                    continue;
                };
                let n: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(256);
                let seed: u64 = parts.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
                let net = build_overlay(kind, n, seed);
                println!(
                    "built {} with {} nodes (degree bound: {})",
                    net.name(),
                    net.len(),
                    net.degree_bound()
                        .map_or("O(log n) / O(d)".to_string(), |d| d.to_string())
                );
                session = Some(Session {
                    net,
                    rng: stream(seed, "explore"),
                });
            }
            _ => {
                let Some(s) = session.as_mut() else {
                    println!("no network yet — `new cycloid7 256` first");
                    continue;
                };
                run_command(s, cmd, &parts);
            }
        }
    }
    println!("bye");
}

fn run_command(s: &mut Session, cmd: &str, parts: &[&str]) {
    match cmd {
        "lookup" => {
            let Some(name) = parts.get(1) else {
                println!("usage: lookup <name>");
                return;
            };
            let Some(src) = s.net.random_node(&mut s.rng) else {
                println!("network is empty");
                return;
            };
            let raw = hash_str(name);
            let trace = s.net.lookup(src, raw);
            let phases: Vec<&str> = trace.hops.iter().map(|h| h.label()).collect();
            println!(
                "{name}: {:?} in {} hops from node {src} -> node {} ({} timeouts)",
                trace.outcome,
                trace.path_len(),
                trace.terminal,
                trace.timeouts
            );
            if !phases.is_empty() {
                println!("  route: {}", phases.join(" > "));
            }
        }
        "owner" => {
            let Some(name) = parts.get(1) else {
                println!("usage: owner <name>");
                return;
            };
            match s.net.owner_of(hash_str(name)) {
                Some(o) => println!(
                    "{name} -> node {o} (key id {})",
                    s.net.key_id(hash_str(name))
                ),
                None => println!("network is empty"),
            }
        }
        "join" => match s.net.join(&mut s.rng) {
            Some(t) => println!("node {t} joined (network now {})", s.net.len()),
            None => println!("identifier space is full"),
        },
        "leave" | "fail" => {
            let Some(token) = parts.get(1).and_then(|t| t.parse::<u64>().ok()) else {
                println!("usage: {cmd} <token>   (see `nodes`)");
                return;
            };
            let ok = if cmd == "leave" {
                s.net.leave(token)
            } else {
                s.net.fail(token)
            };
            if ok {
                println!(
                    "node {token} {} (network now {})",
                    if cmd == "leave" {
                        "left gracefully"
                    } else {
                        "crashed"
                    },
                    s.net.len()
                );
            } else {
                println!("node {token} is not live");
            }
        }
        "stabilize" => {
            s.net.stabilize();
            println!("stabilized {} nodes", s.net.len());
        }
        "nodes" => {
            let count: usize = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            let tokens = s.net.node_tokens();
            for t in tokens.iter().take(count) {
                println!("  node {t}");
            }
            if tokens.len() > count {
                println!("  ... and {} more", tokens.len() - count);
            }
        }
        "stats" => {
            let lookups: usize = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
            let tokens = s.net.node_tokens();
            let mut paths = Vec::with_capacity(lookups);
            let mut timeouts = Vec::with_capacity(lookups);
            let mut failures = 0usize;
            for i in 0..lookups {
                let t = s.net.lookup(tokens[i % tokens.len()], s.rng.gen());
                paths.push(t.path_len());
                timeouts.push(u64::from(t.timeouts));
                if !t.outcome.is_success() {
                    failures += 1;
                }
            }
            let p = Summary::of_lens(&paths);
            let to = Summary::of_counts(&timeouts);
            println!(
                "{} lookups on {} ({} nodes):",
                lookups,
                s.net.name(),
                s.net.len()
            );
            println!(
                "  path length: mean {:.2}, p01 {:.0}, p99 {:.0}, max {:.0}",
                p.mean, p.p01, p.p99, p.max
            );
            println!(
                "  timeouts   : mean {:.3}, p99 {:.0}   failures: {failures}",
                to.mean, to.p99
            );
        }
        "loads" => {
            let l = Summary::of_counts(&s.net.query_loads());
            println!(
                "query loads over {} nodes: mean {:.1}, p01 {:.0}, p99 {:.0}, max {:.0}",
                l.n, l.mean, l.p01, l.p99, l.max
            );
        }
        other => println!("unknown command '{other}' — `help` lists commands"),
    }
}
