//! Comparing fresh `BENCH_*.json` documents against committed baselines.
//!
//! This is the library side of the `bench-diff` binary — the CI
//! regression gate. The rules, also documented in
//! `results/bench/README.md`:
//!
//! - **Gated**: counters, histograms (count/sum/min/max and every
//!   bucket), deterministic gauges, and telemetry series. All of these
//!   derive from seeded simulation on the virtual clock, so a fresh run
//!   with the same seed must reproduce the baseline exactly; the
//!   optional tolerance widens the band for intentionally noisy setups.
//! - **Skipped**: timers (wall-clock by construction) and gauges whose
//!   name marks them as wall-clock or machine-dependent (`per_sec`,
//!   `wall`, `speedup`, `jobs`).
//! - A baseline metric or series missing from the fresh run is a
//!   failure — silently dropping instrumentation is itself a
//!   regression.
//! - A baseline file whose `quick` flag or `seed` differs from the
//!   fresh run is skipped whole: the documents describe different
//!   workloads, so value comparison would be noise. This is how the
//!   committed paper-scale profile coexists with quick CI runs.

use std::collections::BTreeMap;

use dht_core::obs::json::Json;

/// Outcome of comparing one baseline document against its fresh
/// counterpart.
#[derive(Debug, Default)]
pub struct FileDiff {
    /// Metrics and series actually value-compared.
    pub gated: usize,
    /// Entries skipped by the wall-clock rules.
    pub skipped: usize,
    /// Fresh entries with no baseline counterpart (worth a baseline
    /// refresh, but not a regression).
    pub extra: usize,
    /// Human-readable regression descriptions; empty means the file
    /// passed.
    pub failures: Vec<String>,
    /// When set, the whole file was skipped for this reason and no
    /// values were compared.
    pub skipped_file: Option<String>,
}

impl FileDiff {
    /// True when nothing regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// True for gauge names the gate must not compare: throughputs and
/// latencies measured on the host's wall clock, and run-shape echoes
/// like the job count.
#[must_use]
pub fn is_wall_clock_gauge(name: &str) -> bool {
    name.contains("per_sec")
        || name.contains("wall")
        || name.contains("speedup")
        || name.ends_with(".jobs")
}

fn within(baseline: f64, fresh: f64, tol: f64) -> bool {
    if baseline == fresh {
        return true;
    }
    (fresh - baseline).abs() <= tol * baseline.abs().max(1.0)
}

fn name_of(entry: &Json) -> String {
    entry
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string()
}

fn index_by_name<'a>(doc: &'a Json, key: &str) -> BTreeMap<String, &'a Json> {
    doc.get(key)
        .and_then(Json::as_array)
        .map(|entries| entries.iter().map(|e| (name_of(e), e)).collect())
        .unwrap_or_default()
}

fn num(entry: &Json, key: &str) -> f64 {
    entry.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn compare_field(
    name: &str,
    key: &str,
    base: &Json,
    fresh: &Json,
    tol: f64,
    failures: &mut Vec<String>,
) {
    let b = num(base, key);
    let f = num(fresh, key);
    if !within(b, f, tol) {
        failures.push(format!("{name}: {key} changed {b} -> {f}"));
    }
}

fn compare_metric(name: &str, base: &Json, fresh: &Json, tol: f64, failures: &mut Vec<String>) {
    let kind = base.get("type").and_then(Json::as_str).unwrap_or("");
    let fresh_kind = fresh.get("type").and_then(Json::as_str).unwrap_or("");
    if kind != fresh_kind {
        failures.push(format!("{name}: type changed {kind} -> {fresh_kind}"));
        return;
    }
    match kind {
        "counter" | "gauge" => compare_field(name, "value", base, fresh, tol, failures),
        "histogram" => {
            for key in ["count", "sum", "min", "max"] {
                compare_field(name, key, base, fresh, tol, failures);
            }
            let empty: &[Json] = &[];
            let b_buckets = base
                .get("buckets")
                .and_then(Json::as_array)
                .unwrap_or(empty);
            let f_buckets = fresh
                .get("buckets")
                .and_then(Json::as_array)
                .unwrap_or(empty);
            if b_buckets.len() != f_buckets.len() {
                failures.push(format!(
                    "{name}: bucket count changed {} -> {}",
                    b_buckets.len(),
                    f_buckets.len()
                ));
                return;
            }
            for (b, f) in b_buckets.iter().zip(f_buckets) {
                if num(b, "le") != num(f, "le") {
                    failures.push(format!("{name}: bucket bounds changed"));
                    return;
                }
                if !within(num(b, "count"), num(f, "count"), tol) {
                    failures.push(format!(
                        "{name}: bucket le={} count changed {} -> {}",
                        num(b, "le"),
                        num(b, "count"),
                        num(f, "count")
                    ));
                    return;
                }
            }
        }
        _ => {}
    }
}

fn compare_series(name: &str, base: &Json, fresh: &Json, tol: f64, failures: &mut Vec<String>) {
    let empty: &[Json] = &[];
    let b_points = base.get("points").and_then(Json::as_array).unwrap_or(empty);
    let f_points = fresh
        .get("points")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    if b_points.len() != f_points.len() {
        failures.push(format!(
            "series {name}: point count changed {} -> {}",
            b_points.len(),
            f_points.len()
        ));
        return;
    }
    for (b, f) in b_points.iter().zip(f_points) {
        if num(b, "t_us") != num(f, "t_us") {
            failures.push(format!(
                "series {name}: timestamp changed {} -> {}",
                num(b, "t_us"),
                num(f, "t_us")
            ));
            return;
        }
        if !within(num(b, "value"), num(f, "value"), tol) {
            failures.push(format!(
                "series {name}: value at t_us={} changed {} -> {}",
                num(b, "t_us"),
                num(b, "value"),
                num(f, "value")
            ));
            return;
        }
    }
}

/// Compares one schema-valid baseline document against its fresh
/// counterpart under relative tolerance `tol` (`0.0` = exact).
#[must_use]
pub fn compare_docs(baseline: &Json, fresh: &Json, tol: f64) -> FileDiff {
    let mut diff = FileDiff::default();
    let header = |doc: &Json, key: &str| doc.get(key).cloned();
    for key in ["quick", "seed"] {
        let (b, f) = (header(baseline, key), header(fresh, key));
        let same = match (&b, &f) {
            (Some(b), Some(f)) => b.as_bool() == f.as_bool() && b.as_f64() == f.as_f64(),
            _ => false,
        };
        if !same {
            diff.skipped_file = Some(format!("`{key}` differs; the runs are not comparable"));
            return diff;
        }
    }
    let fresh_metrics = index_by_name(fresh, "metrics");
    for (name, base) in index_by_name(baseline, "metrics") {
        let kind = base.get("type").and_then(Json::as_str).unwrap_or("");
        if kind == "timer" || (kind == "gauge" && is_wall_clock_gauge(&name)) {
            diff.skipped += 1;
            continue;
        }
        match fresh_metrics.get(&name) {
            Some(f) => {
                diff.gated += 1;
                compare_metric(&name, base, f, tol, &mut diff.failures);
            }
            None => diff.failures.push(format!(
                "{name}: present in baseline, missing from fresh run"
            )),
        }
    }
    let baseline_metrics = index_by_name(baseline, "metrics");
    diff.extra += fresh_metrics
        .keys()
        .filter(|n| !baseline_metrics.contains_key(*n))
        .count();
    let fresh_series = index_by_name(fresh, "series");
    let baseline_series = index_by_name(baseline, "series");
    for (name, base) in &baseline_series {
        match fresh_series.get(name) {
            Some(f) => {
                diff.gated += 1;
                compare_series(name, base, f, tol, &mut diff.failures);
            }
            None => diff.failures.push(format!(
                "series {name}: present in baseline, missing from fresh run"
            )),
        }
    }
    diff.extra += fresh_series
        .keys()
        .filter(|n| !baseline_series.contains_key(*n))
        .count();
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::obs::json;

    fn doc(metrics: &str, series: &str) -> Json {
        json::parse(&format!(
            r#"{{"schema_version": 2, "experiment": "x", "git_rev": "abc",
                 "seed": 7, "quick": true, "metrics": [{metrics}],
                 "series": [{series}]}}"#
        ))
        .expect("test document parses")
    }

    const COUNTER: &str = r#"{"name": "a.msgs", "type": "counter", "value": 100}"#;
    const SERIES: &str =
        r#"{"name": "a.live", "points": [{"t_us": 0, "value": 64}, {"t_us": 5, "value": 63}]}"#;

    #[test]
    fn identical_documents_pass() {
        let d = doc(COUNTER, SERIES);
        let diff = compare_docs(&d, &d, 0.0);
        assert!(diff.passed(), "{:?}", diff.failures);
        assert_eq!(diff.gated, 2);
    }

    #[test]
    fn perturbed_counter_fails_exact_but_passes_in_band() {
        let base = doc(COUNTER, "");
        let fresh = doc(r#"{"name": "a.msgs", "type": "counter", "value": 101}"#, "");
        assert!(!compare_docs(&base, &fresh, 0.0).passed());
        assert!(compare_docs(&base, &fresh, 0.05).passed());
    }

    #[test]
    fn missing_metric_fails() {
        let base = doc(COUNTER, "");
        let fresh = doc("", "");
        let diff = compare_docs(&base, &fresh, 0.5);
        assert_eq!(diff.failures.len(), 1);
        assert!(diff.failures[0].contains("missing from fresh run"));
    }

    #[test]
    fn extra_fresh_metric_is_not_a_failure() {
        let base = doc("", "");
        let fresh = doc(COUNTER, SERIES);
        let diff = compare_docs(&base, &fresh, 0.0);
        assert!(diff.passed());
        assert_eq!(diff.extra, 2);
    }

    #[test]
    fn timers_and_wall_gauges_are_skipped() {
        let base = doc(
            r#"{"name": "a.wall", "type": "timer", "total_us": 5, "spans": 1, "max_us": 5},
               {"name": "a.lookups_per_sec", "type": "gauge", "value": 123.0}"#,
            "",
        );
        let fresh = doc(
            r#"{"name": "a.wall", "type": "timer", "total_us": 900, "spans": 1, "max_us": 900},
               {"name": "a.lookups_per_sec", "type": "gauge", "value": 999.0}"#,
            "",
        );
        let diff = compare_docs(&base, &fresh, 0.0);
        assert!(diff.passed());
        assert_eq!(diff.skipped, 2);
        assert_eq!(diff.gated, 0);
    }

    #[test]
    fn quick_flag_mismatch_skips_the_file() {
        let base = doc(COUNTER, "");
        let fresh = json::parse(
            r#"{"schema_version": 2, "experiment": "x", "git_rev": "abc",
                "seed": 7, "quick": false, "metrics": [], "series": []}"#,
        )
        .expect("parses");
        let diff = compare_docs(&base, &fresh, 0.0);
        assert!(diff.passed());
        assert!(diff.skipped_file.expect("skipped").contains("quick"));
    }

    #[test]
    fn series_perturbations_fail() {
        let base = doc("", SERIES);
        let shorter = doc(
            "",
            r#"{"name": "a.live", "points": [{"t_us": 0, "value": 64}]}"#,
        );
        assert!(!compare_docs(&base, &shorter, 0.0).passed());
        let moved = doc(
            "",
            r#"{"name": "a.live", "points": [{"t_us": 0, "value": 64}, {"t_us": 6, "value": 63}]}"#,
        );
        assert!(!compare_docs(&base, &moved, 0.5).passed());
        let drifted = doc(
            "",
            r#"{"name": "a.live", "points": [{"t_us": 0, "value": 64}, {"t_us": 5, "value": 99}]}"#,
        );
        assert!(!compare_docs(&base, &drifted, 0.0).passed());
        assert!(compare_docs(&base, &drifted, 0.6).passed());
    }

    #[test]
    fn histogram_shape_is_gated() {
        let h = |count: u64| {
            format!(
                r#"{{"name": "a.lat", "type": "histogram", "count": {count}, "sum": 10,
                    "min": 1, "max": 9, "mean": 5.0,
                    "buckets": [{{"le": 1, "count": 1}}, {{"le": 16, "count": {rest}}}]}}"#,
                rest = count - 1
            )
        };
        let base = doc(&h(2), "");
        let fresh = doc(&h(3), "");
        assert!(compare_docs(&base, &base, 0.0).passed());
        assert!(!compare_docs(&base, &fresh, 0.0).passed());
    }
}
