//! Turns experiment rows into the paper's table/figure layouts.

use dht_sim::chart::{chart_from_triples, Chart};
use dht_sim::experiments::churn_exp::ChurnRow;
use dht_sim::experiments::converge::ConvergeRow;
use dht_sim::experiments::fault_tolerance::FaultToleranceRow;
use dht_sim::experiments::key_distribution::KeyDistributionRow;
use dht_sim::experiments::mass_departure::MassDepartureRow;
use dht_sim::experiments::path_length::PathLengthRow;
use dht_sim::experiments::profile::ProfileRow;
use dht_sim::experiments::query_load::QueryLoadRow;
use dht_sim::experiments::recover::RecoverRow;
use dht_sim::experiments::scale::ScaleRow;
use dht_sim::experiments::sparsity::SparsityRow;
use dht_sim::experiments::static_tables;
use dht_sim::experiments::throughput::ThroughputRow;
use dht_sim::experiments::ungraceful::UngracefulRow;
use dht_sim::report::{audit_cell, f, mean_p01_p99, Table};

use dht_core::lookup::HopPhase;
use dht_core::obs::ALL_PHASES;

/// Pivots `(x, series, value)` triples into a table with one row per `x`
/// and one column per series, preserving first-appearance order.
fn pivot(title: &str, x_header: &str, triples: &[(String, String, String)]) -> Table {
    let mut xs: Vec<String> = Vec::new();
    let mut series: Vec<String> = Vec::new();
    for (x, s, _) in triples {
        if !xs.contains(x) {
            xs.push(x.clone());
        }
        if !series.contains(s) {
            series.push(s.clone());
        }
    }
    let mut headers: Vec<&str> = vec![x_header];
    headers.extend(series.iter().map(String::as_str));
    let mut table = Table::new(title, &headers);
    for x in &xs {
        let mut cells = vec![x.clone()];
        for s in &series {
            let v = triples
                .iter()
                .find(|(tx, ts, _)| tx == x && ts == s)
                .map_or("-".to_string(), |(_, _, v)| v.clone());
            cells.push(v);
        }
        table.row(cells);
    }
    table
}

/// Table 1: architectural comparison.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: comparison of representative P2P DHTs",
        &[
            "System",
            "Base network",
            "Lookup complexity",
            "Routing table size",
        ],
    );
    for r in static_tables::table1() {
        t.row(vec![
            r.system.to_string(),
            r.base.to_string(),
            r.lookup.to_string(),
            r.table_size,
        ]);
    }
    t
}

/// Table 2: routing state of node (4, 10110110) in a complete 8-d Cycloid.
#[must_use]
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: routing table state of Cycloid node (4,10110110), d = 8",
        &["Entry", "Value"],
    );
    for e in static_tables::table2() {
        t.row(vec![e.entry.to_string(), e.value]);
    }
    t
}

/// Table 3: node identification and key assignment.
#[must_use]
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: node identification and key assignment",
        &["Property", "Cycloid", "Viceroy", "Koorde"],
    );
    for r in static_tables::table3() {
        t.row(vec![
            r.property.to_string(),
            r.cycloid.to_string(),
            r.viceroy.to_string(),
            r.koorde.to_string(),
        ]);
    }
    t
}

/// Fig. 5: mean lookup path length vs network size.
#[must_use]
pub fn fig5(rows: &[PathLengthRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| (r.n.to_string(), r.agg.label.clone(), f(r.agg.path.mean)))
        .collect();
    pivot(
        "Fig 5: mean path length vs network size (n = d*2^d)",
        "n",
        &triples,
    )
}

/// Fig. 6: mean lookup path length vs network dimension.
#[must_use]
pub fn fig6(rows: &[PathLengthRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                r.dimension.to_string(),
                r.agg.label.clone(),
                f(r.agg.path.mean),
            )
        })
        .collect();
    pivot("Fig 6: mean path length vs dimension d", "d", &triples)
}

/// Fig. 7: per-phase path-length breakdown for one overlay.
#[must_use]
pub fn fig7(rows: &[PathLengthRow], label: &str, phases: &[HopPhase]) -> Table {
    let mut headers: Vec<String> = vec!["n".to_string()];
    for p in phases {
        headers.push(format!("{} hops", p.label()));
        headers.push(format!("{} %", p.label()));
    }
    headers.push("total".to_string());
    let mut t = Table::new(
        &format!("Fig 7: path-length breakdown — {label}"),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for r in rows.iter().filter(|r| r.agg.label == label) {
        let mut cells = vec![r.n.to_string()];
        for &p in phases {
            cells.push(f(r.agg.breakdown.mean_hops(p)));
            cells.push(format!("{:.1}", 100.0 * r.agg.breakdown.share(p)));
        }
        cells.push(f(r.agg.breakdown.mean_path_len()));
        t.row(cells);
    }
    t
}

/// Figs. 8/9: keys per node, `mean (p01, p99)`.
#[must_use]
pub fn fig_keys(rows: &[KeyDistributionRow], title: &str) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                r.keys.to_string(),
                r.label.clone(),
                mean_p01_p99(&r.per_node),
            )
        })
        .collect();
    pivot(title, "keys", &triples)
}

/// Fig. 10: query load per node, `mean (p01, p99)`.
#[must_use]
pub fn fig10(rows: &[QueryLoadRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| (r.n.to_string(), r.label.clone(), mean_p01_p99(&r.load)))
        .collect();
    pivot(
        "Fig 10: query load per node, mean (1st pct, 99th pct)",
        "n",
        &triples,
    )
}

/// Fig. 11: mean path length vs departure probability.
#[must_use]
pub fn fig11(rows: &[MassDepartureRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.1}", r.p),
                r.agg.label.clone(),
                f(r.agg.path.mean),
            )
        })
        .collect();
    pivot(
        "Fig 11: mean path length vs node departure probability p",
        "p",
        &triples,
    )
}

/// Table 4: timeouts per lookup vs departure probability.
#[must_use]
pub fn table4(rows: &[MassDepartureRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.1}", r.p),
                r.agg.label.clone(),
                mean_p01_p99(&r.agg.timeouts),
            )
        })
        .collect();
    pivot(
        "Table 4: timeouts per lookup, mean (1st pct, 99th pct)",
        "p",
        &triples,
    )
}

/// Companion of Table 4: lookup failures per run (§4.3's Koorde counts).
#[must_use]
pub fn table4_failures(rows: &[MassDepartureRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.1}", r.p),
                r.agg.label.clone(),
                r.agg.failures.to_string(),
            )
        })
        .collect();
    pivot("Lookup failures under mass departures", "p", &triples)
}

/// Fig. 12: mean path length vs node join/leave rate.
#[must_use]
pub fn fig12(rows: &[ChurnRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| (format!("{:.2}", r.rate), r.label.clone(), f(r.path.mean)))
        .collect();
    pivot(
        "Fig 12: mean path length vs node join/leave rate R (per second)",
        "R",
        &triples,
    )
}

/// Table 5: timeouts per lookup vs churn rate.
#[must_use]
pub fn table5(rows: &[ChurnRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.2}", r.rate),
                r.label.clone(),
                format!(
                    "{:.4} ({:.0}, {:.0})",
                    r.timeouts.mean, r.timeouts.p01, r.timeouts.p99
                ),
            )
        })
        .collect();
    pivot(
        "Table 5: timeouts per lookup under churn, mean (1st pct, 99th pct)",
        "R",
        &triples,
    )
}

/// Online-audit outcome for every churn cell: `clean (N)` after `N` node
/// checks, or the violation count. Emitted when the churn sweep ran with
/// [`dht_sim::experiments::churn_exp::ChurnExpParams::audit`] enabled.
#[must_use]
pub fn churn_audit(rows: &[ChurnRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.2}", r.rate),
                r.label.clone(),
                audit_cell(r.audit.as_ref()),
            )
        })
        .collect();
    pivot(
        "Online protocol-invariant audit under churn (nodes checked)",
        "R",
        &triples,
    )
}

/// The lookup-throughput benchmark: sequential vs sharded wall clock
/// per overlay, with the determinism check. Timings are intentionally
/// absent from every other table so `repro` output stays byte-stable
/// across `--jobs`; this table is the one place wall clock is shown.
#[must_use]
pub fn throughput(rows: &[ThroughputRow]) -> Table {
    let mut t = Table::new(
        "Benchmark: lookup throughput, sequential vs sharded execution",
        &[
            "system",
            "lookups",
            "jobs",
            "seq klookups/s",
            "par klookups/s",
            "speedup",
            "identical",
        ],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{}", r.sequential.path.n),
            format!("{}", r.jobs),
            format!("{:.1}", r.sequential.lookups_per_sec() / 1_000.0),
            format!("{:.1}", r.parallel.lookups_per_sec() / 1_000.0),
            format!("{:.2}x", r.speedup()),
            if r.results_identical() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Extension: compact-membership footprint and routing quality across
/// populations. Only run-invariant columns appear here — wall-clock
/// figures (build time, lookups/sec, join latency) live in
/// `BENCH_scale.json` and the stderr progress stream, so this table is
/// byte-identical across `--jobs` values (the CI determinism check).
#[must_use]
pub fn scale(rows: &[ScaleRow]) -> Table {
    let mut t = Table::new(
        "Extension: memory footprint and path quality at scale (compact membership)",
        &[
            "system",
            "n",
            "bytes/node",
            "state MiB",
            "mean hops",
            "p99 hops",
            "failures",
        ],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{}", r.n),
            format!("{:.1}", r.bytes_per_node),
            format!("{:.1}", r.state_bytes as f64 / (1024.0 * 1024.0)),
            f(r.agg.path.mean),
            f(r.agg.path.p99),
            format!("{}", r.agg.failures),
        ]);
    }
    t
}

/// Extension: time to stabilize after a mass join and a burst leave, per
/// overlay and stabilization period, on the virtual clock.
#[must_use]
pub fn converge(rows: &[ConvergeRow]) -> Table {
    let clean = |v: Option<u64>| v.map_or_else(|| "—".to_string(), |s| format!("{s}"));
    let mut t = Table::new(
        "Extension: time to audit-clean after membership shocks (simulated seconds)",
        &[
            "T (s)",
            "system",
            "joined",
            "join clean (s)",
            "left",
            "leave clean (s)",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{}", r.period),
            r.label.clone(),
            format!("{}", r.join_added),
            clean(r.join_clean_s),
            format!("{}", r.leave_removed),
            clean(r.leave_clean_s),
        ]);
    }
    t
}

/// Extension: lookup-latency percentiles under continuous-time churn
/// with message delays (base stabilization period only).
#[must_use]
pub fn converge_latency(rows: &[ConvergeRow]) -> Table {
    let mut t = Table::new(
        "Extension: lookup latency under churn on the virtual clock (continuous time)",
        &[
            "system",
            "T (s)",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean ms",
            "timeouts mean",
            "stranded",
            "failures",
            "sim secs",
        ],
    );
    for r in rows {
        let Some(load) = &r.load else {
            continue;
        };
        t.row(vec![
            r.label.clone(),
            format!("{}", r.period),
            f(load.p50_ms),
            f(load.p95_ms),
            f(load.p99_ms),
            f(load.mean_ms),
            f(load.timeouts_mean),
            format!("{}", load.stranded),
            format!("{}", load.failures),
            format!("{:.0}", load.sim_secs),
        ]);
    }
    t
}

/// Per-phase message totals for every profiled overlay: one row per
/// kind, one column per [`dht_core::obs::Phase`].
#[must_use]
pub fn profile_messages(rows: &[ProfileRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .flat_map(|r| {
            ALL_PHASES.iter().map(move |&p| {
                (
                    r.label.clone(),
                    p.label().to_string(),
                    r.phases.get(p).msgs.to_string(),
                )
            })
        })
        .collect();
    pivot(
        "Profile: messages billed per phase under default churn",
        "Overlay",
        &triples,
    )
}

/// Per-phase routine invocations for every profiled overlay.
#[must_use]
pub fn profile_calls(rows: &[ProfileRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .flat_map(|r| {
            ALL_PHASES.iter().map(move |&p| {
                (
                    r.label.clone(),
                    p.label().to_string(),
                    r.phases.get(p).calls.to_string(),
                )
            })
        })
        .collect();
    pivot(
        "Profile: phase invocations under default churn",
        "Overlay",
        &triples,
    )
}

/// Simulated lookup-latency quantiles from the log₂-bucket histogram
/// (nearest-rank; mid-range values carry a factor-of-two error bound,
/// extremes are exact — see [`dht_core::obs::Histogram::quantile`]).
#[must_use]
pub fn profile_latency(rows: &[ProfileRow]) -> Table {
    let mut t = Table::new(
        "Profile: simulated lookup latency quantiles (µs)",
        &["Overlay", "p50", "p90", "p99", "max", "lookups"],
    );
    for r in rows {
        let q = |q: f64| {
            r.latency
                .quantile(q)
                .map_or_else(|| "—".to_string(), |v| v.to_string())
        };
        t.row(vec![
            r.label.clone(),
            q(0.5),
            q(0.9),
            q(0.99),
            q(1.0),
            r.latency.count().to_string(),
        ]);
    }
    t
}

/// Extension: time and cost to recover from seeded routing-state
/// corruption, with the full-scope audit as the recovery oracle.
#[must_use]
pub fn recover(rows: &[RecoverRow]) -> Table {
    let clean = |v: Option<u64>| v.map_or_else(|| "—".to_string(), |s| format!("{s}"));
    let mut t = Table::new(
        "Extension: self-stabilizing recovery from corrupted routing state",
        &[
            "strategy",
            "severity",
            "T (s)",
            "system",
            "targeted",
            "entries hit",
            "clean (s)",
            "repair calls",
            "entries fixed",
            "post failures",
        ],
    );
    for r in rows {
        t.row(vec![
            r.strategy.label().to_string(),
            format!("{:.2}", r.severity),
            format!("{}", r.period),
            r.label.clone(),
            format!("{}", r.targeted),
            format!("{}", r.mutated_entries),
            clean(r.clean_s),
            format!("{}", r.repair_calls),
            format!("{}", r.repaired_entries),
            format!("{}", r.post.failures),
        ]);
    }
    t
}

/// Extension: the loss-rate sweep — success, retries, and latency per
/// overlay under message-level faults.
#[must_use]
pub fn fault(rows: &[FaultToleranceRow]) -> Table {
    let mut t = Table::new(
        "Extension: lookup resilience under message loss (retry w/ backoff)",
        &[
            "loss %",
            "system",
            "success %",
            "path mean",
            "retries mean (p99)",
            "msg timeouts mean",
            "latency ms mean (p50, p99)",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}", 100.0 * r.loss),
            r.label.clone(),
            format!("{:.2}", 100.0 * r.success_rate()),
            f(r.agg.path.mean),
            format!("{:.3} ({:.0})", r.agg.retries.mean, r.agg.retries.p99),
            format!("{:.4}", r.agg.msg_timeouts.mean),
            format!(
                "{:.1} ({:.1}, {:.1})",
                r.agg.latency_ms.mean, r.agg.latency_ms.p50, r.agg.latency_ms.p99
            ),
        ]);
    }
    t
}

/// Routing-state audit after every lossy cell: message faults must never
/// mutate routing tables, so every cell must stay clean.
#[must_use]
pub fn fault_audit(rows: &[FaultToleranceRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.0}%", 100.0 * r.loss),
                r.label.clone(),
                audit_cell(r.audit.as_ref()),
            )
        })
        .collect();
    pivot(
        "Routing-state audit after lossy lookups (nodes checked)",
        "loss",
        &triples,
    )
}

/// Fig. 13: mean path length vs degree of sparsity.
#[must_use]
pub fn fig13(rows: &[SparsityRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("{:.0}%", 100.0 * r.sparsity),
                r.agg.label.clone(),
                f(r.agg.path.mean),
            )
        })
        .collect();
    pivot(
        "Fig 13: mean path length vs degree of network sparsity",
        "sparsity",
        &triples,
    )
}

/// Fig. 14: Koorde's de Bruijn/successor breakdown vs sparsity.
#[must_use]
pub fn fig14(rows: &[SparsityRow]) -> Table {
    let mut t = Table::new(
        "Fig 14: Koorde path-length breakdown vs sparsity",
        &["sparsity", "debruijn hops", "successor hops", "successor %"],
    );
    for r in rows.iter().filter(|r| r.agg.label == "Koorde") {
        t.row(vec![
            format!("{:.0}%", 100.0 * r.sparsity),
            f(r.agg.breakdown.mean_hops(HopPhase::DeBruijn)),
            f(r.agg.breakdown.mean_hops(HopPhase::Successor)),
            format!("{:.1}", 100.0 * r.agg.breakdown.share(HopPhase::Successor)),
        ]);
    }
    t
}

/// Chart versions of the line figures (for `repro --chart`).
pub mod charts {
    use super::*;
    use dht_sim::experiments::churn_exp::ChurnRow;
    use dht_sim::experiments::mass_departure::MassDepartureRow;
    use dht_sim::experiments::path_length::PathLengthRow;
    use dht_sim::experiments::sparsity::SparsityRow;

    /// Fig. 5 as a terminal chart.
    #[must_use]
    pub fn fig5(rows: &[PathLengthRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| (r.n.to_string(), r.agg.label.clone(), r.agg.path.mean))
            .collect();
        chart_from_triples("Fig 5 (chart): mean path length vs n", &triples)
    }

    /// Fig. 6 as a terminal chart.
    #[must_use]
    pub fn fig6(rows: &[PathLengthRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| {
                (
                    r.dimension.to_string(),
                    r.agg.label.clone(),
                    r.agg.path.mean,
                )
            })
            .collect();
        chart_from_triples("Fig 6 (chart): mean path length vs d", &triples)
    }

    /// Fig. 11 as a terminal chart.
    #[must_use]
    pub fn fig11(rows: &[MassDepartureRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| (format!("{:.1}", r.p), r.agg.label.clone(), r.agg.path.mean))
            .collect();
        chart_from_triples(
            "Fig 11 (chart): mean path length vs departure probability",
            &triples,
        )
    }

    /// Fig. 12 as a terminal chart.
    #[must_use]
    pub fn fig12(rows: &[ChurnRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| (format!("{:.2}", r.rate), r.label.clone(), r.path.mean))
            .collect();
        chart_from_triples("Fig 12 (chart): mean path length vs churn rate R", &triples)
    }

    /// The loss sweep as a terminal chart: success rate vs loss.
    #[must_use]
    pub fn fault(rows: &[FaultToleranceRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| {
                (
                    format!("{:.0}%", 100.0 * r.loss),
                    r.label.clone(),
                    100.0 * r.success_rate(),
                )
            })
            .collect();
        chart_from_triples(
            "Fault sweep (chart): lookup success % vs message loss",
            &triples,
        )
    }

    /// Fig. 13 as a terminal chart.
    #[must_use]
    pub fn fig13(rows: &[SparsityRow]) -> Chart {
        let triples: Vec<_> = rows
            .iter()
            .map(|r| {
                (
                    format!("{:.0}%", 100.0 * r.sparsity),
                    r.agg.label.clone(),
                    r.agg.path.mean,
                )
            })
            .collect();
        chart_from_triples("Fig 13 (chart): mean path length vs sparsity", &triples)
    }
}

/// Extension: mean path length of the paper's systems plus the Pastry and
/// CAN baselines of Table 1, at equal sizes.
#[must_use]
pub fn ext_path(rows: &[PathLengthRow]) -> Table {
    let triples: Vec<_> = rows
        .iter()
        .map(|r| (r.n.to_string(), r.agg.label.clone(), f(r.agg.path.mean)))
        .collect();
    pivot(
        "Extension: mean path length incl. Pastry (hypercube) and CAN (mesh)",
        "n",
        &triples,
    )
}

/// Extension: hot spots under Zipf key popularity.
#[must_use]
pub fn ext_hotspot(rows: &[dht_sim::experiments::hotspot::HotspotRow]) -> Table {
    let mut t = Table::new(
        "Extension: query load under uniform vs Zipf(1.0) key popularity",
        &[
            "system",
            "uniform mean (p01, p99)",
            "uniform max",
            "zipf mean (p01, p99)",
            "zipf max",
            "hot-spot amplification",
        ],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            mean_p01_p99(&r.uniform),
            format!("{:.0}", r.uniform.max),
            mean_p01_p99(&r.zipf),
            format!("{:.0}", r.zipf.max),
            format!("{:.2}x", r.amplification()),
        ]);
    }
    t
}

/// Extension: maintenance burden — out-degree (state per node) and
/// in-degree (pointers dangling on departure) distributions.
#[must_use]
pub fn ext_degree(rows: &[dht_sim::experiments::maintenance::MaintenanceRow]) -> Table {
    let mut t = Table::new(
        "Extension: routing-state degree and departure repair bill",
        &[
            "system",
            "n",
            "out-degree mean",
            "out max",
            "in-degree p99",
            "in max",
        ],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            r.n.to_string(),
            f(r.out_degree.mean),
            format!("{:.0}", r.out_degree.max),
            format!("{:.0}", r.in_degree.p99),
            format!("{:.0}", r.in_degree.max),
        ]);
    }
    t
}

/// Extension: lookup success under ungraceful failures, before/after one
/// stabilization round.
#[must_use]
pub fn ext_failures(rows: &[UngracefulRow]) -> Table {
    let mut t = Table::new(
        "Extension: ungraceful failures — lookup success rate and timeouts",
        &[
            "p",
            "system",
            "survivors",
            "success % (pre-stab)",
            "timeouts (pre-stab)",
            "success % (post-stab)",
        ],
    );
    for r in rows {
        let pre_ok = 100.0 * (r.before_stabilize.path.n - r.before_stabilize.failures) as f64
            / r.before_stabilize.path.n.max(1) as f64;
        let post_ok = 100.0 * (r.after_stabilize.path.n - r.after_stabilize.failures) as f64
            / r.after_stabilize.path.n.max(1) as f64;
        t.row(vec![
            format!("{:.1}", r.p),
            r.before_stabilize.label.clone(),
            r.survivors.to_string(),
            format!("{pre_ok:.2}"),
            mean_p01_p99(&r.before_stabilize.timeouts),
            format!("{post_ok:.2}"),
        ]);
    }
    t
}

/// The `repro metrics` summary: one row per metric across every loaded
/// `BENCH_*.json` document, with a compact type-appropriate value cell.
#[must_use]
pub fn metrics_summary(files: &[crate::metrics_io::BenchFile]) -> Table {
    use dht_core::obs::json::Json;
    let mut t = Table::new(
        "Benchmark metrics (BENCH_*.json)",
        &["experiment", "metric", "type", "value"],
    );
    for file in files {
        let experiment = file
            .doc
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let metrics = file
            .doc
            .get("metrics")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        for m in metrics {
            let name = m.get("name").and_then(Json::as_str).unwrap_or("?");
            let kind = m.get("type").and_then(Json::as_str).unwrap_or("?");
            let num = |key: &str| m.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            let value = match kind {
                "counter" => format!("{}", num("value")),
                "gauge" => f(num("value")),
                "timer" => format!("{} µs over {} span(s)", num("total_us"), num("spans")),
                "histogram" => {
                    format!(
                        "n={} mean={} max={}",
                        num("count"),
                        f(num("mean")),
                        num("max")
                    )
                }
                _ => "-".to_string(),
            };
            t.row(vec![
                experiment.clone(),
                name.to_string(),
                kind.to_string(),
                value,
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        assert!(table1().render().contains("Cycloid"));
        assert!(table2().render().contains("cubical neighbor"));
        assert!(table3().render().contains("Key placement"));
    }

    #[test]
    fn pivot_fills_missing_with_dash() {
        let triples = vec![
            ("1".to_string(), "A".to_string(), "x".to_string()),
            ("2".to_string(), "B".to_string(), "y".to_string()),
        ];
        let t = pivot("t", "k", &triples);
        let s = t.render();
        assert!(s.contains('-'), "missing cells dashed:\n{s}");
    }
}
