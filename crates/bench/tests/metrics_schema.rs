//! Schema conformance of the `BENCH_*.json` documents `repro` writes.
//!
//! The synthetic tests run everywhere. The last test is the CI leg's
//! checker: after the workflow runs `repro path --quick --metrics-out
//! results/bench`, it re-runs this suite with
//! `METRICS_OUT_DIR=results/bench` and the test validates every written
//! document end to end — schema validity plus the acceptance floor:
//! throughput, a per-phase hop histogram, and a wall-clock timer for
//! every overlay in the sweep. A relative `METRICS_OUT_DIR` is resolved
//! against the **workspace root** (where the CI steps run), not the
//! test binary's own working directory.

use bench::metrics_io::{self, BenchFile};
use dht_core::obs::json::Json;
use dht_core::obs::{to_bench_json, BenchMeta, MetricsRegistry};
use std::path::Path;

fn meta() -> BenchMeta {
    BenchMeta {
        experiment: "schema_test".into(),
        git_rev: metrics_io::git_rev(),
        seed: 2004,
        quick: true,
    }
}

#[test]
fn empty_registry_round_trips() {
    let reg = MetricsRegistry::new();
    let doc = metrics_io::parse_and_validate(&to_bench_json(&meta(), &reg)).expect("valid");
    assert_eq!(
        doc.get("metrics").and_then(Json::as_array).map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn every_metric_kind_round_trips() {
    let mut reg = MetricsRegistry::new();
    reg.counter("c").add(3);
    reg.gauge("g").set(-1.25);
    let h = reg.histogram("h");
    for v in [0, 1, 2, 1000, u64::MAX] {
        h.record(v);
    }
    reg.timer("t").record_us(17);
    let text = to_bench_json(&meta(), &reg);
    let doc = metrics_io::parse_and_validate(&text).expect("valid");
    let metrics = doc.get("metrics").and_then(Json::as_array).unwrap();
    assert_eq!(metrics.len(), 4);
}

#[test]
fn validator_rejects_each_missing_header_field() {
    let reg = MetricsRegistry::new();
    let good = to_bench_json(&meta(), &reg);
    for field in ["schema_version", "experiment", "git_rev", "seed", "quick"] {
        let broken = good.replacen(&format!("\"{field}\""), "\"renamed\"", 1);
        let err = metrics_io::parse_and_validate(&broken)
            .expect_err("renamed header field must fail validation");
        assert!(err.contains(field), "{field}: {err}");
    }
}

/// CI checker: validates the documents a prior `repro ... --metrics-out`
/// invocation wrote to `$METRICS_OUT_DIR`. When a `BENCH_path_length.json`
/// is present (the `repro path` leg), additionally requires the
/// acceptance-floor metrics for every overlay in the sweep.
#[test]
fn written_bench_files_conform() {
    let Some(dir) = std::env::var_os("METRICS_OUT_DIR") else {
        eprintln!("METRICS_OUT_DIR not set; skipping on-disk validation");
        return;
    };
    // Cargo runs test binaries from the package dir (`crates/bench`);
    // CI passes a path relative to the workspace root.
    let mut dir = std::path::PathBuf::from(&dir);
    if dir.is_relative() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        dir = root.join(dir);
    }
    let entries = metrics_io::read_dir(&dir).expect("readable metrics dir");
    assert!(
        !entries.is_empty(),
        "no BENCH_*.json in {} — did repro run with --metrics-out?",
        dir.display()
    );
    let mut files: Vec<BenchFile> = Vec::new();
    for (path, loaded) in entries {
        files.push(loaded.unwrap_or_else(|e| panic!("{}: {e}", path.display())));
    }
    let path_length = files
        .iter()
        .find(|f| f.doc.get("experiment").and_then(Json::as_str) == Some("path_length"));
    if let Some(file) = path_length {
        let metrics = file.doc.get("metrics").and_then(Json::as_array).unwrap();
        let names: Vec<&str> = metrics
            .iter()
            .filter_map(|m| m.get("name").and_then(Json::as_str))
            .collect();
        for overlay in ["Cycloid(7)", "Cycloid(11)", "Chord", "Koorde", "Viceroy"] {
            let has = |suffix: &str| {
                names
                    .iter()
                    .any(|n| n.starts_with(&format!("{overlay}/")) && n.ends_with(suffix))
            };
            assert!(has(".lookups_per_sec"), "{overlay}: missing throughput");
            assert!(has(".hops"), "{overlay}: missing hop histogram");
            assert!(
                names
                    .iter()
                    .any(|n| n.starts_with(&format!("{overlay}/")) && n.contains(".hops.")),
                "{overlay}: missing per-phase hop histograms"
            );
            assert!(has(".wall"), "{overlay}: missing wall-clock timer");
        }
    }
}
