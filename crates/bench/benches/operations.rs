//! Micro-benchmarks of the primitive operations every experiment is built
//! from: a single lookup, a protocol join, a graceful leave, one node's
//! stabilization refresh, key ownership resolution, and consistent
//! hashing.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::hash::{hash_str, splitmix64};
use dht_core::rng::stream;
use dht_sim::{build_overlay, OverlayKind, PAPER_KINDS};
use rand::Rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    g.measurement_time(Duration::from_secs(3));
    for kind in PAPER_KINDS {
        let mut net = build_overlay(kind, 2048, 1);
        let tokens = net.node_tokens();
        let mut rng = stream(1, kind.label());
        let mut i = 0usize;
        g.bench_function(BenchmarkId::new("n2048", kind.label()), |b| {
            b.iter(|| {
                i = (i + 1) % tokens.len();
                let t = net.lookup(tokens[i], rng.gen());
                black_box(t.path_len())
            })
        });
    }
    g.finish();
}

fn bench_join_leave(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn_ops");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    for kind in [
        OverlayKind::Cycloid7,
        OverlayKind::Koorde,
        OverlayKind::Chord,
    ] {
        g.bench_function(BenchmarkId::new("join_then_leave", kind.label()), |b| {
            b.iter_batched_ref(
                || (build_overlay(kind, 1024, 2), stream(2, kind.label())),
                |(net, rng)| {
                    if let Some(t) = net.join(rng) {
                        net.leave(t);
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_stabilize(c: &mut Criterion) {
    let mut g = c.benchmark_group("stabilize");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    for kind in [
        OverlayKind::Cycloid7,
        OverlayKind::Koorde,
        OverlayKind::Chord,
    ] {
        let mut net = build_overlay(kind, 1024, 3);
        let tokens = net.node_tokens();
        let mut i = 0usize;
        g.bench_function(BenchmarkId::new("one_node", kind.label()), |b| {
            b.iter(|| {
                i = (i + 1) % tokens.len();
                net.stabilize_node(tokens[i]);
            })
        });
    }
    g.finish();
}

fn bench_owner_of(c: &mut Criterion) {
    let mut g = c.benchmark_group("owner_of");
    g.measurement_time(Duration::from_secs(3));
    for kind in PAPER_KINDS {
        let net = build_overlay(kind, 2048, 4);
        let mut rng = stream(4, kind.label());
        g.bench_function(BenchmarkId::new("n2048", kind.label()), |b| {
            b.iter(|| black_box(net.owner_of(rng.gen())))
        });
    }
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    g.bench_function("splitmix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(splitmix64(x))
        })
    });
    g.bench_function("hash_str_16b", |b| {
        b.iter(|| black_box(hash_str("object-1234.dat!")))
    });
    g.finish();
}

fn bench_network_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("cycloid_complete_d8", |b| {
        b.iter(|| black_box(CycloidNetwork::complete(CycloidConfig::seven_entry(8))))
    });
    for kind in [
        OverlayKind::Cycloid7,
        OverlayKind::Koorde,
        OverlayKind::Viceroy,
    ] {
        g.bench_function(BenchmarkId::new("n1024", kind.label()), |b| {
            b.iter(|| black_box(build_overlay(kind, 1024, 5)))
        });
    }
    g.finish();
}

criterion_group!(
    operations,
    bench_lookup,
    bench_join_leave,
    bench_stabilize,
    bench_owner_of,
    bench_hashing,
    bench_network_construction
);
criterion_main!(operations);
