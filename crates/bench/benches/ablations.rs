//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * leaf-set radius (7-entry vs 11-entry Cycloid, and wider),
//! * Koorde's imaginary-node start (basic vs best-fit),
//! * successor-list length for the ring overlays' fault tolerance.
//!
//! Each bench reports wall time; the printed `[ablation]` lines report the
//! metric the design choice actually trades (mean hops / timeouts), so a
//! single `cargo bench -p bench --bench ablations` run shows both sides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::rng::stream;
use koorde::{KoordeConfig, KoordeNetwork};
use rand::Rng;
use std::hint::black_box;
use std::time::Duration;

fn mean_hops_cycloid(radius: usize, n: usize) -> f64 {
    let config = CycloidConfig {
        dimension: 8,
        leaf_radius: radius,
    };
    let mut net = CycloidNetwork::with_nodes(config, n, 7);
    let ids: Vec<_> = net.ids().collect();
    let mut rng = stream(7, "ablate-radius");
    let mut total = 0usize;
    for i in 0..2000 {
        total += net.route(ids[i % ids.len()], rng.gen()).path_len();
    }
    total as f64 / 2000.0
}

fn bench_leaf_radius(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_leaf_radius");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for radius in [1usize, 2, 3] {
        let hops = mean_hops_cycloid(radius, 1024);
        println!(
            "[ablation] leaf radius {radius} (degree {}): mean path {hops:.3} hops",
            3 + 4 * radius
        );
        g.bench_function(
            BenchmarkId::new("lookups", format!("radius{radius}")),
            |b| {
                let config = CycloidConfig {
                    dimension: 8,
                    leaf_radius: radius,
                };
                let mut net = CycloidNetwork::with_nodes(config, 1024, 7);
                let ids: Vec<_> = net.ids().collect();
                let mut rng = stream(7, "bench-radius");
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % ids.len();
                    black_box(net.route(ids[i], rng.gen()).path_len())
                })
            },
        );
    }
    g.finish();
}

fn bench_koorde_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_koorde_start");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for (label, config) in [
        ("basic", KoordeConfig::new(14)),
        ("best_fit", KoordeConfig::with_best_fit(14)),
    ] {
        let mut net = KoordeNetwork::with_nodes(config, 1024, 9);
        let ids: Vec<_> = net.ids().collect();
        let mut rng = stream(9, label);
        let mut total = 0usize;
        for i in 0..2000 {
            total += net.route(ids[i % ids.len()], rng.gen()).path_len();
        }
        println!(
            "[ablation] koorde start {label}: mean path {:.3} hops (1024 nodes, 2^14 ring)",
            total as f64 / 2000.0
        );
        g.bench_function(BenchmarkId::new("lookups", label), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % ids.len();
                black_box(net.route(ids[i], rng.gen()).path_len())
            })
        });
    }
    g.finish();
}

fn bench_successor_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_succlist");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for backups in [1usize, 3, 5] {
        let config = KoordeConfig {
            bits: 11,
            successor_list: backups,
            debruijn_backups: backups,
            start: koorde::ImaginaryStart::Basic,
        };
        // Measure failure resilience at p = 0.4 departures.
        let mut net = KoordeNetwork::with_nodes(config, 2048, 11);
        let mut rng = stream(11, "ablate-succ");
        let ids: Vec<_> = net.ids().collect();
        for &id in &ids {
            if rng.gen_bool(0.4) {
                net.leave(id);
            }
        }
        let live: Vec<_> = net.ids().collect();
        let mut failures = 0usize;
        for i in 0..2000 {
            if !net
                .route(live[i % live.len()], rng.gen())
                .outcome
                .is_success()
            {
                failures += 1;
            }
        }
        println!("[ablation] koorde backups {backups}: {failures}/2000 failures at p=0.4");
        g.bench_function(
            BenchmarkId::new("lookups_p04", format!("backups{backups}")),
            |b| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % live.len();
                    black_box(net.route(live[i], rng.gen()).path_len())
                })
            },
        );
    }
    g.finish();
}

fn bench_ascending_shortcut(c: &mut Criterion) {
    // The outside-leaf "primary shortcut": Cycloid's ascending phase jumps
    // straight to a primary. Quantify by comparing complete-network
    // ascending hop counts at two dimensions (the shortcut keeps it ~1
    // regardless of d).
    let mut g = c.benchmark_group("ablation_ascending");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for d in [6u32, 8] {
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
        let ids: Vec<_> = net.ids().collect();
        let mut rng = stream(13, "asc");
        let mut asc = 0usize;
        let mut lookups = 0usize;
        for i in 0..2000 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            asc += t.hops_in_phase(dht_core::lookup::HopPhase::Ascending);
            lookups += 1;
        }
        println!(
            "[ablation] ascending hops at d={d}: {:.3} per lookup (primary shortcut keeps this ~1)",
            asc as f64 / lookups as f64
        );
        g.bench_function(BenchmarkId::new("complete_lookup", format!("d{d}")), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % ids.len();
                black_box(net.route(ids[i], rng.gen()).path_len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_leaf_radius,
    bench_koorde_start,
    bench_successor_list,
    bench_ascending_shortcut
);
criterion_main!(ablations);
