//! Lookup-engine micro-benchmarks: read-only walk cost with and
//! without reused scratch buffers, and batched lookup throughput at
//! one worker versus the machine's full worker pool. The batch numbers
//! here feed the same story as `repro throughput` (exported as
//! `BENCH_lookup_throughput.json`); this harness isolates the two
//! ingredients — per-walk allocation and sharded execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::rng::stream;
use dht_core::sim::{walk_ref, walk_ref_with_scratch, WalkScratch};
use dht_core::Overlay;
use dht_sim::{build_overlay, OverlayKind};
use rand::Rng;
use std::hint::black_box;
use std::time::Duration;

/// Worker count for the sharded legs: the host's available
/// parallelism, so the bench reports what this machine can actually do.
fn pool_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Read-only walks on a Cycloid(7) network with a fifth of its nodes
/// failed (so walks actually route around dead entries and the
/// de-duplication sets fill), comparing a fresh `WalkScratch` per walk
/// (what `walk_ref` allocates internally) against one reused across
/// the whole run. The delta is pure allocator traffic: the routes are
/// identical.
fn bench_walk_scratch(c: &mut Criterion) {
    let mut g = c.benchmark_group("walk_scratch");
    g.measurement_time(Duration::from_secs(3));
    let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
    let mut rng = stream(7, "walk_scratch");
    let all = net.node_tokens();
    for &t in all.iter().filter(|_| rng.gen_bool(0.2)) {
        net.fail(t);
    }
    let tokens = net.node_tokens();
    let keys: Vec<(dht_core::NodeToken, u64)> = (0..1024)
        .map(|_| (tokens[rng.gen_range(0..tokens.len())], rng.gen()))
        .collect();

    let mut i = 0usize;
    g.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            let (src, raw_key) = keys[i];
            let (trace, fx) = walk_ref(&net, src, raw_key, true, i as u64);
            black_box((trace.path_len(), fx.is_empty()))
        })
    });

    let mut scratch = WalkScratch::new();
    let mut j = 0usize;
    g.bench_function("reused_scratch", |b| {
        b.iter(|| {
            j = (j + 1) % keys.len();
            let (src, raw_key) = keys[j];
            let (trace, fx) =
                walk_ref_with_scratch(&net, src, raw_key, true, j as u64, &mut scratch);
            black_box((trace.path_len(), fx.is_empty()))
        })
    });
    g.finish();
}

/// Batched lookups per overlay at one worker vs the full pool. On a
/// multi-core host the `jobs=N` legs should show near-linear gains;
/// the results themselves are bit-identical by construction (see
/// `dht_core::sim::ParallelExecutor`), so this measures wall clock
/// only.
fn bench_lookup_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup_batch");
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    let jobs = pool_jobs();
    const BATCH: usize = 512;
    for kind in [
        OverlayKind::Cycloid7,
        OverlayKind::Koorde,
        OverlayKind::Chord,
    ] {
        let mut net = build_overlay(kind, 1024, 5);
        let tokens = net.node_tokens();
        let mut rng = stream(5, kind.label());
        let reqs: Vec<(dht_core::NodeToken, u64)> = (0..BATCH)
            .map(|_| (tokens[rng.gen_range(0..tokens.len())], rng.gen()))
            .collect();
        g.bench_function(BenchmarkId::new("jobs1", kind.label()), |b| {
            b.iter(|| black_box(net.lookup_batch(&reqs, 1).len()))
        });
        g.bench_function(BenchmarkId::new(format!("pool{jobs}"), kind.label()), |b| {
            b.iter(|| black_box(net.lookup_batch(&reqs, jobs).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_walk_scratch, bench_lookup_batch);
criterion_main!(benches);
