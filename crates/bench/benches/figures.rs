//! One Criterion group per table/figure of the paper: times the full
//! experiment driver at reduced workload, so regressions in any overlay's
//! routing or maintenance cost show up as a benchmark regression on the
//! corresponding figure.
//!
//! The *numbers* for the figures come from `repro` (`src/bin/repro.rs`);
//! these benches track the *cost* of producing them.

use criterion::{criterion_group, criterion_main, Criterion};
use dht_sim::experiments::{
    churn_exp, key_distribution, mass_departure, path_length, query_load, sparsity, static_tables,
};
use dht_sim::OverlayKind;
use std::time::Duration;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_static_tables(c: &mut Criterion) {
    let mut g = configure(c);
    g.bench_function("table1", |b| b.iter(static_tables::table1));
    g.bench_function("table2", |b| b.iter(static_tables::table2));
    g.bench_function("table3", |b| b.iter(static_tables::table3));
    g.finish();
}

fn bench_fig5_6_7(c: &mut Criterion) {
    let mut g = configure(c);
    let params = path_length::PathLengthParams {
        kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
        sizes: vec![(5, 160), (6, 384)],
        per_node_factor: 0.25,
        per_node_cap: Some(4),
        seed: 1,
        jobs: 1,
    };
    g.bench_function("fig5_6_7_path_length_sweep", |b| {
        b.iter(|| path_length::measure(&params))
    });
    g.finish();
}

fn bench_fig8_9(c: &mut Criterion) {
    let mut g = configure(c);
    let params = key_distribution::KeyDistributionParams {
        kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
        nodes: 500,
        id_space: 512,
        key_counts: vec![10_000],
        seed: 2,
    };
    g.bench_function("fig8_9_key_distribution", |b| {
        b.iter(|| key_distribution::measure(&params))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = configure(c);
    let params = query_load::QueryLoadParams {
        kinds: vec![OverlayKind::Cycloid7, OverlayKind::Viceroy],
        sizes: vec![64],
        per_node_cap: Some(8),
        seed: 3,
        jobs: 1,
    };
    g.bench_function("fig10_query_load", |b| {
        b.iter(|| query_load::measure(&params))
    });
    g.finish();
}

fn bench_fig11_table4(c: &mut Criterion) {
    let mut g = configure(c);
    let params = mass_departure::MassDepartureParams {
        kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
        nodes: 512,
        probabilities: vec![0.3],
        lookups: 500,
        seed: 4,
        jobs: 1,
    };
    g.bench_function("fig11_table4_mass_departure", |b| {
        b.iter(|| mass_departure::measure(&params))
    });
    g.finish();
}

fn bench_fig12_table5(c: &mut Criterion) {
    let mut g = configure(c);
    let params = churn_exp::ChurnExpParams {
        kinds: vec![OverlayKind::Cycloid7],
        nodes: 256,
        rates: vec![0.2],
        lookups: 300,
        audit: false,
        seed: 5,
        jobs: 1,
        conditions: dht_core::net::NetConditions::ideal(),
    };
    g.bench_function("fig12_table5_churn", |b| {
        b.iter(|| churn_exp::measure(&params))
    });
    g.finish();
}

fn bench_fig13_14(c: &mut Criterion) {
    let mut g = configure(c);
    let params = sparsity::SparsityParams {
        kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
        id_space: 512,
        sparsities: vec![0.0, 0.5],
        lookups: 400,
        seed: 6,
        jobs: 1,
    };
    g.bench_function("fig13_14_sparsity", |b| {
        b.iter(|| sparsity::measure(&params))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_static_tables,
    bench_fig5_6_7,
    bench_fig8_9,
    bench_fig10,
    bench_fig11_table4,
    bench_fig12_table5,
    bench_fig13_14
);
criterion_main!(figures);
