//! Property-based tests of the storage layer's placement and durability
//! invariants over arbitrary operation sequences.

use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::overlay::Overlay;
use dht_core::rng::stream;
use kvstore::KvStore;
use proptest::prelude::*;
use rand::Rng;

/// An operation script: each step is (kind, argument-selector).
#[derive(Debug, Clone, Copy)]
enum Op {
    Put,
    Join,
    Leave,
    Fail,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::Put),
            Just(Op::Join),
            Just(Op::Leave),
            Just(Op::Fail),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placement_invariant_after_any_script(script in ops(), seed in 0u64..500) {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 80, seed);
        let mut store = KvStore::new(net, 3);
        let mut rng = stream(seed, "kv-script");
        let mut put_count = 0u64;
        let mut crashed = false;
        for op in script {
            match op {
                Op::Put => {
                    store.put(&format!("obj-{put_count}"), vec![put_count as u8]);
                    put_count += 1;
                }
                Op::Join => {
                    let _ = store.join_node(&mut rng);
                }
                Op::Leave => {
                    if store.overlay().len() > 8 {
                        let toks = store.overlay().node_tokens();
                        let victim = toks[(rng.gen::<u64>() % toks.len() as u64) as usize];
                        store.leave_node(victim);
                    }
                }
                Op::Fail => {
                    if store.overlay().len() > 8 {
                        let toks = store.overlay().node_tokens();
                        let victim = toks[(rng.gen::<u64>() % toks.len() as u64) as usize];
                        store.fail_node(victim);
                        crashed = true;
                    }
                }
            }
        }
        if crashed {
            // Crashes lose shards; repair first (and stabilize routing).
            store.stabilize_overlay();
            let _ = store.repair();
        }
        // Invariant: after repair/rebalance, every replica sits at its
        // current owner.
        store.rebalance();
        prop_assert_eq!(store.misplaced(), 0);
        // Graceful-only scripts lose nothing.
        if !crashed {
            prop_assert_eq!(store.object_count() as u64, put_count);
            for i in 0..put_count {
                prop_assert!(
                    store.get(&format!("obj-{i}")).is_some(),
                    "obj-{} unreadable after graceful churn",
                    i
                );
            }
        }
    }

    #[test]
    fn replica_count_is_bounded_by_r_per_object(seed in 0u64..200, objects in 1usize..60) {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 60, seed);
        let mut store = KvStore::new(net, 3);
        for i in 0..objects {
            store.put(&format!("o{i}"), vec![1]);
        }
        prop_assert!(store.replica_count() <= objects * 3);
        prop_assert_eq!(store.object_count(), objects);
        prop_assert_eq!(store.misplaced(), 0);
    }
}
