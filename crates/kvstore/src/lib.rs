//! Replicated key-value storage over any DHT overlay.
//!
//! The Cycloid paper (like Chord, Pastry, Koorde and Viceroy) specifies how
//! *keys map to nodes* and how lookups find the responsible node; an actual
//! application additionally needs the **storage layer**: where the bytes
//! live, how they follow ownership as nodes join and leave, and how they
//! survive crashes. This crate provides that layer over the
//! [`dht_core::Overlay`] trait, so the same store runs on Cycloid, Chord,
//! Koorde or Viceroy:
//!
//! * **Placement** — each object is stored at the owners of `R` derived
//!   keys (`replica 0` is the object's own key; replicas `1..R` are
//!   independent re-hashes, the multiple-hash-function replication scheme
//!   CAN popularized). Overlay-agnostic: no successor-list assumption.
//! * **Migration** — [`KvStore::join_node`] and [`KvStore::leave_node`]
//!   wrap the overlay's churn operations and hand objects over so that
//!   every replica always sits at its current owner (what the Cycloid /
//!   Pastry key-transfer step does during self-organization).
//! * **Repair** — [`KvStore::fail_node`] models a crash (the shard is
//!   *lost*); [`KvStore::repair`] re-derives lost replicas from the
//!   survivors, and the durability tests quantify how many crashes `R`
//!   replicas tolerate.
//!
//! ```
//! use cycloid::{CycloidConfig, CycloidNetwork};
//! use kvstore::KvStore;
//!
//! let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 200, 1);
//! let mut store = KvStore::new(net, 3);
//! store.put("report.pdf", b"contents".to_vec());
//! assert_eq!(store.get("report.pdf").unwrap().value, b"contents");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use dht_core::hash::{hash_str, splitmix64};
use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

/// Identifies one stored replica: the object's raw key plus the replica
/// index it was derived for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId {
    /// The object's raw (pre-hash) key.
    pub raw_key: u64,
    /// Replica index in `0..replication`.
    pub index: u32,
}

impl ReplicaId {
    /// The derived key this replica is placed by: replica 0 uses the raw
    /// key itself, replica `i` an independent mix of it.
    #[must_use]
    pub fn placement_key(self) -> u64 {
        if self.index == 0 {
            self.raw_key
        } else {
            splitmix64(self.raw_key ^ (0x5bd1_e995u64 << 32 | u64::from(self.index)))
        }
    }
}

/// Result of a successful read.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Which replica served the read (0 = primary).
    pub replica: u32,
    /// The routing trace of the successful lookup.
    pub trace: LookupTrace,
}

/// A replicated key-value store over an overlay network.
///
/// The store owns the overlay: churn must go through
/// [`KvStore::join_node`] / [`KvStore::leave_node`] / [`KvStore::fail_node`]
/// so object placement tracks ownership.
#[derive(Debug)]
pub struct KvStore<O: Overlay> {
    overlay: O,
    replication: u32,
    /// Bytes per object.
    objects: HashMap<u64, Vec<u8>>,
    /// Shards: which node stores which replicas. Values are object raw
    /// keys + replica indexes; bytes are deduplicated in `objects`.
    shards: HashMap<NodeToken, Vec<ReplicaId>>,
}

impl<O: Overlay> KvStore<O> {
    /// Wraps `overlay` with a store keeping `replication >= 1` copies of
    /// each object.
    #[must_use]
    pub fn new(overlay: O, replication: u32) -> Self {
        assert!(replication >= 1, "need at least one replica");
        Self {
            overlay,
            replication,
            objects: HashMap::new(),
            shards: HashMap::new(),
        }
    }

    /// Read access to the underlying overlay.
    pub fn overlay(&self) -> &O {
        &self.overlay
    }

    /// Runs one overlay stabilization round (call after crash waves so
    /// routing state catches up with the membership before reads).
    pub fn stabilize_overlay(&mut self) {
        self.overlay.stabilize();
    }

    /// Number of distinct stored objects.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total replicas currently placed.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// Replicas stored at `node` (empty if unknown).
    #[must_use]
    pub fn shard_of(&self, node: NodeToken) -> &[ReplicaId] {
        self.shards.get(&node).map_or(&[], Vec::as_slice)
    }

    fn place(&mut self, replica: ReplicaId) {
        let owner = self
            .overlay
            .owner_of(replica.placement_key())
            .expect("placement on an empty overlay");
        let shard = self.shards.entry(owner).or_default();
        if !shard.contains(&replica) {
            shard.push(replica);
        }
    }

    /// Stores `value` under `name`, placing all replicas at their owners.
    /// Returns the object's raw key.
    pub fn put(&mut self, name: &str, value: Vec<u8>) -> u64 {
        let raw_key = hash_str(name);
        self.put_raw(raw_key, value);
        raw_key
    }

    /// Stores `value` under a pre-hashed key.
    pub fn put_raw(&mut self, raw_key: u64, value: Vec<u8>) {
        self.objects.insert(raw_key, value);
        for index in 0..self.replication {
            self.place(ReplicaId { raw_key, index });
        }
    }

    /// Reads `name` by routing to each replica's owner in turn from an
    /// arbitrary live source, returning the first replica actually present
    /// at the node the lookup terminated on.
    pub fn get(&mut self, name: &str) -> Option<GetResult> {
        self.get_raw(hash_str(name))
    }

    /// Reads by pre-hashed key (see [`KvStore::get`]).
    pub fn get_raw(&mut self, raw_key: u64) -> Option<GetResult> {
        let src = *self.shards.keys().next().or(None)?;
        self.get_from(src, raw_key)
    }

    /// Reads starting the lookups at node `src`.
    pub fn get_from(&mut self, src: NodeToken, raw_key: u64) -> Option<GetResult> {
        for index in 0..self.replication {
            let replica = ReplicaId { raw_key, index };
            let trace = self.overlay.lookup(src, replica.placement_key());
            if !trace.outcome.is_success() {
                continue;
            }
            let holds = self
                .shards
                .get(&trace.terminal)
                .is_some_and(|shard| shard.contains(&replica));
            if holds {
                let value = self.objects.get(&raw_key)?.clone();
                return Some(GetResult {
                    value,
                    replica: index,
                    trace,
                });
            }
        }
        None
    }

    /// A node joins through the overlay's join protocol; replicas the
    /// newcomer now owns are handed over to it (the key-transfer step of
    /// every DHT's join).
    pub fn join_node(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        let newcomer = self.overlay.join(rng)?;
        // Only replicas previously owned by the newcomer's vicinity can
        // move; a full rescan is simplest and exact.
        self.rebalance();
        Some(newcomer)
    }

    /// A node leaves gracefully: it hands its shard to the new owners
    /// before departing.
    pub fn leave_node(&mut self, node: NodeToken) -> bool {
        let shard = self.shards.remove(&node).unwrap_or_default();
        if !self.overlay.leave(node) {
            // Not live: restore and report failure.
            if !shard.is_empty() {
                self.shards.insert(node, shard);
            }
            return false;
        }
        for replica in shard {
            self.place(replica);
        }
        true
    }

    /// A node crashes: its shard is **lost** (no handover). Call
    /// [`KvStore::repair`] to re-derive lost replicas from survivors.
    pub fn fail_node(&mut self, node: NodeToken) -> bool {
        if !self.overlay.fail(node) {
            return false;
        }
        self.shards.remove(&node);
        true
    }

    /// Re-places every replica whose data survives anywhere: lost replicas
    /// are recreated at their current owners from any surviving copy, and
    /// misplaced replicas (ownership moved under churn) are handed to the
    /// right node. Returns the number of objects that are *gone* — every
    /// replica lost.
    pub fn repair(&mut self) -> usize {
        // Survivor set per object.
        let mut alive: HashMap<u64, Vec<u32>> = HashMap::new();
        for shard in self.shards.values() {
            for r in shard {
                alive.entry(r.raw_key).or_default().push(r.index);
            }
        }
        let lost_objects = self
            .objects
            .keys()
            .filter(|k| !alive.contains_key(k))
            .copied()
            .collect::<Vec<_>>();
        for k in &lost_objects {
            self.objects.remove(k);
        }
        // Re-derive every replica of every surviving object and re-place.
        let keys: Vec<u64> = self.objects.keys().copied().collect();
        self.shards.clear();
        for raw_key in keys {
            for index in 0..self.replication {
                self.place(ReplicaId { raw_key, index });
            }
        }
        lost_objects.len()
    }

    /// Moves every replica to its current owner (anti-entropy pass). Does
    /// not recreate lost replicas; see [`KvStore::repair`].
    pub fn rebalance(&mut self) {
        let all: Vec<ReplicaId> = self.shards.drain().flat_map(|(_, s)| s).collect();
        for replica in all {
            self.place(replica);
        }
    }

    /// Verifies the placement invariant: every replica sits at the node
    /// that currently owns its placement key. Returns the number of
    /// misplaced replicas (0 after a rebalance).
    #[must_use]
    pub fn misplaced(&self) -> usize {
        let mut count = 0;
        for (&node, shard) in &self.shards {
            for r in shard {
                if self.overlay.owner_of(r.placement_key()) != Some(node) {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycloid::{CycloidConfig, CycloidNetwork};
    use dht_core::rng::stream;
    use dht_sim::build_overlay;
    use rand::Rng;

    fn store_with(n: usize, replication: u32) -> KvStore<CycloidNetwork> {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), n, 1);
        KvStore::new(net, replication)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut store = store_with(200, 3);
        for i in 0..100 {
            store.put(&format!("obj-{i}"), format!("value-{i}").into_bytes());
        }
        assert_eq!(store.object_count(), 100);
        for i in 0..100 {
            let got = store.get(&format!("obj-{i}")).expect("present");
            assert_eq!(got.value, format!("value-{i}").into_bytes());
        }
    }

    #[test]
    fn replication_places_r_copies() {
        let mut store = store_with(300, 3);
        store.put("x", b"v".to_vec());
        assert_eq!(store.replica_count(), 3);
        assert_eq!(store.misplaced(), 0);
    }

    #[test]
    fn placement_tracks_ownership_under_graceful_churn() {
        let mut store = store_with(150, 2);
        let mut rng = stream(1, "kv-churn");
        for i in 0..200 {
            store.put(&format!("k{i}"), vec![i as u8]);
        }
        for round in 0..30 {
            if round % 2 == 0 {
                let _ = store.join_node(&mut rng);
            } else {
                let toks = store.overlay().node_tokens();
                let victim = toks[(rng.gen::<u64>() % toks.len() as u64) as usize];
                store.leave_node(victim);
            }
            assert_eq!(store.misplaced(), 0, "round {round}");
        }
        for i in 0..200 {
            let got = store.get(&format!("k{i}")).expect("survives churn");
            assert_eq!(got.value, vec![i as u8]);
        }
    }

    #[test]
    fn crashes_lose_shards_but_replicas_cover() {
        let mut store = store_with(400, 3);
        let mut rng = stream(2, "kv-crash");
        for i in 0..300 {
            store.put(&format!("k{i}"), vec![i as u8, 1]);
        }
        // Crash 20% of the nodes, then repair from survivors.
        for tok in store.overlay().node_tokens() {
            if rng.gen_bool(0.2) {
                store.fail_node(tok);
            }
        }
        store.stabilize_overlay();
        let gone = store.repair();
        // Expected loss = 300 * p^3 = 300 * 0.008 = ~2.4 objects; allow
        // generous slack but require replication to do its job (compare
        // the R = 1 test, which loses ~30%).
        assert!(
            gone <= 15,
            "R=3 should lose ~2 objects at p=0.2, lost {gone}"
        );
        assert_eq!(store.misplaced(), 0);
        let mut readable = 0;
        for i in 0..300 {
            if store.get(&format!("k{i}")).is_some() {
                readable += 1;
            }
        }
        assert_eq!(readable, 300 - gone, "all surviving objects readable");
    }

    #[test]
    fn single_replica_loses_data_on_crash() {
        let mut store = store_with(200, 1);
        let mut rng = stream(3, "kv-single");
        for i in 0..400 {
            store.put(&format!("k{i}"), vec![0]);
        }
        for tok in store.overlay().node_tokens() {
            if rng.gen_bool(0.3) {
                store.fail_node(tok);
            }
        }
        let gone = store.repair();
        assert!(
            gone > 50,
            "R=1 must lose roughly 30% of objects, lost only {gone}"
        );
        assert_eq!(store.object_count(), 400 - gone);
    }

    #[test]
    fn works_over_every_overlay() {
        let mut rng = stream(4, "kv-any");
        for kind in dht_sim::PAPER_KINDS {
            let net = build_overlay(kind, 150, 5);
            let mut store = KvStore::new(net, 2);
            for i in 0..50 {
                store.put(&format!("o{i}"), vec![i as u8]);
            }
            assert_eq!(store.misplaced(), 0, "{}", kind.label());
            let _ = store.join_node(&mut rng);
            assert_eq!(store.misplaced(), 0, "{} after join", kind.label());
            for i in 0..50 {
                assert!(
                    store.get(&format!("o{i}")).is_some(),
                    "{} lost o{i}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn replica_keys_are_distinct() {
        let r0 = ReplicaId {
            raw_key: 42,
            index: 0,
        };
        let r1 = ReplicaId {
            raw_key: 42,
            index: 1,
        };
        let r2 = ReplicaId {
            raw_key: 42,
            index: 2,
        };
        assert_eq!(r0.placement_key(), 42);
        assert_ne!(r1.placement_key(), r2.placement_key());
        assert_ne!(r1.placement_key(), 42);
    }

    #[test]
    fn get_reports_which_replica_served() {
        let mut store = store_with(300, 3);
        let raw = store.put("file", b"data".to_vec());
        // Crash the primary owner.
        let primary = store
            .overlay()
            .owner_of(
                ReplicaId {
                    raw_key: raw,
                    index: 0,
                }
                .placement_key(),
            )
            .unwrap();
        store.fail_node(primary);
        store.overlay.stabilize();
        let got = store.get("file").expect("replica must serve");
        assert!(got.replica > 0, "primary is gone; a replica must answer");
    }
}
