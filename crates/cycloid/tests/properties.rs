//! Property-based tests of Cycloid's identifier space, ownership metric,
//! and routing — the invariants §3 states and §4 depends on.

use cycloid::id::{msdb, prefix_len};
use cycloid::{CycloidConfig, CycloidId, CycloidNetwork, Dim, KeyDistance};
use dht_core::lookup::LookupOutcome;
use dht_core::overlay::Overlay;
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;

fn dim_strategy() -> impl Strategy<Value = u32> {
    3u32..=8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_roundtrip_everywhere(d in dim_strategy(), raw in any::<u64>()) {
        let dim = Dim::new(d);
        let id = CycloidId::from_hash(raw, dim);
        prop_assert!(id.cyclic < d);
        prop_assert!(id.cubical < dim.cubical_space());
        let lin = id.linear(dim);
        prop_assert_eq!(CycloidId::from_linear(lin, dim), id);
        // The paper's split: cyclic = h mod d, cubical = h div d.
        prop_assert_eq!(u64::from(id.cyclic), lin % u64::from(d));
        prop_assert_eq!(id.cubical, lin / u64::from(d));
    }

    #[test]
    fn msdb_matches_prefix_len(d in dim_strategy(), a in any::<u64>(), b in any::<u64>()) {
        let dim = Dim::new(d);
        let mask = dim.cubical_space() - 1;
        let (a, b) = (a & mask, b & mask);
        match msdb(a, b) {
            None => prop_assert_eq!(a, b),
            Some(m) => {
                prop_assert!(m < d);
                prop_assert_eq!(prefix_len(a, b, dim), d - 1 - m);
                // Bits above m agree, bit m differs.
                prop_assert_eq!(a >> (m + 1), b >> (m + 1));
                prop_assert_ne!((a >> m) & 1, (b >> m) & 1);
            }
        }
    }

    #[test]
    fn key_distance_identity_and_symmetric_uniqueness(
        d in dim_strategy(),
        key_raw in any::<u64>(),
        n1 in any::<u64>(),
        n2 in any::<u64>(),
    ) {
        let dim = Dim::new(d);
        let key = CycloidId::from_hash(key_raw, dim);
        let a = CycloidId::from_hash(n1, dim);
        let b = CycloidId::from_hash(n2, dim);
        prop_assert_eq!(KeyDistance::between(key, key, dim), KeyDistance::zero());
        // The metric separates distinct nodes (unique owners).
        if a != b {
            prop_assert_ne!(
                KeyDistance::between(key, a, dim),
                KeyDistance::between(key, b, dim)
            );
        }
    }

    #[test]
    fn owner_matches_brute_force(seed in any::<u64>(), count in 2usize..80) {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), count, seed);
        let mut rng = stream(seed, "owner-prop");
        for _ in 0..10 {
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let fast = net.owner_of_key(key).unwrap();
            let brute = net
                .ids()
                .min_by_key(|&n| KeyDistance::between(key, n, net.dim()))
                .unwrap();
            prop_assert_eq!(fast, brute);
            // And routing from an arbitrary source terminates there.
            let src = net.ids().next().unwrap();
            let trace = net.route(src, raw);
            prop_assert_eq!(trace.outcome, LookupOutcome::Found);
            prop_assert_eq!(trace.terminal, brute.linear(net.dim()));
        }
    }

    #[test]
    fn degree_never_exceeds_bound(seed in any::<u64>(), count in 1usize..120, radius in 1usize..=2) {
        let config = CycloidConfig { dimension: 7, leaf_radius: radius };
        let net = CycloidNetwork::with_nodes(config, count, seed);
        let bound = 3 + 4 * radius;
        for id in net.ids() {
            prop_assert!(net.node(id).unwrap().degree() <= bound);
        }
    }

    #[test]
    fn path_length_bounded_by_hop_budget_margin(seed in any::<u64>()) {
        // O(d): every lookup in a stabilized 7-dimensional network stays
        // far below the safety budget.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 300, seed);
        let ids: Vec<CycloidId> = net.ids().collect();
        let mut rng = stream(seed, "plen-prop");
        for i in 0..20 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            prop_assert!(t.outcome.is_success());
            prop_assert!(t.path_len() <= 4 * 7, "path {} exceeds 4d", t.path_len());
            prop_assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn protocol_join_equals_oracle_join(seed in any::<u64>(), count in 3usize..90, radius in 1usize..=2) {
        // §3.3.1: initializing the newcomer's leaf sets from Z's state
        // must produce exactly what a global-knowledge resolution gives,
        // and the resulting network must match one built with the oracle
        // join, node for node.
        let config = CycloidConfig { dimension: 7, leaf_radius: radius };
        let mut by_protocol = CycloidNetwork::with_nodes(config, count, seed);
        let mut by_oracle = by_protocol.clone();
        let mut rng = stream(seed, "pj");
        // Find a free identifier.
        let dim = by_protocol.dim();
        let newcomer = loop {
            let cand = CycloidId::from_hash(rng.gen(), dim);
            if by_protocol.node(cand).is_none() {
                break cand;
            }
        };
        let ids: Vec<CycloidId> = by_protocol.ids().collect();
        let bootstrap = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
        prop_assert!(by_protocol.join_via_protocol(bootstrap, newcomer));
        prop_assert!(by_oracle.join_id(newcomer));
        // The newcomer's protocol-derived leaf sets match the oracle's.
        for id in by_oracle.ids().collect::<Vec<_>>() {
            let a = by_protocol.node(id).unwrap();
            let b = by_oracle.node(id).unwrap();
            prop_assert_eq!(&a.inside_left, &b.inside_left, "inside-left of {}", id);
            prop_assert_eq!(&a.inside_right, &b.inside_right, "inside-right of {}", id);
            prop_assert_eq!(&a.outside_left, &b.outside_left, "outside-left of {}", id);
            prop_assert_eq!(&a.outside_right, &b.outside_right, "outside-right of {}", id);
        }
        // Lookups keep resolving after the protocol join.
        for i in 0..10 {
            let src = ids[i % ids.len()];
            let t = by_protocol.route(src, rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn protocol_join_leaves_query_loads_untouched(seed in any::<u64>()) {
        // The join message is control traffic, not a lookup: §4.2's
        // query-load counters must not move.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 60, seed);
        net.reset_query_loads();
        let mut rng = stream(seed, "pjq");
        let dim = net.dim();
        let newcomer = loop {
            let cand = CycloidId::from_hash(rng.gen(), dim);
            if net.node(cand).is_none() {
                break cand;
            }
        };
        let bootstrap = net.ids().next().unwrap();
        prop_assert!(net.join_via_protocol(bootstrap, newcomer));
        prop_assert_eq!(net.query_loads().iter().sum::<u64>(), 0);
    }

    #[test]
    fn routing_state_is_self_consistent(seed in any::<u64>(), count in 5usize..100) {
        // Every stored entry must point at a live node satisfying its
        // defining pattern.
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), count, seed);
        for id in net.ids() {
            let state = net.node(id).unwrap();
            if let Some(cb) = state.cubical_neighbor {
                prop_assert!(net.is_live(cb));
                prop_assert_eq!(cb.cyclic, id.cyclic - 1);
                let k = id.cyclic;
                prop_assert_eq!(cb.cubical >> (k + 1), id.cubical >> (k + 1));
                prop_assert_ne!((cb.cubical >> k) & 1, (id.cubical >> k) & 1);
            }
            for cy in [state.cyclic_larger, state.cyclic_smaller].into_iter().flatten() {
                prop_assert!(net.is_live(cy));
                prop_assert_eq!(cy.cyclic, id.cyclic - 1);
                // Differs from the node only below bit k.
                let k = id.cyclic;
                prop_assert_eq!(cy.cubical >> k, id.cubical >> k);
            }
            for leaf in state.leaf_entries() {
                prop_assert!(net.is_live(leaf), "leaf {leaf} of {id} is dead");
            }
        }
    }
}
