//! Exhaustive small-space verification: in a 3-dimensional Cycloid (24
//! identifier slots) we can afford to check *every* source × *every* key
//! over many random memberships — the strongest correctness evidence the
//! routing algorithm gets, complementing the per-step proofs sketched in
//! the paper's §3.2 ("convergence and reachability").

use cycloid::{CycloidConfig, CycloidId, CycloidNetwork, Dim};
use dht_core::lookup::LookupOutcome;
use dht_core::rng::stream_indexed;
use rand::Rng;

const D: u32 = 3;
const SLOTS: u64 = 24; // 3 * 2^3

/// Builds a random membership of the d=3 space with the given occupancy
/// mask bits.
fn network_from_mask(mask: u32, radius: usize) -> Option<CycloidNetwork> {
    if mask == 0 {
        return None;
    }
    let config = CycloidConfig {
        dimension: D,
        leaf_radius: radius,
    };
    let mut net = CycloidNetwork::new(config, 0);
    let dim = Dim::new(D);
    for slot in 0..SLOTS {
        if mask & (1 << slot) != 0 {
            assert!(net.join_id(CycloidId::from_linear(slot, dim)));
        }
    }
    Some(net)
}

/// Every (source, key) pair must terminate at the unique owner, for both
/// leaf radii, over many random memberships.
#[test]
fn every_pair_resolves_in_sampled_memberships() {
    let dim = Dim::new(D);
    for trial in 0..60u64 {
        let mut rng = stream_indexed(2024, "exhaustive", trial);
        // Random occupancy between 1 and 24 nodes, biased across the range.
        let density: f64 = 0.1 + 0.8 * (trial as f64 / 60.0);
        let mut mask: u32 = 0;
        for slot in 0..SLOTS {
            if rng.gen_bool(density) {
                mask |= 1 << slot;
            }
        }
        if mask == 0 {
            mask = 1 << (trial % SLOTS);
        }
        for radius in [1usize, 2] {
            let mut net = network_from_mask(mask, radius).unwrap();
            net.stabilize_all();
            let ids: Vec<CycloidId> = net.ids().collect();
            for &src in &ids {
                for key_lin in 0..SLOTS {
                    let key = CycloidId::from_linear(key_lin, dim);
                    let owner = net.owner_of_key(key).unwrap();
                    let t = net.route_to_id(src, key);
                    assert_eq!(
                        t.outcome,
                        LookupOutcome::Found,
                        "mask {mask:#x} radius {radius}: {src} -> key {key} ended {:?} at {}",
                        t.outcome,
                        CycloidId::from_linear(t.terminal, dim)
                    );
                    assert_eq!(
                        t.terminal,
                        owner.linear(dim),
                        "mask {mask:#x} radius {radius}: {src} -> key {key} wrong owner"
                    );
                    assert_eq!(t.timeouts, 0, "stable network must not time out");
                    assert!(
                        t.path_len() <= 24,
                        "path {} absurd in a 24-slot space",
                        t.path_len()
                    );
                }
            }
        }
    }
}

/// The complete d=3 network is the ground case: all 24 x 24 pairs, exact
/// owner = the key's own node, and O(d) paths.
#[test]
fn complete_d3_all_pairs_exact() {
    let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(D));
    let dim = net.dim();
    let mut worst = 0usize;
    for s in 0..SLOTS {
        for k in 0..SLOTS {
            let src = CycloidId::from_linear(s, dim);
            let key = CycloidId::from_linear(k, dim);
            let t = net.route_to_id(src, key);
            assert_eq!(t.outcome, LookupOutcome::Found);
            assert_eq!(t.terminal, k, "complete network: key stored at itself");
            worst = worst.max(t.path_len());
        }
    }
    assert!(worst <= 3 * D as usize, "worst path {worst} exceeds 3d");
}

/// Every membership of exactly two nodes: both directions, every key.
#[test]
fn all_two_node_networks_resolve() {
    let dim = Dim::new(D);
    for a in 0..SLOTS {
        for b in (a + 1)..SLOTS {
            let mask = (1u32 << a) | (1 << b);
            let mut net = network_from_mask(mask, 1).unwrap();
            net.stabilize_all();
            for src_lin in [a, b] {
                let src = CycloidId::from_linear(src_lin, dim);
                for key_lin in 0..SLOTS {
                    let key = CycloidId::from_linear(key_lin, dim);
                    let t = net.route_to_id(src, key);
                    assert_eq!(
                        t.outcome,
                        LookupOutcome::Found,
                        "pair ({a},{b}) src {src_lin} key {key_lin}"
                    );
                }
            }
        }
    }
}
