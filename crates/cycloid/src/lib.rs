//! # Cycloid: a constant-degree, lookup-efficient DHT
//!
//! A Rust implementation of the overlay from *Cycloid: A Constant-Degree
//! and Lookup-Efficient P2P Overlay Network* (Shen, Xu, Chen — IPPS 2004 /
//! Performance Evaluation 2005).
//!
//! Cycloid emulates a cube-connected-cycles graph: a `d`-dimensional
//! deployment hosts up to `n = d * 2^d` nodes, each identified by a pair of
//! cyclic and cubical indices and connected to at most **seven** neighbours
//! (or eleven in the widened-leaf-set variant), yet lookups complete in
//! `O(d)` hops.
//!
//! ```
//! use cycloid::{CycloidConfig, CycloidNetwork};
//! use dht_core::lookup::LookupOutcome;
//!
//! // A stabilized 8-dimensional network with 500 of 2048 slots occupied.
//! let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 500, 42);
//! let src = net.ids().next().unwrap();
//! let trace = net.route(src, 0xfeed_beef);
//! assert_eq!(trace.outcome, LookupOutcome::Found);
//! assert!(trace.path_len() <= 24); // O(d) with d = 8
//! ```
//!
//! Module map:
//! * [`id`] — identifiers `(k, a)`, the consistent-hash mapping, and the
//!   key-ownership metric,
//! * [`state`] — per-node routing state (routing table + leaf sets),
//! * [`network`] — membership, neighbour resolution, join/leave protocols,
//!   stabilization,
//! * [`lookup`] — the three-phase routing algorithm and the
//!   [`dht_core::sim`] substrate adapter used by the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod id;
pub mod lookup;
pub mod network;
mod repair;
pub mod state;

pub use id::{CycloidId, Dim, KeyDistance};
pub use network::{CycloidConfig, CycloidNetwork};
pub use state::NodeState;
