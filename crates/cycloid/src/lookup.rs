//! The Cycloid lookup algorithm (§3.2, Fig. 3).
//!
//! Routing from `(k, a_{d-1}…a_0)` towards a key `(l, b_{d-1}…b_0)` runs in
//! three phases, with `MSDB` the most significant differing bit between the
//! current node's cubical index and the key's:
//!
//! 1. **Ascending** — while `k < MSDB`, forward along the outside leaf set
//!    (normally one hop, because the outside entry is its cycle's primary).
//! 2. **Descending** — when `k == MSDB`, take the cubical neighbour
//!    (correcting bit `k`, Pastry-style left-to-right prefix routing);
//!    when `k > MSDB`, take the cyclic neighbour or an inside-leaf node,
//!    whichever is closer to the target, to lower the cyclic index.
//! 3. **Traverse cycle** — once the target is within the leaf sets, greedy
//!    leaf-set hops until the closest node is the current node itself.
//!
//! If an entry is missing or points at a departed node ("a timeout"), "the
//! node that is numerically closer to the destination among the leaf sets
//! is chosen" — the leaf sets are the fault-tolerance backbone.

use std::collections::HashSet;

use dht_core::lookup::{HopPhase, LookupOutcome, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::ring::clockwise_dist;
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::RngCore;

use crate::id::{msdb, prefix_len, CycloidId, KeyDistance};
use crate::network::CycloidNetwork;
use crate::state::NodeState;

/// Walk state of one Cycloid lookup: the mapped key plus the set of
/// already-visited nodes (non-improving hops may not revisit, which
/// guarantees termination; see [`SimOverlay::admit`]).
#[derive(Debug, Clone)]
pub struct CycloidWalk {
    /// The key identifier the lookup is routing towards.
    pub key: CycloidId,
    visited: HashSet<u64>,
}

/// One planned forwarding step: an ordered preference list of candidates,
/// each tagged with the phase it would be accounted to.
enum StepPlan {
    /// The current node is (locally provably) the closest node to the key.
    Terminate,
    /// Try these candidates in order; skip dead ones with a timeout.
    Forward(Vec<(HopPhase, CycloidId)>),
}

impl CycloidNetwork {
    /// Performs one lookup from `src` for `raw_key`, walking the overlay
    /// hop by hop using only each node's private routing state, and
    /// returns the full trace. Every visited node's query-load counter is
    /// incremented (the §4.2 congestion measure).
    pub fn route(&mut self, src: CycloidId, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_id(src, key)
    }

    /// Like [`CycloidNetwork::route`], but takes a pre-mapped key
    /// identifier.
    pub fn route_to_id(&mut self, src: CycloidId, key: CycloidId) -> LookupTrace {
        let walk = self.walk_for(src, key);
        walk_from(self, src.linear(self.dim()), walk, true)
    }

    /// Routing used by control traffic (join messages): same walk, but
    /// without touching the per-node query-load counters the §4.2
    /// experiment measures (which count *lookup* queries only).
    pub(crate) fn route_quiet(&mut self, src: CycloidId, key: CycloidId) -> LookupTrace {
        let walk = self.walk_for(src, key);
        walk_from(self, src.linear(self.dim()), walk, false)
    }

    fn walk_for(&self, src: CycloidId, key: CycloidId) -> CycloidWalk {
        CycloidWalk {
            key,
            visited: HashSet::from([src.linear(self.dim())]),
        }
    }

    /// Builds the forwarding plan for one step at `cur` (Fig. 3).
    fn plan_step(&self, cur: CycloidId, key: CycloidId) -> StepPlan {
        let dim = self.dim();
        let state = self.node(cur).expect("current node must be live");
        let cur_dist = KeyDistance::between(key, cur, dim);

        // Live leaf-set entries strictly closer to the key than the
        // current node, sorted closest-first. This is both the termination
        // test ("the closest node is the current node itself") and the
        // universal fallback.
        let mut closer_leafs: Vec<(KeyDistance, CycloidId)> = state
            .leaf_entries()
            .filter(|&c| c != cur && self.is_live(c))
            .map(|c| (KeyDistance::between(key, c, dim), c))
            .filter(|&(d, _)| d < cur_dist)
            .collect();
        closer_leafs.sort_unstable();
        closer_leafs.dedup();
        if closer_leafs.is_empty() {
            return StepPlan::Terminate;
        }

        if self.target_within_leaf_span(state, key) {
            // Phase 3: traverse cycle.
            let plan = closer_leafs
                .into_iter()
                .map(|(_, c)| (HopPhase::TraverseCycle, c))
                .collect();
            return StepPlan::Forward(plan);
        }

        let m = msdb(cur.cubical, key.cubical)
            .expect("outside the leaf span implies differing cubical indices");
        let k = cur.cyclic;

        if k < m {
            // Phase 1: ascending — outside-leaf hop towards the target,
            // preferring the entry whose cubical index is closest to the
            // destination, then any closer leaf.
            let mut plan: Vec<(HopPhase, CycloidId)> = Vec::new();
            let mut outside: Vec<(KeyDistance, CycloidId)> = state
                .outside_left
                .iter()
                .chain(&state.outside_right)
                .map(|&c| (KeyDistance::between(key, c, dim), c))
                .collect();
            outside.sort_unstable();
            outside.dedup();
            plan.extend(outside.into_iter().map(|(_, c)| (HopPhase::Ascending, c)));
            plan.extend(
                closer_leafs
                    .into_iter()
                    .map(|(_, c)| (HopPhase::Ascending, c)),
            );
            return StepPlan::Forward(plan);
        }

        // Phase 2: descending.
        let mut plan: Vec<(HopPhase, CycloidId)> = Vec::new();
        if k == m {
            // Correct bit k through the cubical neighbour.
            if let Some(cb) = state.cubical_neighbor {
                plan.push((HopPhase::Descending, cb));
            }
        } else {
            // k > m: lower the cyclic index towards MSDB through the
            // cyclic neighbours or inside leaf set, "whichever is closer
            // to the target": maximal shared cubical prefix with the key,
            // then minimal key distance.
            let mut cands: Vec<(u32, KeyDistance, CycloidId)> = state
                .cyclic_smaller
                .into_iter()
                .chain(state.cyclic_larger)
                .chain(state.inside_left.iter().copied())
                .chain(state.inside_right.iter().copied())
                .filter(|c| c.cyclic >= m && c.cyclic < k)
                .map(|c| {
                    (
                        prefix_len(c.cubical, key.cubical, dim),
                        KeyDistance::between(key, c, dim),
                        c,
                    )
                })
                .collect();
            cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            cands.dedup_by_key(|e| e.2);
            plan.extend(cands.into_iter().map(|(_, _, c)| (HopPhase::Descending, c)));
        }
        plan.extend(
            closer_leafs
                .into_iter()
                .map(|(_, c)| (HopPhase::Descending, c)),
        );
        StepPlan::Forward(plan)
    }

    /// "The target ID is within the leaf sets": the key's cycle coincides
    /// with the current node's, or lies on the clockwise arc from the
    /// farthest preceding outside-leaf cycle to the farthest succeeding
    /// one (the arc through the current node).
    fn target_within_leaf_span(&self, state: &NodeState, key: CycloidId) -> bool {
        let cur = state.id;
        if key.cubical == cur.cubical {
            return true;
        }
        let left_outer = match state.outside_left.last() {
            Some(c) => c.cubical,
            None => return true, // no outside leafs: lone cycle
        };
        let right_outer = match state.outside_right.last() {
            Some(c) => c.cubical,
            None => return true,
        };
        if left_outer == cur.cubical && right_outer == cur.cubical {
            return true; // network has a single cycle
        }
        let m = self.dim().cubical_space();
        clockwise_dist(left_outer, key.cubical, m) <= clockwise_dist(left_outer, right_outer, m)
    }
}

impl SimOverlay for CycloidNetwork {
    type State = NodeState;
    type Walk = CycloidWalk;

    fn membership(&self) -> &Membership<NodeState> {
        self.members()
    }

    fn membership_mut(&mut self) -> &mut Membership<NodeState> {
        self.members_mut()
    }

    fn label(&self) -> String {
        format!("Cycloid({})", 3 + 4 * self.leaf_radius())
    }

    fn degree_limit(&self) -> Option<usize> {
        Some(3 + 4 * self.leaf_radius())
    }

    /// One message per routing-table/leaf-set entry the node actually
    /// holds (floored at one: even a lone node probes its cycle).
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        self.members()
            .get(node)
            .map_or(1, |s| (s.degree() as u64).max(1))
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key).linear(self.dim())
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        let key = self.key_of(raw_key);
        self.owner_of_key(key).map(|id| id.linear(self.dim()))
    }

    /// Hop budget: a correct lookup needs `O(d)` hops; the budget leaves a
    /// wide margin so only genuinely broken routing trips it.
    fn hop_budget(&self) -> usize {
        16 * self.dim().get() as usize + 64
    }

    fn begin_walk(&self, src: NodeToken, raw_key: u64) -> CycloidWalk {
        let src = CycloidId::from_linear(src, self.dim());
        self.walk_for(src, self.key_of(raw_key))
    }

    fn walk_owner(&self, walk: &CycloidWalk) -> Option<NodeToken> {
        self.owner_of_key(walk.key).map(|id| id.linear(self.dim()))
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut CycloidWalk) -> StepDecision {
        let dim = self.dim();
        let cur = CycloidId::from_linear(cur, dim);
        match self.plan_step(cur, walk.key) {
            StepPlan::Terminate => StepDecision::Terminate,
            StepPlan::Forward(candidates) => StepDecision::Forward(
                candidates
                    .into_iter()
                    .map(|(phase, c)| (phase, c.linear(dim)))
                    .collect(),
            ),
        }
    }

    /// A hop that strictly reduces the key distance can never loop, so it
    /// may revisit; non-improving (phase) hops are blocked from revisiting
    /// to guarantee termination.
    fn admit(&self, walk: &CycloidWalk, cur: NodeToken, cand: NodeToken) -> bool {
        let dim = self.dim();
        let cur_dist = KeyDistance::between(walk.key, CycloidId::from_linear(cur, dim), dim);
        let improving =
            KeyDistance::between(walk.key, CycloidId::from_linear(cand, dim), dim) < cur_dist;
        improving || !walk.visited.contains(&cand)
    }

    fn on_hop(
        &self,
        walk: &mut CycloidWalk,
        _from: NodeToken,
        _phase: HopPhase,
        to: NodeToken,
        _timed_out: &[NodeToken],
    ) {
        walk.visited.insert(to);
    }

    /// A walk whose candidates were all skipped stops where it stands and
    /// is judged like a deliberate terminal (preserving the `WrongOwner`
    /// distinction), exactly as a real querier would conclude.
    fn on_exhausted(&self, cur: NodeToken, walk: &CycloidWalk) -> LookupOutcome {
        self.classify_terminal(cur, walk)
    }

    fn node_join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random(rng).map(|id| id.linear(self.dim()))
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        let id = CycloidId::from_linear(node, self.dim());
        self.leave(id)
    }

    fn node_fail(&mut self, node: NodeToken) -> bool {
        let id = CycloidId::from_linear(node, self.dim());
        self.fail_node(id)
    }

    fn stabilize_network(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_one(&mut self, node: NodeToken) {
        let id = CycloidId::from_linear(node, self.dim());
        if self.is_live(id) {
            self.refresh_node(id);
        }
    }

    fn aux_bytes(&self) -> usize {
        self.index_bytes()
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(CycloidId::from_linear(node, self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CycloidConfig;
    use dht_core::overlay::Overlay;
    use dht_core::rng::stream;
    use rand::Rng;

    fn id(k: u32, a: u64) -> CycloidId {
        CycloidId::new(k, a)
    }

    /// Routes between explicit IDs in a complete network and checks
    /// success.
    fn route_ok(net: &mut CycloidNetwork, src: CycloidId, key: CycloidId) -> LookupTrace {
        let t = net.route_to_id(src, key);
        assert_eq!(
            t.outcome,
            LookupOutcome::Found,
            "lookup {src} -> {key} ended {:?} at {}",
            t.outcome,
            CycloidId::from_linear(t.terminal, net.dim())
        );
        t
    }

    #[test]
    fn complete_network_every_pair_resolves_d4() {
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        let ids: Vec<CycloidId> = net.ids().collect();
        for &src in &ids {
            for &dst in ids.iter().step_by(5) {
                let t = route_ok(&mut net, src, dst);
                assert_eq!(
                    CycloidId::from_linear(t.terminal, net.dim()),
                    dst,
                    "in a complete network the key's own node stores it"
                );
                assert_eq!(t.timeouts, 0);
            }
        }
    }

    #[test]
    fn paper_fig4_route_example() {
        // Fig. 4: routing from (0,0100) to (2,1111) in a 4-dimensional
        // complete Cycloid passes through ascending, descending and
        // traverse phases and takes O(d) hops.
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        let t = route_ok(&mut net, id(0, 0b0100), id(2, 0b1111));
        assert!(t.path_len() >= 3, "nontrivial route expected");
        assert!(
            t.path_len() <= 12,
            "route must stay O(d), got {}",
            t.path_len()
        );
        assert!(t.hops_in_phase(HopPhase::Ascending) >= 1);
        assert!(t.hops_in_phase(HopPhase::Descending) >= 1);
    }

    #[test]
    fn ascending_usually_one_hop_in_complete_network() {
        // §4.1: "the ascending phase in Cycloid usually takes only one
        // step because the outside leaf set entry node is the primary node
        // in its cycle".
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(6));
        let mut rng = stream(11, "asc");
        let mut total_asc = 0usize;
        let mut lookups = 0usize;
        for _ in 0..500 {
            let src_lin = rng.gen_range(0..net.dim().id_space());
            let dst_lin = rng.gen_range(0..net.dim().id_space());
            let src = CycloidId::from_linear(src_lin, net.dim());
            let dst = CycloidId::from_linear(dst_lin, net.dim());
            let t = route_ok(&mut net, src, dst);
            total_asc += t.hops_in_phase(HopPhase::Ascending);
            lookups += 1;
        }
        let mean_asc = total_asc as f64 / lookups as f64;
        assert!(
            mean_asc <= 1.5,
            "mean ascending hops {mean_asc} should be about one"
        );
    }

    #[test]
    fn sparse_network_lookups_all_resolve() {
        // 300 of 2048 slots occupied: every lookup still terminates at the
        // global owner with zero timeouts (tables are fresh).
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 300, 17);
        let ids: Vec<CycloidId> = net.ids().collect();
        let mut rng = stream(18, "sparse");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route_to_id(src, key);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i} failed");
            assert_eq!(t.timeouts, 0);
            assert_eq!(
                Some(t.terminal),
                net.owner_of_key(key).map(|o| o.linear(net.dim()))
            );
        }
    }

    #[test]
    fn eleven_entry_paths_not_longer_on_average() {
        // §3.2: "the 11-entry Cycloid DHT has better performance".
        let mut seven = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 500, 3);
        let mut eleven = CycloidNetwork::with_nodes(CycloidConfig::eleven_entry(7), 500, 3);
        let mut rng = stream(19, "cmp");
        let reqs: Vec<(usize, u64)> = (0..2000).map(|i| (i % 500, rng.gen())).collect();
        let mean = |net: &mut CycloidNetwork| -> f64 {
            let ids: Vec<CycloidId> = net.ids().collect();
            let mut total = 0usize;
            for &(i, raw) in &reqs {
                total += net.route(ids[i], raw).path_len();
            }
            total as f64 / reqs.len() as f64
        };
        let m7 = mean(&mut seven);
        let m11 = mean(&mut eleven);
        assert!(
            m11 <= m7 + 0.3,
            "11-entry mean {m11} should not exceed 7-entry mean {m7}"
        );
    }

    #[test]
    fn path_length_scales_linearly_with_dimension() {
        // O(d) claim: mean path length in the complete network stays below
        // 2.5 * d for every simulated dimension.
        for d in 3..=7u32 {
            let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(d));
            let mut rng = stream(u64::from(d), "odim");
            let space = net.dim().id_space();
            let mut total = 0usize;
            let n_lookups = 400;
            for _ in 0..n_lookups {
                let src = CycloidId::from_linear(rng.gen_range(0..space), net.dim());
                let dst = CycloidId::from_linear(rng.gen_range(0..space), net.dim());
                total += route_ok(&mut net, src, dst).path_len();
            }
            let mean = total as f64 / f64::from(n_lookups);
            assert!(
                mean <= 2.5 * f64::from(d),
                "complete Cycloid({d}) mean path {mean} exceeds 2.5d"
            );
        }
    }

    #[test]
    fn lookup_after_mass_departures_still_resolves() {
        // §4.3's property: after massive graceful departures and NO
        // stabilization, all lookups still resolve (leaf sets carry the
        // routing), at the cost of timeouts.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 1024, 23);
        let mut rng = stream(29, "fail");
        let ids: Vec<CycloidId> = net.ids().collect();
        for &node in &ids {
            if rng.gen_bool(0.4) {
                net.leave(node);
            }
        }
        let live: Vec<CycloidId> = net.ids().collect();
        assert!(!live.is_empty());
        let mut total_timeouts = 0u32;
        for i in 0..1000 {
            let src = live[i % live.len()];
            let raw: u64 = rng.gen();
            let t = net.route(src, raw);
            assert_eq!(
                t.outcome,
                LookupOutcome::Found,
                "lookup {i} failed after departures"
            );
            total_timeouts += t.timeouts;
        }
        assert!(
            total_timeouts > 0,
            "stale cubical/cyclic entries must produce timeouts"
        );
    }

    #[test]
    fn stabilization_removes_timeouts() {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 1024, 31);
        let mut rng = stream(37, "stab");
        let ids: Vec<CycloidId> = net.ids().collect();
        for &node in &ids {
            if rng.gen_bool(0.3) {
                net.leave(node);
            }
        }
        net.stabilize_all();
        let live: Vec<CycloidId> = net.ids().collect();
        for i in 0..500 {
            let src = live[i % live.len()];
            let t = net.route(src, rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
            assert_eq!(t.timeouts, 0, "stabilized network must have no timeouts");
        }
    }

    #[test]
    fn query_loads_accumulate_over_lookups() {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 100, 41);
        let ids: Vec<CycloidId> = net.ids().collect();
        let mut rng = stream(43, "load");
        for i in 0..200 {
            let src = ids[i % ids.len()];
            let _ = net.route(src, rng.gen());
        }
        let loads = net.query_loads();
        let total: u64 = loads.iter().sum();
        assert!(total >= 200, "at least the source visit per lookup");
    }

    #[test]
    fn route_from_every_node_to_same_key_agrees() {
        // Determinism/consistency: the terminal node is the unique owner
        // regardless of the source.
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(7), 300, 47);
        let ids: Vec<CycloidId> = net.ids().collect();
        let raw = 0xdead_beef_cafe_f00d;
        let owner = net.owner_of_key(net.key_of(raw)).unwrap();
        for &src in ids.iter().step_by(13) {
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found);
            assert_eq!(t.terminal, owner.linear(net.dim()));
        }
    }

    #[test]
    fn two_node_network_routes() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(4), 51);
        net.join_id(id(1, 2));
        net.join_id(id(3, 11));
        net.stabilize_all();
        for raw in 0..50u64 {
            let t = net.route(id(1, 2), raw.wrapping_mul(0x1234_5678_9abc));
            assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(4), 53);
        net.join_id(id(2, 7));
        let t = net.route(id(2, 7), 999);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.path_len(), 0);
    }
}
