//! Per-node routing state: the routing table and the two leaf sets.
//!
//! Table 2 of the paper shows the seven-entry state of a node in an
//! eight-dimensional Cycloid:
//!
//! | entry | example for node (4, 10110110) |
//! |---|---|
//! | cubical neighbour | (3, 1010xxxx) |
//! | cyclic neighbour (larger) | (3, 1011011x)-class first larger |
//! | cyclic neighbour (smaller) | first smaller |
//! | inside leaf set | local-cycle predecessor and successor |
//! | outside leaf set | primaries of the preceding and succeeding cycles |
//!
//! The 11-entry variant (§3.2, §4) widens each leaf set to two predecessors
//! and two successors.

use dht_core::inline::InlineVec;

use crate::id::CycloidId;

/// Fixed-capacity slot for one side of a leaf set. The paper's leaf
/// radius is 1 (7-entry state) or 2 (11-entry state); the substrate
/// accepts radii up to 4, so four inline entries always suffice — the
/// whole routing state stays inside the membership slab with no
/// per-node heap allocations.
pub type LeafSlot = InlineVec<CycloidId, 4>;

/// Routing state of one Cycloid node.
///
/// All entries are *outgoing* pointers (§3.3.2: "a node only has outgoing
/// connections"); they may go stale when the pointed-to node departs, which
/// is exactly what the paper's timeout experiments measure.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identifier.
    pub id: CycloidId,
    /// Cubical neighbour: a node matching `(k-1, a_{d-1}…a_{k+1} ā_k x…x)`,
    /// or `None` when `k == 0` or no such node is live.
    pub cubical_neighbor: Option<CycloidId>,
    /// First *larger* cyclic neighbour: smallest cubical index `>= a`
    /// among nodes with cyclic index `k-1` differing from `a` only below
    /// bit `k`.
    pub cyclic_larger: Option<CycloidId>,
    /// First *smaller* cyclic neighbour (mirror of `cyclic_larger`).
    pub cyclic_smaller: Option<CycloidId>,
    /// Inside leaf set, predecessor side: nearest live local-cycle
    /// predecessors, nearest first. Points at self when the node is alone
    /// on its cycle.
    pub inside_left: LeafSlot,
    /// Inside leaf set, successor side: nearest live local-cycle
    /// successors, nearest first.
    pub inside_right: LeafSlot,
    /// Outside leaf set, preceding side: primaries of the nearest preceding
    /// non-empty remote cycles, nearest first.
    pub outside_left: LeafSlot,
    /// Outside leaf set, succeeding side: primaries of the nearest
    /// succeeding non-empty remote cycles, nearest first.
    pub outside_right: LeafSlot,
}

impl NodeState {
    /// Fresh state with empty tables.
    #[must_use]
    pub fn new(id: CycloidId) -> Self {
        Self {
            id,
            cubical_neighbor: None,
            cyclic_larger: None,
            cyclic_smaller: None,
            inside_left: LeafSlot::new(),
            inside_right: LeafSlot::new(),
            outside_left: LeafSlot::new(),
            outside_right: LeafSlot::new(),
        }
    }

    /// All distinct routing-table entries (the three neighbours), live or
    /// stale.
    pub fn routing_entries(&self) -> impl Iterator<Item = CycloidId> + '_ {
        self.cubical_neighbor
            .into_iter()
            .chain(self.cyclic_larger)
            .chain(self.cyclic_smaller)
    }

    /// All leaf-set entries, inside first.
    pub fn leaf_entries(&self) -> impl Iterator<Item = CycloidId> + '_ {
        self.inside_left
            .iter()
            .chain(&self.inside_right)
            .chain(&self.outside_left)
            .chain(&self.outside_right)
            .copied()
    }

    /// Every contact this node knows (routing table + both leaf sets),
    /// deduplicated, excluding itself.
    #[must_use]
    pub fn known_contacts(&self) -> Vec<CycloidId> {
        let mut v: Vec<CycloidId> = self.routing_entries().chain(self.leaf_entries()).collect();
        v.sort_unstable();
        v.dedup();
        v.retain(|&c| c != self.id);
        v
    }

    /// Number of distinct non-self entries currently held — the node's
    /// degree. Bounded by 7 (leaf radius 1) or 11 (leaf radius 2).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.known_contacts().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(k: u32, a: u64) -> CycloidId {
        CycloidId::new(k, a)
    }

    #[test]
    fn fresh_state_is_empty() {
        let s = NodeState::new(id(4, 0b1011_0110));
        assert_eq!(s.degree(), 0);
        assert_eq!(s.routing_entries().count(), 0);
        assert_eq!(s.leaf_entries().count(), 0);
    }

    #[test]
    fn known_contacts_dedup_and_exclude_self() {
        let me = id(2, 5);
        let other = id(1, 5);
        let mut s = NodeState::new(me);
        s.cubical_neighbor = Some(other);
        s.cyclic_larger = Some(other);
        s.inside_left = vec![me].into(); // alone on cycle: points at self
        s.inside_right = vec![me].into();
        s.outside_left = vec![id(0, 4)].into();
        s.outside_right = vec![id(0, 6)].into();
        let contacts = s.known_contacts();
        assert!(!contacts.contains(&me), "self must be excluded");
        assert_eq!(contacts.len(), 3, "duplicates must collapse: {contacts:?}");
    }

    #[test]
    fn seven_entry_bound() {
        // Radius-1 leaf sets + 3 routing entries can never exceed 7.
        let me = id(3, 9);
        let mut s = NodeState::new(me);
        s.cubical_neighbor = Some(id(2, 1));
        s.cyclic_larger = Some(id(2, 9));
        s.cyclic_smaller = Some(id(2, 8));
        s.inside_left = vec![id(1, 9)].into();
        s.inside_right = vec![id(4, 9)].into();
        s.outside_left = vec![id(7, 8)].into();
        s.outside_right = vec![id(7, 10)].into();
        assert!(s.degree() <= 7);
        assert_eq!(s.degree(), 7);
    }
}
