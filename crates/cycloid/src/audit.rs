//! Conformance audit: checks every node's routing state against the §2.1
//! specification (exactly seven — or eleven — outgoing entries: one cubical
//! neighbour, two cyclic neighbours, and the inside/outside leaf sets).
//!
//! The leaf sets are repaired eagerly by the graceful join/leave protocol
//! (§3.3), so they are checked at [`AuditScope::Online`]; the cubical and
//! cyclic neighbours are "the responsibility of system stabilization, as in
//! Chord" (§3.3.2) and are only checked at [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::CycloidNetwork;

impl StateAudit for CycloidNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let dim = self.dim();
        let bound = 3 + 4 * self.leaf_radius();
        for (token, state) in self.members().iter() {
            report.note_checked(1);
            let id = state.id;
            report.check_eq(token, "cycloid/id-token", &id.linear(dim), &token);

            // §2.1: at most 7 (or 11) outgoing routing entries, and each
            // of the four leaf-set sides holds exactly `leaf_radius` slots.
            let r = self.leaf_radius();
            report.check(
                token,
                "cycloid/state-size",
                state.degree() <= bound
                    && state.inside_left.len() == r
                    && state.inside_right.len() == r
                    && state.outside_left.len() == r
                    && state.outside_right.len() == r,
                || {
                    format!(
                        "degree {} (bound {bound}), leaf sides {}/{}/{}/{} (radius {r})",
                        state.degree(),
                        state.inside_left.len(),
                        state.inside_right.len(),
                        state.outside_left.len(),
                        state.outside_right.len()
                    )
                },
            );

            // A node with cyclic index 0 has no cubical or cyclic
            // neighbours (its routing table holds only leaf sets, §3.1).
            if id.cyclic == 0 {
                report.check(
                    token,
                    "cycloid/k0-no-routing-neighbors",
                    state.cubical_neighbor.is_none()
                        && state.cyclic_smaller.is_none()
                        && state.cyclic_larger.is_none(),
                    || {
                        format!(
                            "cyclic index 0 but cubical={:?} smaller={:?} larger={:?}",
                            state.cubical_neighbor, state.cyclic_smaller, state.cyclic_larger
                        )
                    },
                );
            }

            // Inside leaf set: the true nearest live local-cycle
            // predecessors/successors, eagerly repaired on join/leave.
            let (in_left, in_right) = self.resolve_inside_leafs(id);
            report.check_eq(
                token,
                "cycloid/inside-leaf-set",
                &state.inside_left,
                &in_left,
            );
            report.check_eq(
                token,
                "cycloid/inside-leaf-set",
                &state.inside_right,
                &in_right,
            );

            // Outside leaf set: primaries of the nearest non-empty
            // adjacent cycles, also eagerly repaired.
            let (out_left, out_right) = self.resolve_outside_leafs(id);
            report.check_eq(
                token,
                "cycloid/outside-leaf-set",
                &state.outside_left,
                &out_left,
            );
            report.check_eq(
                token,
                "cycloid/outside-leaf-set",
                &state.outside_right,
                &out_right,
            );

            if scope == AuditScope::Full {
                report.check_eq(
                    token,
                    "cycloid/cubical-neighbor",
                    &state.cubical_neighbor,
                    &self.resolve_cubical_neighbor(id),
                );
                let (smaller, larger) = self.resolve_cyclic_neighbors(id);
                report.check_eq(
                    token,
                    "cycloid/cyclic-neighbors",
                    &(state.cyclic_smaller, state.cyclic_larger),
                    &(smaller, larger),
                );
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CycloidConfig;
    use crate::CycloidId;
    use dht_core::rng::stream;

    fn net(n: usize) -> CycloidNetwork {
        CycloidNetwork::with_nodes(CycloidConfig::seven_entry(5), n, 7)
    }

    #[test]
    fn stabilized_network_is_fully_clean() {
        let net = net(80);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 80);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn online_invariants_survive_graceful_churn_without_stabilization() {
        let mut net = net(60);
        let mut rng = stream(3, "cycloid-audit-churn");
        for step in 0..40 {
            if step % 3 == 0 {
                let victim = net.ids().nth(step % net.node_count()).unwrap();
                net.leave(victim);
            } else {
                net.join_random(&mut rng);
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn corrupted_cubical_neighbor_is_caught_by_name() {
        let mut net = net(80);
        let id = net.ids().find(|i| i.cyclic > 0).unwrap();
        let wrong = CycloidId::new(id.cyclic - 1, id.cubical ^ 1);
        net.node_mut(id).unwrap().cubical_neighbor = Some(wrong);
        let report = net.audit(AuditScope::Full);
        assert!(
            report
                .violated_invariants()
                .contains(&"cycloid/cubical-neighbor"),
            "{report}"
        );
        // The corruption is in lazily-stabilized state, so the online
        // audit must NOT flag it.
        assert!(net.audit(AuditScope::Online).is_clean());
    }

    #[test]
    fn corrupted_leaf_set_is_caught_online() {
        let mut net = net(80);
        let id = net.ids().next().unwrap();
        net.node_mut(id).unwrap().inside_right.clear();
        let report = net.audit(AuditScope::Online);
        assert!(
            report
                .violated_invariants()
                .contains(&"cycloid/inside-leaf-set"),
            "{report}"
        );
    }

    #[test]
    fn oversized_state_is_caught_by_name() {
        let mut net = net(80);
        let id = net.ids().next().unwrap();
        // Pad with distinct contacts so the *deduplicated* degree exceeds
        // the bound, not just the slot count. Each fixed-width leaf slot
        // holds at most 4 entries, so spread the pads across three slots.
        let state = net.node_mut(id).unwrap();
        state.inside_left = (0..4).map(|c| CycloidId::new(4, c)).collect();
        state.inside_right = (4..8).map(|c| CycloidId::new(4, c)).collect();
        state.outside_left = (8..12).map(|c| CycloidId::new(4, c)).collect();
        let report = net.audit(AuditScope::Online);
        assert!(
            report.violated_invariants().contains(&"cycloid/state-size"),
            "{report}"
        );
    }
}
