//! The Cycloid overlay network: membership, neighbour resolution, the
//! join/leave protocols of §3.3, and stabilization.
//!
//! The network is a *simulator* in the paper's sense: all node states live
//! in one structure, and protocol actions (join notifications, graceful
//! leave notifications, stabilization refreshes) mutate exactly the state
//! the real protocol would mutate. Pointers the protocol does **not**
//! repair — other nodes' cubical and cyclic neighbours — go stale until
//! stabilization, which is what the §4.3 timeout experiments measure.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use dht_core::sim::Membership;
use rand::RngCore;

use crate::id::{CycloidId, Dim, KeyDistance};
use crate::state::{LeafSlot, NodeState};

/// Configuration of a Cycloid deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycloidConfig {
    /// Dimension `d`; the identifier space holds `d * 2^d` nodes.
    pub dimension: u32,
    /// Leaf-set radius: 1 gives the paper's seven-entry DHT, 2 the
    /// eleven-entry variant.
    pub leaf_radius: usize,
}

impl CycloidConfig {
    /// The paper's default seven-entry configuration.
    #[must_use]
    pub fn seven_entry(dimension: u32) -> Self {
        Self {
            dimension,
            leaf_radius: 1,
        }
    }

    /// The eleven-entry configuration (two predecessors and two successors
    /// in each leaf set).
    #[must_use]
    pub fn eleven_entry(dimension: u32) -> Self {
        Self {
            dimension,
            leaf_radius: 2,
        }
    }

    /// Maximum routing-state entries per node: 3 routing-table neighbours
    /// plus `4 * leaf_radius` leaf pointers.
    #[must_use]
    pub fn degree_bound(&self) -> usize {
        3 + 4 * self.leaf_radius
    }
}

/// A simulated Cycloid network.
#[derive(Debug, Clone)]
pub struct CycloidNetwork {
    dim: Dim,
    leaf_radius: usize,
    /// Live nodes, keyed by linear identifier (`cubical * d + cyclic`).
    members: Membership<NodeState>,
    /// Non-empty cycles: cubical index → live cyclic indices on that cycle.
    cycles: BTreeMap<u64, BTreeSet<u32>>,
    /// Per-cyclic-index membership: `by_cyclic[k]` holds the cubical
    /// indices of cycles containing a node with cyclic index `k`.
    by_cyclic: Vec<BTreeSet<u64>>,
}

impl CycloidNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(config: CycloidConfig, seed: u64) -> Self {
        let dim = Dim::new(config.dimension);
        assert!(
            config.leaf_radius >= 1 && config.leaf_radius <= 4,
            "leaf radius must be in [1, 4]"
        );
        Self {
            dim,
            leaf_radius: config.leaf_radius,
            members: Membership::new(seed),
            cycles: BTreeMap::new(),
            by_cyclic: vec![BTreeSet::new(); config.dimension as usize],
        }
    }

    /// Builds a network of `count` uniformly placed nodes and stabilizes it
    /// ("once the network becomes stable", §4.3). Panics if `count` exceeds
    /// the identifier space.
    #[must_use]
    pub fn with_nodes(config: CycloidConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        assert!(
            count as u64 <= net.dim.id_space(),
            "{count} nodes exceed the {}-slot identifier space",
            net.dim.id_space()
        );
        while net.members.len() < count {
            let id = CycloidId::from_hash(net.members.next_raw(), net.dim);
            if !net.is_live(id) {
                net.insert_membership(id);
            }
        }
        net.stabilize_all();
        net
    }

    /// Builds the *complete* network: every one of the `d * 2^d`
    /// identifiers is occupied ("the network will be the traditional
    /// cube-connected cycles if all nodes are alive", §3.1).
    #[must_use]
    pub fn complete(config: CycloidConfig) -> Self {
        let mut net = Self::new(config, 0);
        for linear in 0..net.dim.id_space() {
            net.insert_membership(CycloidId::from_linear(linear, net.dim));
        }
        net.stabilize_all();
        net
    }

    /// The network dimension.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The leaf-set radius (1 = seven-entry, 2 = eleven-entry).
    #[must_use]
    pub fn leaf_radius(&self) -> usize {
        self.leaf_radius
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `id` is a live node.
    #[must_use]
    pub fn is_live(&self, id: CycloidId) -> bool {
        self.members.contains(id.linear(self.dim))
    }

    /// State of a live node.
    #[must_use]
    pub fn node(&self, id: CycloidId) -> Option<&NodeState> {
        self.members.get(id.linear(self.dim))
    }

    /// Mutable state of a live node.
    pub fn node_mut(&mut self, id: CycloidId) -> Option<&mut NodeState> {
        self.members.get_mut(id.linear(self.dim))
    }

    /// The node arena (for the simulation substrate).
    pub(crate) fn members(&self) -> &Membership<NodeState> {
        &self.members
    }

    /// The node arena, mutably (for the simulation substrate).
    pub(crate) fn members_mut(&mut self) -> &mut Membership<NodeState> {
        &mut self.members
    }

    /// Iterates over live node identifiers in linear order.
    pub fn ids(&self) -> impl Iterator<Item = CycloidId> + '_ {
        self.members
            .token_iter()
            .map(move |linear| CycloidId::from_linear(linear, self.dim))
    }

    /// Maps a raw key to its identifier in this space.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> CycloidId {
        CycloidId::from_hash(raw_key, self.dim)
    }

    /// The live node responsible for `key`: the unique minimum of
    /// [`KeyDistance`] over all live nodes (§3.1's assignment rule).
    ///
    /// Computed from the membership indexes in `O(log n)`-ish time: only
    /// the nearest non-empty cycle on each side of the key (plus the key's
    /// own cycle) can contain the owner.
    #[must_use]
    pub fn owner_of_key(&self, key: CycloidId) -> Option<CycloidId> {
        if self.members.is_empty() {
            return None;
        }
        let mut best: Option<(KeyDistance, CycloidId)> = None;
        let mut consider = |cubical: u64, net: &Self| {
            if let Some(members) = net.cycles.get(&cubical) {
                for &k in members {
                    let cand = CycloidId::new(k, cubical);
                    let d = KeyDistance::between(key, cand, net.dim);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, cand));
                    }
                }
            }
        };
        consider(key.cubical, self);
        if let Some(next) = self.next_nonempty_cycle(key.cubical) {
            consider(next, self);
        }
        if let Some(prev) = self.prev_nonempty_cycle(key.cubical) {
            consider(prev, self);
        }
        best.map(|(_, id)| id)
    }

    /// Approximate heap bytes of the membership indexes (`cycles`,
    /// `by_cyclic`) — the overlay-level structures outside the node
    /// arena, reported through `SimOverlay::aux_bytes`.
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        use dht_core::store::approx_btree_bytes;
        let cycles: usize = self
            .cycles
            .values()
            .map(|s| approx_btree_bytes(s.len(), std::mem::size_of::<u32>()))
            .sum::<usize>()
            + approx_btree_bytes(self.cycles.len(), std::mem::size_of::<(u64, usize)>());
        let by_cyclic: usize = self
            .by_cyclic
            .iter()
            .map(|s| approx_btree_bytes(s.len(), std::mem::size_of::<u64>()))
            .sum();
        cycles + by_cyclic
    }

    // ------------------------------------------------------------------
    // Membership indexes
    // ------------------------------------------------------------------

    fn insert_membership(&mut self, id: CycloidId) {
        let linear = id.linear(self.dim);
        self.members.insert(linear, NodeState::new(id));
        self.cycles.entry(id.cubical).or_default().insert(id.cyclic);
        self.by_cyclic[id.cyclic as usize].insert(id.cubical);
    }

    fn remove_membership(&mut self, id: CycloidId) -> Option<NodeState> {
        let linear = id.linear(self.dim);
        let state = self.members.remove(linear)?;
        let members = self
            .cycles
            .get_mut(&id.cubical)
            .expect("cycle index out of sync");
        members.remove(&id.cyclic);
        if members.is_empty() {
            self.cycles.remove(&id.cubical);
        }
        self.by_cyclic[id.cyclic as usize].remove(&id.cubical);
        Some(state)
    }

    /// Primary node (largest cyclic index, §3.1) of cycle `cubical`, if the
    /// cycle is non-empty.
    #[must_use]
    pub fn primary_of(&self, cubical: u64) -> Option<CycloidId> {
        self.cycles
            .get(&cubical)
            .and_then(|m| m.iter().next_back())
            .map(|&k| CycloidId::new(k, cubical))
    }

    /// Nearest non-empty cycle clockwise (increasing cubical index,
    /// wrapping) strictly after `cubical`. Returns `cubical` itself only if
    /// it is the sole non-empty cycle.
    #[must_use]
    pub fn next_nonempty_cycle(&self, cubical: u64) -> Option<u64> {
        if self.cycles.is_empty() {
            return None;
        }
        self.cycles
            .range(cubical + 1..)
            .next()
            .or_else(|| self.cycles.range(..=cubical).next())
            .map(|(&c, _)| c)
    }

    /// Nearest non-empty cycle counter-clockwise strictly before `cubical`
    /// (wrapping).
    #[must_use]
    pub fn prev_nonempty_cycle(&self, cubical: u64) -> Option<u64> {
        if self.cycles.is_empty() {
            return None;
        }
        self.cycles
            .range(..cubical)
            .next_back()
            .or_else(|| self.cycles.range(cubical..).next_back())
            .map(|(&c, _)| c)
    }

    // ------------------------------------------------------------------
    // Neighbour resolution (the "local remote search" outcome)
    // ------------------------------------------------------------------

    /// Resolves the cubical neighbour of `id`: a live node matching
    /// `(k-1, a_{d-1}…a_{k+1} ā_k x…x)` — prefix above bit `k` preserved,
    /// bit `k` flipped, low bits arbitrary (Table 2). Among multiple
    /// candidates, the one whose cubical index is nearest to `a XOR 2^k`
    /// is chosen (ties toward the smaller index), which is the node the
    /// §3.3.1 local-remote search finds first.
    #[must_use]
    pub fn resolve_cubical_neighbor(&self, id: CycloidId) -> Option<CycloidId> {
        let k = id.cyclic;
        if k == 0 {
            return None;
        }
        let target = id.cubical ^ (1u64 << k);
        let low_mask = (1u64 << k) - 1;
        let base = target & !low_mask;
        let set = &self.by_cyclic[(k - 1) as usize];
        let above = set.range(target..=base | low_mask).next().copied();
        let below = set.range(base..target).next_back().copied();
        let pick = match (above, below) {
            (Some(u), Some(l)) => {
                if u - target < target - l {
                    Some(u)
                } else {
                    Some(l)
                }
            }
            (a, b) => a.or(b),
        };
        pick.map(|c| CycloidId::new(k - 1, c))
    }

    /// Resolves the two cyclic neighbours of `id`: the first larger and
    /// first smaller live nodes with cyclic index `k-1` whose cubical index
    /// differs from `a` only below bit `k` (MSDB with the current node no
    /// larger than `k-1`, §3.1).
    #[must_use]
    pub fn resolve_cyclic_neighbors(
        &self,
        id: CycloidId,
    ) -> (Option<CycloidId>, Option<CycloidId>) {
        let k = id.cyclic;
        if k == 0 {
            return (None, None);
        }
        let low_mask = (1u64 << k) - 1;
        let base = id.cubical & !low_mask;
        let top = base | low_mask;
        let set = &self.by_cyclic[(k - 1) as usize];
        let larger = if id.cubical < top {
            set.range(id.cubical + 1..=top)
                .next()
                .map(|&c| CycloidId::new(k - 1, c))
        } else {
            None
        };
        let smaller = set
            .range(base..id.cubical)
            .next_back()
            .map(|&c| CycloidId::new(k - 1, c));
        (smaller, larger)
    }

    /// Resolves the inside leaf set of `id`: the `leaf_radius` nearest live
    /// predecessors and successors on the local cycle, in cyclic order
    /// (mod `d`), nearest first. A node alone on its cycle points at
    /// itself (§3.3.1 case 2).
    #[must_use]
    pub fn resolve_inside_leafs(&self, id: CycloidId) -> (LeafSlot, LeafSlot) {
        let members = self
            .cycles
            .get(&id.cubical)
            .expect("inside leafs of a node on an empty cycle");
        let r = self.leaf_radius;
        if members.len() <= 1 {
            return (LeafSlot::repeat(id, r), LeafSlot::repeat(id, r));
        }
        let sorted: Vec<u32> = members.iter().copied().collect();
        let pos = sorted
            .binary_search(&id.cyclic)
            .expect("node missing from its own cycle");
        let n = sorted.len();
        let mut left = LeafSlot::new();
        let mut right = LeafSlot::new();
        for i in 1..=r {
            left.push(CycloidId::new(sorted[(pos + n - (i % n)) % n], id.cubical));
            right.push(CycloidId::new(sorted[(pos + i) % n], id.cubical));
        }
        (left, right)
    }

    /// Resolves the outside leaf set of `id`: primaries of the
    /// `leaf_radius` nearest non-empty preceding and succeeding remote
    /// cycles (wrapping on the large ring), nearest first. When fewer
    /// other cycles exist, entries wrap onto the node's own primary.
    #[must_use]
    pub fn resolve_outside_leafs(&self, id: CycloidId) -> (LeafSlot, LeafSlot) {
        let r = self.leaf_radius;
        let mut left = LeafSlot::new();
        let mut right = LeafSlot::new();
        let mut c = id.cubical;
        for _ in 0..r {
            c = self.prev_nonempty_cycle(c).unwrap_or(id.cubical);
            left.push(self.primary_of(c).unwrap_or(id));
        }
        let mut c = id.cubical;
        for _ in 0..r {
            c = self.next_nonempty_cycle(c).unwrap_or(id.cubical);
            right.push(self.primary_of(c).unwrap_or(id));
        }
        (left, right)
    }

    /// Recomputes every entry of one node's routing state (what the node's
    /// own stabilizer plus fresh leaf-set knowledge would produce).
    pub fn refresh_node(&mut self, id: CycloidId) {
        let cubical = self.resolve_cubical_neighbor(id);
        let (cyc_small, cyc_large) = self.resolve_cyclic_neighbors(id);
        let (in_l, in_r) = self.resolve_inside_leafs(id);
        let (out_l, out_r) = self.resolve_outside_leafs(id);
        let state = self
            .node_mut(id)
            .expect("refresh of a node that is not live");
        state.cubical_neighbor = cubical;
        state.cyclic_smaller = cyc_small;
        state.cyclic_larger = cyc_large;
        state.inside_left = in_l;
        state.inside_right = in_r;
        state.outside_left = out_l;
        state.outside_right = out_r;
    }

    /// Refreshes only the leaf sets of one node (join/leave notifications
    /// repair leaf sets but *not* cubical/cyclic neighbours, §3.3.2).
    pub fn refresh_leaf_sets(&mut self, id: CycloidId) {
        let (in_l, in_r) = self.resolve_inside_leafs(id);
        let (out_l, out_r) = self.resolve_outside_leafs(id);
        let state = self
            .node_mut(id)
            .expect("leaf refresh of a node that is not live");
        state.inside_left = in_l;
        state.inside_right = in_r;
        state.outside_left = out_l;
        state.outside_right = out_r;
    }

    /// One full stabilization round: every node refreshes its cubical and
    /// cyclic neighbours ("updating cubical and cyclic neighbours are the
    /// responsibility of system stabilization, as in Chord", §3.3.2) and
    /// its leaf sets.
    pub fn stabilize_all(&mut self) {
        let ids: Vec<CycloidId> = self.ids().collect();
        for id in ids {
            self.refresh_node(id);
        }
    }

    // ------------------------------------------------------------------
    // Join / leave protocols (§3.3)
    // ------------------------------------------------------------------

    /// Oracle-initialized join of a node with identifier `id`: state is
    /// computed from the live membership, then the §3.3.1 notifications
    /// repair the neighbourhood. Used for bulk construction; the
    /// message-level path is [`CycloidNetwork::join_via_protocol`], whose
    /// outcome is provably identical (see the property tests). Returns
    /// `false` if the identifier is already occupied.
    pub fn join_id(&mut self, id: CycloidId) -> bool {
        if self.is_live(id) {
            return false;
        }
        self.insert_membership(id);
        self.refresh_node(id);
        self.notify_after_membership_change(id);
        true
    }

    /// The full §3.3.1 protocol join: the join message is **routed** from
    /// the bootstrap contact to the existing node `Z` whose identifier is
    /// numerically closest to the newcomer's, and the newcomer's leaf sets
    /// are derived from `Z`'s state (the section's two cases) rather than
    /// from global knowledge. The routing table is then initialized by the
    /// local-remote search, and the §3.3.1 notifications repair the
    /// neighbourhood.
    ///
    /// Returns `false` if `id` is occupied or `bootstrap` is not live.
    /// Equivalent in outcome to [`CycloidNetwork::join_id`] (asserted by
    /// the property tests), but exercises the real message path.
    pub fn join_via_protocol(&mut self, bootstrap: CycloidId, id: CycloidId) -> bool {
        if self.is_live(id) || !self.is_live(bootstrap) {
            return false;
        }
        // 1. "The node A will route the joining message to the existing
        //    node Z whose ID is numerically closest to the ID of X."
        //    Control traffic: no query-load accounting.
        let trace = self.route_quiet(bootstrap, id);
        let z = CycloidId::from_linear(trace.terminal, self.dim);

        // 2. "Z's Leaf Sets are the basis for X's Leaf Sets."
        self.insert_membership(id);
        let (in_l, in_r, out_l, out_r) = self.derive_leafs_from(z, id);
        {
            let state = self.node_mut(id).expect("just inserted");
            state.inside_left = in_l;
            state.inside_right = in_r;
            state.outside_left = out_l;
            state.outside_right = out_r;
        }

        // 3. "We use a local remote method to initialize the three
        //    neighbors in the X's routing table."
        let cubical = self.resolve_cubical_neighbor(id);
        let (cyc_small, cyc_large) = self.resolve_cyclic_neighbors(id);
        {
            let state = self.node_mut(id).expect("just inserted");
            state.cubical_neighbor = cubical;
            state.cyclic_smaller = cyc_small;
            state.cyclic_larger = cyc_large;
        }

        // 4. Notifications: inside leaf set, plus the outside propagation
        //    when the newcomer is a primary. The newcomer's own sets were
        //    derived above and must not be overwritten.
        self.notify_after_membership_change_except(id, Some(id));
        true
    }

    /// Derives the newcomer `x`'s leaf sets from `z`'s state per §3.3.1:
    /// case 1 (same cycle) splices `x` next to `z` using `z`'s inside leaf
    /// set; case 2 (`x` alone on its cycle) points inside at `x` itself
    /// and assembles the outside leaf set from `z`'s cycle's primary and
    /// `z`'s outside entries.
    fn derive_leafs_from(
        &self,
        z: CycloidId,
        x: CycloidId,
    ) -> (LeafSlot, LeafSlot, LeafSlot, LeafSlot) {
        let r = self.leaf_radius;
        let z_state = self.node(z).expect("Z is live").clone();
        if z.cubical == x.cubical {
            // Case 1: X joins Z's cycle. Z is X's nearest cycle member, so
            // Z plus Z's inside leaf set covers X's whole neighbourhood;
            // compute X's pred/succ lists from that locally known set.
            let mut members: Vec<u32> = z_state
                .inside_left
                .iter()
                .chain(&z_state.inside_right)
                .filter(|m| m.cubical == x.cubical)
                .map(|m| m.cyclic)
                .chain([z.cyclic, x.cyclic])
                .collect();
            members.sort_unstable();
            members.dedup();
            let pos = members
                .binary_search(&x.cyclic)
                .expect("x was added to the set");
            let n = members.len();
            let mut left = LeafSlot::new();
            let mut right = LeafSlot::new();
            for i in 1..=r {
                left.push(CycloidId::new(members[(pos + n - (i % n)) % n], x.cubical));
                right.push(CycloidId::new(members[(pos + i) % n], x.cubical));
            }
            (left, right, z_state.outside_left, z_state.outside_right)
        } else {
            // Case 2: X is alone on its cycle; Z sits on an adjacent one.
            // "Two nodes in X's inside leaf set are X itself."
            let inside = LeafSlot::repeat(x, r);
            // Locally known non-empty cycles and their primaries: Z's own
            // cycle (Z reports its primary) plus Z's outside entries.
            let mut known: BTreeMap<u64, CycloidId> = BTreeMap::new();
            known.insert(
                z.cubical,
                self.primary_of(z.cubical).expect("Z's cycle is non-empty"),
            );
            for p in z_state.outside_left.iter().chain(&z_state.outside_right) {
                known.insert(p.cubical, *p);
            }
            known.remove(&x.cubical);
            let cubicals: Vec<u64> = known.keys().copied().collect();
            let pick = |dir_left: bool| -> LeafSlot {
                let mut out = LeafSlot::new();
                let mut cursor = x.cubical;
                for _ in 0..r {
                    let next = if dir_left {
                        cubicals
                            .iter()
                            .rev()
                            .find(|&&c| c < cursor)
                            .or_else(|| cubicals.last())
                    } else {
                        cubicals
                            .iter()
                            .find(|&&c| c > cursor)
                            .or_else(|| cubicals.first())
                    };
                    match next {
                        Some(&c) => {
                            out.push(known[&c]);
                            cursor = c;
                        }
                        None => break,
                    }
                }
                if out.is_empty() {
                    out.push(x);
                }
                out
            };
            (inside, inside, pick(true), pick(false))
        }
    }

    /// Join with a freshly hashed identifier (re-hashing on collision, as
    /// a real deployment re-hashes with a salt), bootstrapped at a random
    /// live node through the full §3.3.1 message path. Returns the new
    /// node, or `None` if the identifier space is full.
    pub fn join_random(&mut self, rng: &mut dyn RngCore) -> Option<CycloidId> {
        if self.members.len() as u64 >= self.dim.id_space() {
            return None;
        }
        let bootstrap = if self.members.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.members.len() as u64) as usize;
            self.ids().nth(i)
        };
        loop {
            let id = CycloidId::from_hash(self.members.next_raw(), self.dim);
            let joined = match bootstrap {
                Some(b) => self.join_via_protocol(b, id),
                None => self.join_id(id),
            };
            if joined {
                return Some(id);
            }
        }
    }

    /// Graceful departure of `id` (§3.3.2): the node notifies its inside
    /// leaf set, and its outside leaf set if it is a primary; notified
    /// primaries propagate around their local cycles. Nodes that hold the
    /// leaver as a *cubical or cyclic neighbour* are **not** notified —
    /// those pointers stay stale until stabilization, producing the
    /// timeouts of §4.3.
    ///
    /// Returns `false` if `id` is not live.
    pub fn leave(&mut self, id: CycloidId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.remove_membership(id);
        self.notify_after_membership_change(id);
        true
    }

    /// Ungraceful failure: `id` vanishes without notifying anyone, so the
    /// leaf sets of its cycle peers and adjacent primaries stay stale in
    /// addition to the cubical/cyclic pointers (§3.4 defers this case;
    /// the `ext-failures` experiment measures it). Returns `false` if
    /// `id` is not live.
    pub fn fail_node(&mut self, id: CycloidId) -> bool {
        self.remove_membership(id).is_some()
    }

    /// Repairs the leaf sets the §3.3 notification chains repair after
    /// `id` joined or left: all members of `id`'s local cycle (inside leaf
    /// sets), and all members of the `leaf_radius` nearest non-empty
    /// cycles on each side (outside leaf sets — reached via the primary
    /// notification that "is passed along in the joining node's
    /// neighbouring remote cycle until all the nodes in that cycle finish
    /// updating").
    fn notify_after_membership_change(&mut self, id: CycloidId) {
        self.notify_after_membership_change_except(id, None);
    }

    /// Like [`Self::notify_after_membership_change`], but skipping one
    /// node whose leaf sets were already initialized by other means (the
    /// protocol join derives them from `Z` and must not have them
    /// overwritten by the oracle refresh).
    fn notify_after_membership_change_except(&mut self, id: CycloidId, skip: Option<CycloidId>) {
        let mut affected: BTreeSet<u64> = BTreeSet::new();
        affected.insert(id.cubical);
        let mut c = id.cubical;
        for _ in 0..self.leaf_radius {
            match self.prev_nonempty_cycle(c) {
                Some(p) => {
                    affected.insert(p);
                    c = p;
                }
                None => break,
            }
        }
        let mut c = id.cubical;
        for _ in 0..self.leaf_radius {
            match self.next_nonempty_cycle(c) {
                Some(n) => {
                    affected.insert(n);
                    c = n;
                }
                None => break,
            }
        }
        let mut to_refresh: Vec<CycloidId> = Vec::new();
        for cubical in affected {
            if let Some(members) = self.cycles.get(&cubical) {
                to_refresh.extend(members.iter().map(|&k| CycloidId::new(k, cubical)));
            }
        }
        for node in to_refresh {
            if Some(node) != skip {
                self.refresh_leaf_sets(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(k: u32, a: u64) -> CycloidId {
        CycloidId::new(k, a)
    }

    #[test]
    fn complete_network_has_full_space() {
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        assert_eq!(net.node_count(), 64);
        assert_eq!(net.ids().count(), 64);
    }

    #[test]
    fn with_nodes_builds_requested_count() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 2000, 1);
        assert_eq!(net.node_count(), 2000);
    }

    #[test]
    fn table2_cubical_neighbor_pattern() {
        // Paper Table 2: node (4, 10110110) in a complete 8-dimensional
        // Cycloid has cubical neighbour (3, 1010xxxx).
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
        let nb = net
            .resolve_cubical_neighbor(id(4, 0b1011_0110))
            .expect("complete network must resolve the cubical neighbour");
        assert_eq!(nb.cyclic, 3);
        assert_eq!(nb.cubical >> 4, 0b1010, "high bits must be 1010");
    }

    #[test]
    fn table2_cyclic_neighbors() {
        // First larger and smaller nodes with cyclic index 3 differing
        // from 10110110 only below bit 4: 10110111 and 10110101.
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
        let (smaller, larger) = net.resolve_cyclic_neighbors(id(4, 0b1011_0110));
        assert_eq!(larger, Some(id(3, 0b1011_0111)));
        assert_eq!(smaller, Some(id(3, 0b1011_0101)));
    }

    #[test]
    fn table2_inside_leafs_complete() {
        // Inside leaf set of (4, 10110110) in the complete network: local
        // cycle predecessor (3, 10110110) and successor (5, 10110110).
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
        let (left, right) = net.resolve_inside_leafs(id(4, 0b1011_0110));
        assert_eq!(left, vec![id(3, 0b1011_0110)]);
        assert_eq!(right, vec![id(5, 0b1011_0110)]);
    }

    #[test]
    fn table2_outside_leafs_complete() {
        // Outside leaf set: primaries (cyclic index 7) of cycles 10110101
        // and 10110111.
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
        let (left, right) = net.resolve_outside_leafs(id(4, 0b1011_0110));
        assert_eq!(left, vec![id(7, 0b1011_0101)]);
        assert_eq!(right, vec![id(7, 0b1011_0111)]);
    }

    #[test]
    fn cyclic_index_zero_has_no_routing_neighbors() {
        // §3.1: "The node with a cyclic index k = 0 has no cubical
        // neighbour and cyclic neighbours."
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(5));
        assert_eq!(net.resolve_cubical_neighbor(id(0, 7)), None);
        assert_eq!(net.resolve_cyclic_neighbors(id(0, 7)), (None, None));
    }

    #[test]
    fn lone_node_on_cycle_points_inside_at_itself() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(5), 3);
        net.join_id(id(2, 9));
        net.join_id(id(1, 20));
        let (l, r) = net.resolve_inside_leafs(id(2, 9));
        assert_eq!(l, vec![id(2, 9)]);
        assert_eq!(r, vec![id(2, 9)]);
        // Outside leafs point to the only other cycle's primary both ways.
        let (ol, or) = net.resolve_outside_leafs(id(2, 9));
        assert_eq!(ol, vec![id(1, 20)]);
        assert_eq!(or, vec![id(1, 20)]);
    }

    #[test]
    fn degree_bound_holds_in_complete_network() {
        let net = CycloidNetwork::complete(CycloidConfig::seven_entry(5));
        for node_id in net.ids() {
            let deg = net.node(node_id).unwrap().degree();
            assert!(deg <= 7, "node {node_id} has degree {deg} > 7");
        }
    }

    #[test]
    fn eleven_entry_degree_bound() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::eleven_entry(6), 200, 5);
        for node_id in net.ids() {
            let deg = net.node(node_id).unwrap().degree();
            assert!(deg <= 11, "node {node_id} has degree {deg} > 11");
        }
    }

    #[test]
    fn owner_is_global_argmin() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 100, 7);
        for raw in 0..500u64 {
            let key = net.key_of(raw.wrapping_mul(0x9e37_79b9));
            let owner = net.owner_of_key(key).unwrap();
            let brute = net
                .ids()
                .min_by_key(|&n| KeyDistance::between(key, n, net.dim()))
                .unwrap();
            assert_eq!(owner, brute, "owner mismatch for key {key}");
        }
    }

    #[test]
    fn leave_updates_leaf_sets_of_cycle_peers() {
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        let leaver = id(2, 5);
        assert!(net.leave(leaver));
        assert!(!net.is_live(leaver));
        // Predecessor (1,5) must now point past the leaver to (3,5).
        let pred = net.node(id(1, 5)).unwrap();
        assert_eq!(pred.inside_right, vec![id(3, 5)]);
        // Successor (3,5) must point back to (1,5).
        let succ = net.node(id(3, 5)).unwrap();
        assert_eq!(succ.inside_left, vec![id(1, 5)]);
    }

    #[test]
    fn primary_departure_updates_adjacent_cycles() {
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        let primary = net.primary_of(5).unwrap();
        assert_eq!(primary, id(3, 5));
        net.leave(primary);
        // Every member of cycle 4 must now see (2,5) as the succeeding
        // primary.
        for k in 0..4 {
            let state = net.node(id(k, 4)).unwrap();
            assert_eq!(state.outside_right, vec![id(2, 5)], "member (k={k})");
        }
    }

    #[test]
    fn emptying_a_cycle_reroutes_outside_leafs() {
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        for k in 0..4 {
            net.leave(id(k, 5));
        }
        // Cycle 5 is empty: cycle 4's members must skip to cycle 6.
        let state = net.node(id(0, 4)).unwrap();
        assert_eq!(state.outside_right[0].cubical, 6);
        // And cycle 6's members must skip back to cycle 4.
        let state = net.node(id(0, 6)).unwrap();
        assert_eq!(state.outside_left[0].cubical, 4);
    }

    #[test]
    fn leave_leaves_cubical_neighbors_stale() {
        // Graceful departure must NOT repair other nodes' cubical/cyclic
        // neighbours — that is stabilization's job (§3.3.2) and the very
        // thing the timeout experiments measure.
        let mut net = CycloidNetwork::complete(CycloidConfig::seven_entry(4));
        // Find some node whose cubical neighbour is (1, 2).
        let victim = id(1, 2);
        let holder = net
            .ids()
            .find(|&n| net.node(n).unwrap().cubical_neighbor == Some(victim))
            .expect("someone must point at the victim in a complete network");
        net.leave(victim);
        let still = net.node(holder).unwrap().cubical_neighbor;
        assert_eq!(still, Some(victim), "stale pointer must remain");
        // ... until stabilization repairs it.
        net.stabilize_all();
        let repaired = net.node(holder).unwrap().cubical_neighbor;
        assert_ne!(repaired, Some(victim));
    }

    #[test]
    fn join_random_fills_space_and_stops() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(3), 11);
        let mut rng = dht_core::rng::stream(1, "join");
        for _ in 0..24 {
            assert!(net.join_random(&mut rng).is_some());
        }
        assert_eq!(net.node_count(), 24);
        assert!(net.join_random(&mut rng).is_none(), "space is full");
    }

    #[test]
    fn join_rejects_duplicate_id() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(4), 2);
        assert!(net.join_id(id(1, 3)));
        assert!(!net.join_id(id(1, 3)));
    }

    #[test]
    fn query_load_counting_and_reset() {
        use dht_core::overlay::Overlay;
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(4), 20, 9);
        let some = net.ids().next().unwrap();
        let trace = net.route(some, 0xfeed);
        assert_eq!(
            net.query_loads().iter().sum::<u64>(),
            1 + trace.path_len() as u64,
            "one count for the source plus one per hop"
        );
        net.reset_query_loads();
        assert_eq!(net.query_loads().iter().sum::<u64>(), 0);
    }

    #[test]
    fn trait_roundtrip_basics() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> = Box::new(CycloidNetwork::with_nodes(
            CycloidConfig::seven_entry(6),
            100,
            1,
        ));
        assert_eq!(net.name(), "Cycloid(7)");
        assert_eq!(net.len(), 100);
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        assert_eq!(tokens.len(), 100);
        let t = net.lookup(tokens[0], 12345);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(12345));
    }

    #[test]
    fn eleven_entry_name_and_bound() {
        use dht_core::overlay::Overlay;
        let net = CycloidNetwork::with_nodes(CycloidConfig::eleven_entry(6), 50, 2);
        assert_eq!(net.name(), "Cycloid(11)");
        assert_eq!(Overlay::degree_bound(&net), Some(11));
    }

    #[test]
    fn join_and_leave_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 50, 3);
        let mut rng = dht_core::rng::stream(5, "trait");
        let newcomer = Overlay::join(&mut net, &mut rng).expect("space not full");
        assert_eq!(net.len(), 51);
        assert!(Overlay::leave(&mut net, newcomer));
        assert_eq!(net.len(), 50);
        assert!(!Overlay::leave(&mut net, newcomer), "double leave rejected");
    }

    #[test]
    fn key_counts_cover_all_keys() {
        use dht_core::overlay::key_counts;
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 200, 4);
        let keys = dht_core::workload::key_population(5_000, &mut dht_core::rng::stream(6, "keys"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 5_000);
        assert_eq!(counts.len(), 200);
    }

    #[test]
    fn random_node_is_live() {
        use dht_core::overlay::Overlay;
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 30, 5);
        let mut rng = dht_core::rng::stream(7, "pick");
        for _ in 0..50 {
            let t = net.random_node(&mut rng).unwrap();
            assert!(net.node_tokens().contains(&t));
        }
    }

    #[test]
    fn nonempty_cycle_navigation_wraps() {
        let mut net = CycloidNetwork::new(CycloidConfig::seven_entry(4), 4);
        net.join_id(id(0, 2));
        net.join_id(id(0, 14));
        assert_eq!(net.next_nonempty_cycle(14), Some(2), "wraps forward");
        assert_eq!(net.prev_nonempty_cycle(2), Some(14), "wraps backward");
        assert_eq!(net.next_nonempty_cycle(2), Some(14));
        assert_eq!(net.prev_nonempty_cycle(14), Some(2));
    }
}
