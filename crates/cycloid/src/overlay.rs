//! [`dht_core::Overlay`] adapter: lets the experiment harness drive a
//! Cycloid network through the same interface as the baseline DHTs.

use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

use crate::id::CycloidId;
use crate::network::CycloidNetwork;

impl Overlay for CycloidNetwork {
    fn name(&self) -> String {
        format!("Cycloid({})", 3 + 4 * self.leaf_radius())
    }

    fn len(&self) -> usize {
        self.node_count()
    }

    fn degree_bound(&self) -> Option<usize> {
        Some(3 + 4 * self.leaf_radius())
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        let dim = self.dim();
        self.ids().map(|id| id.linear(dim)).collect()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        if self.node_count() == 0 {
            return None;
        }
        let tokens = self.node_tokens();
        let i = (rng.next_u64() % tokens.len() as u64) as usize;
        Some(tokens[i])
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key).linear(self.dim())
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        let key = self.key_of(raw_key);
        self.owner_of_key(key).map(|id| id.linear(self.dim()))
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        let src = CycloidId::from_linear(src, self.dim());
        self.route(src, raw_key)
    }

    fn join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random(rng).map(|id| id.linear(self.dim()))
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        let id = CycloidId::from_linear(node, self.dim());
        CycloidNetwork::leave(self, id)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        let id = CycloidId::from_linear(node, self.dim());
        self.fail_node(id)
    }

    fn stabilize(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_node(&mut self, node: NodeToken) {
        let id = CycloidId::from_linear(node, self.dim());
        if self.is_live(id) {
            self.refresh_node(id);
        }
    }

    fn query_loads(&self) -> Vec<u64> {
        CycloidNetwork::query_loads(self)
    }

    fn reset_query_loads(&mut self) {
        CycloidNetwork::reset_query_loads(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CycloidConfig;
    use dht_core::overlay::key_counts;
    use dht_core::rng::stream;
    use dht_core::workload;

    #[test]
    fn trait_roundtrip_basics() {
        let mut net: Box<dyn Overlay> = Box::new(CycloidNetwork::with_nodes(
            CycloidConfig::seven_entry(6),
            100,
            1,
        ));
        assert_eq!(net.name(), "Cycloid(7)");
        assert_eq!(net.len(), 100);
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        assert_eq!(tokens.len(), 100);
        let t = net.lookup(tokens[0], 12345);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(12345));
    }

    #[test]
    fn eleven_entry_name_and_bound() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::eleven_entry(6), 50, 2);
        assert_eq!(net.name(), "Cycloid(11)");
        assert_eq!(Overlay::degree_bound(&net), Some(11));
    }

    #[test]
    fn join_and_leave_through_trait() {
        let mut net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 50, 3);
        let mut rng = stream(5, "trait");
        let newcomer = Overlay::join(&mut net, &mut rng).expect("space not full");
        assert_eq!(net.len(), 51);
        assert!(Overlay::leave(&mut net, newcomer));
        assert_eq!(net.len(), 50);
        assert!(!Overlay::leave(&mut net, newcomer), "double leave rejected");
    }

    #[test]
    fn key_counts_cover_all_keys() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(8), 200, 4);
        let keys = workload::key_population(5_000, &mut stream(6, "keys"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 5_000);
        assert_eq!(counts.len(), 200);
    }

    #[test]
    fn random_node_is_live() {
        let net = CycloidNetwork::with_nodes(CycloidConfig::seven_entry(6), 30, 5);
        let mut rng = stream(7, "pick");
        for _ in 0..50 {
            let t = net.random_node(&mut rng).unwrap();
            assert!(net.node_tokens().contains(&t));
        }
    }
}
