//! Cycloid identifiers and the distance metric that defines key ownership.
//!
//! A node or key identifier is a pair `(k, a_{d-1}…a_0)` of a **cyclic
//! index** `k ∈ [0, d)` and a **cubical index** `a ∈ [0, 2^d)` (§3.1).
//! Identifiers linearize to `a*d + k ∈ [0, d*2^d)`; consistent hashing maps
//! a 64-bit hash `h` onto the space so that `cyclic = h mod d` and
//! `cubical = h div d`, exactly as the paper specifies.

use dht_core::hash::{reduce, splitmix64};
use dht_core::ring::{clockwise_dist, ring_dist};

/// The dimension `d` of a Cycloid system, with the derived space sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim(u32);

impl Dim {
    /// Creates a dimension. The paper simulates `d ∈ [3, 8]`; anything in
    /// `[1, 32]` is accepted.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > 32`.
    #[must_use]
    pub fn new(d: u32) -> Self {
        assert!(
            (1..=32).contains(&d),
            "Cycloid dimension must be in [1, 32], got {d}"
        );
        Self(d)
    }

    /// The raw dimension value.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Number of cubical indices, `2^d` (the size of the large cycle).
    #[must_use]
    pub fn cubical_space(self) -> u64 {
        1u64 << self.0
    }

    /// Total identifier space, `d * 2^d`.
    #[must_use]
    pub fn id_space(self) -> u64 {
        u64::from(self.0) << self.0
    }
}

/// A Cycloid identifier: `(cyclic, cubical)`.
///
/// `Default` is `(0, 0)` — only used as the padding value inside
/// fixed-capacity leaf-set slots, never observed as a live identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CycloidId {
    /// Cyclic index `k ∈ [0, d)` — position on the local cycle.
    pub cyclic: u32,
    /// Cubical index `a ∈ [0, 2^d)` — which local cycle.
    pub cubical: u64,
}

impl CycloidId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(cyclic: u32, cubical: u64) -> Self {
        Self { cyclic, cubical }
    }

    /// Splits a linear identifier `a*d + k` back into `(k, a)`.
    #[must_use]
    pub fn from_linear(linear: u64, dim: Dim) -> Self {
        debug_assert!(linear < dim.id_space());
        Self {
            cyclic: (linear % u64::from(dim.get())) as u32,
            cubical: linear / u64::from(dim.get()),
        }
    }

    /// Linearizes to `cubical * d + cyclic`. This is the order in which the
    /// identifier space wraps: all of cycle `a` precedes all of cycle
    /// `a + 1`.
    #[must_use]
    pub fn linear(self, dim: Dim) -> u64 {
        debug_assert!(self.cyclic < dim.get() && self.cubical < dim.cubical_space());
        self.cubical * u64::from(dim.get()) + u64::from(self.cyclic)
    }

    /// Maps a raw 64-bit hash onto the identifier space: the hash is
    /// reduced to `[0, d*2^d)`, then `cyclic = h mod d`,
    /// `cubical = h div d` (§3.1).
    #[must_use]
    pub fn from_hash(raw: u64, dim: Dim) -> Self {
        let h = reduce(splitmix64(raw), dim.id_space());
        Self::from_linear(h, dim)
    }
}

impl std::fmt::Display for CycloidId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{:b})", self.cyclic, self.cubical)
    }
}

/// Most significant differing bit between two cubical indices, or `None` if
/// they are equal. `msdb = i` means bit `i` is the highest bit where the
/// two indices differ.
#[inline]
#[must_use]
pub fn msdb(a: u64, b: u64) -> Option<u32> {
    let x = a ^ b;
    if x == 0 {
        None
    } else {
        Some(63 - x.leading_zeros())
    }
}

/// Length of the common most-significant-bit prefix of two cubical indices
/// within a `d`-bit space: `d` when equal, `d - 1 - msdb` otherwise.
#[inline]
#[must_use]
pub fn prefix_len(a: u64, b: u64, dim: Dim) -> u32 {
    match msdb(a, b) {
        None => dim.get(),
        Some(m) => dim.get() - 1 - m,
    }
}

/// Distance from a node to a key under Cycloid's key-assignment rule
/// (§3.1): the key belongs to the node whose ID is *first* numerically
/// closest in cubical index and *then* numerically closest in cyclic index,
/// with exact ties resolved toward the key's successor.
///
/// Both components are ring distances doubled, plus one if the node sits on
/// the counter-clockwise (predecessor) side — this folds the paper's
/// "the key's successor will be responsible" tie-break directly into the
/// metric, making the minimum unique and the metric strictly unimodal
/// around each ring (which is what guarantees greedy leaf-set routing
/// terminates at the true owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyDistance {
    cubical_v: u64,
    cyclic_v: u64,
}

impl KeyDistance {
    /// Distance from `node` to `key` in dimension `dim`.
    #[must_use]
    pub fn between(key: CycloidId, node: CycloidId, dim: Dim) -> Self {
        let m = dim.cubical_space();
        let d = u64::from(dim.get());
        let cub = ring_dist(key.cubical, node.cubical, m);
        // "Counter-clockwise of the key" == the clockwise walk from key to
        // node is the long way around.
        let cub_ccw = u64::from(cub != 0 && clockwise_dist(key.cubical, node.cubical, m) != cub);
        let cyc = ring_dist(u64::from(key.cyclic), u64::from(node.cyclic), d);
        let cyc_ccw = u64::from(
            cyc != 0 && clockwise_dist(u64::from(key.cyclic), u64::from(node.cyclic), d) != cyc,
        );
        Self {
            cubical_v: 2 * cub + cub_ccw,
            cyclic_v: 2 * cyc + cyc_ccw,
        }
    }

    /// The zero distance (node == key).
    #[must_use]
    pub fn zero() -> Self {
        Self {
            cubical_v: 0,
            cyclic_v: 0,
        }
    }

    /// True if the cubical components match (same-distance cycles).
    #[must_use]
    pub fn same_cycle_distance(self, other: Self) -> bool {
        self.cubical_v == other.cubical_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_space_sizes() {
        let d = Dim::new(8);
        assert_eq!(d.cubical_space(), 256);
        assert_eq!(d.id_space(), 2048);
    }

    #[test]
    fn linear_roundtrip() {
        let dim = Dim::new(5);
        for lin in 0..dim.id_space() {
            let id = CycloidId::from_linear(lin, dim);
            assert!(id.cyclic < 5);
            assert!(id.cubical < 32);
            assert_eq!(id.linear(dim), lin);
        }
    }

    #[test]
    fn from_hash_is_mod_div_split() {
        let dim = Dim::new(8);
        // Whatever the reduced value h is, the split must satisfy the
        // paper's rule: cyclic = h mod d, cubical = h div d.
        for raw in [0u64, 1, 99, u64::MAX] {
            let id = CycloidId::from_hash(raw, dim);
            let h = id.linear(dim);
            assert_eq!(u64::from(id.cyclic), h % 8);
            assert_eq!(id.cubical, h / 8);
        }
    }

    #[test]
    fn msdb_examples() {
        assert_eq!(msdb(0b1011, 0b1011), None);
        assert_eq!(msdb(0b1011, 0b1010), Some(0));
        assert_eq!(msdb(0b1011, 0b0011), Some(3));
        // Paper's Fig. 4 example: (0,0100) routing to (2,1111) has MSDB 3.
        assert_eq!(msdb(0b0100, 0b1111), Some(3));
    }

    #[test]
    fn prefix_len_complements_msdb() {
        let dim = Dim::new(8);
        assert_eq!(prefix_len(0b1011_0110, 0b1011_0110, dim), 8);
        assert_eq!(prefix_len(0b1011_0110, 0b1010_0110, dim), 3);
        assert_eq!(prefix_len(0b1011_0110, 0b0011_0110, dim), 0);
    }

    #[test]
    fn key_distance_prefers_cubical_then_cyclic() {
        // Paper §3.1: "(1,1101) is closer to (2,1101) than (2,1001)".
        let dim = Dim::new(4);
        let key = CycloidId::new(1, 0b1101);
        let close = KeyDistance::between(key, CycloidId::new(2, 0b1101), dim);
        let far = KeyDistance::between(key, CycloidId::new(2, 0b1001), dim);
        assert!(close < far);
    }

    #[test]
    fn key_distance_successor_tiebreak() {
        // Two nodes equidistant in cubical index: the clockwise (successor
        // side) one wins.
        let dim = Dim::new(4);
        let key = CycloidId::new(0, 8);
        let succ_side = KeyDistance::between(key, CycloidId::new(0, 9), dim);
        let pred_side = KeyDistance::between(key, CycloidId::new(0, 7), dim);
        assert!(succ_side < pred_side);
    }

    #[test]
    fn key_distance_zero_iff_same_id() {
        let dim = Dim::new(6);
        let key = CycloidId::new(3, 17);
        assert_eq!(KeyDistance::between(key, key, dim), KeyDistance::zero());
        assert!(KeyDistance::between(key, CycloidId::new(4, 17), dim) > KeyDistance::zero());
    }

    #[test]
    fn key_distance_unique_minimum() {
        // No two distinct nodes are equidistant from any key: the metric
        // must produce a unique owner.
        let dim = Dim::new(3);
        for key_lin in 0..dim.id_space() {
            let key = CycloidId::from_linear(key_lin, dim);
            let mut seen = std::collections::HashSet::new();
            for node_lin in 0..dim.id_space() {
                let node = CycloidId::from_linear(node_lin, dim);
                let d = KeyDistance::between(key, node, dim);
                assert!(
                    seen.insert(d),
                    "distance collision for key {key} at node {node}"
                );
            }
        }
    }

    #[test]
    fn cubical_metric_unimodal_around_ring() {
        // Walking the cubical ring away from the key in either direction
        // must strictly increase the cubical component.
        let dim = Dim::new(5);
        let key = CycloidId::new(0, 13);
        let m = dim.cubical_space();
        let v = |c: u64| KeyDistance::between(key, CycloidId::new(0, c % m), dim).cubical_v;
        for step in 0..(m / 2 - 1) {
            assert!(v(13 + step) < v(13 + step + 1), "clockwise walk");
            assert!(
                v(13 + m - step) < v(13 + m - step - 1),
                "counter-clockwise walk"
            );
        }
    }

    #[test]
    fn display_formats_binary() {
        assert_eq!(CycloidId::new(4, 0b1011_0110).to_string(), "(4,10110110)");
    }
}
