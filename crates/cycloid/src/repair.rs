//! Self-stabilizing repair of corrupted routing state.
//!
//! The corrupt half maps the shared strategy catalogue
//! ([`CorruptionStrategy`]) onto Cycloid's seven- or eleven-entry state:
//! the three routing-table pointers (cubical, two cyclics) and the four
//! leaf-set slots. The repair half is one node's stabilizer run as an
//! *audited* recompute: rebuild the node's entire state from live
//! membership ([`CycloidNetwork::refresh_node`]) and report how many
//! entries actually changed. On a healthy node that count is zero and
//! nothing else moves — repair draws from no RNG stream — which is what
//! lets the churn engine substitute repair for stabilization without
//! perturbing a single golden byte.

use dht_core::corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};

use crate::id::CycloidId;
use crate::network::CycloidNetwork;
use crate::state::{LeafSlot, NodeState};

/// Salts separating the deterministic draws of distinct state entries.
const SALT_CUBICAL: u64 = 1;
const SALT_CYCLIC_LARGER: u64 = 2;
const SALT_CYCLIC_SMALLER: u64 = 3;
const SALT_INSIDE_LEFT: u64 = 0x10;
const SALT_INSIDE_RIGHT: u64 = 0x20;
const SALT_OUTSIDE_LEFT: u64 = 0x30;
const SALT_OUTSIDE_RIGHT: u64 = 0x40;
/// Salt for the eclipse attacker draw (network-wide, not per-victim).
const SALT_ATTACKER: u64 = 0xa77a;

/// Entries on which two states differ: the three pointers plus every
/// position of the four leaf slots (a slot that changed length counts
/// the longer side).
fn diff_count(a: &NodeState, b: &NodeState) -> u64 {
    let mut n = 0u64;
    n += u64::from(a.cubical_neighbor != b.cubical_neighbor);
    n += u64::from(a.cyclic_larger != b.cyclic_larger);
    n += u64::from(a.cyclic_smaller != b.cyclic_smaller);
    for (x, y) in [
        (&a.inside_left, &b.inside_left),
        (&a.inside_right, &b.inside_right),
        (&a.outside_left, &b.outside_left),
        (&a.outside_right, &b.outside_right),
    ] {
        n += slot_diff(x, y);
    }
    n
}

fn slot_diff(a: &LeafSlot, b: &LeafSlot) -> u64 {
    let common = a.len().min(b.len());
    let mut n = (a.len().max(b.len()) - common) as u64;
    for i in 0..common {
        n += u64::from(a.as_slice()[i] != b.as_slice()[i]);
    }
    n
}

impl CycloidNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]) to
    /// this network's routing state. Membership, the cycle indexes, and
    /// query loads are untouched — corruption damages what nodes
    /// *believe*, not who exists.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let dim = self.dim();
        let live: Vec<u64> = self.ids().map(|id| id.linear(dim)).collect();
        let victims = plan.victims(&live);
        let attacker = plan
            .pick(SALT_ATTACKER, 0, &live)
            .map(|t| CycloidId::from_linear(t, dim));
        let mut report = CorruptionReport::default();
        for &tok in &victims {
            let id = CycloidId::from_linear(tok, dim);
            let before = self
                .node(id)
                .expect("victim chosen from live tokens")
                .clone();
            let mut next = before.clone();
            match plan.strategy {
                CorruptionStrategy::RandomizeLinks => {
                    let rand_id = |salt: u64| {
                        plan.pick(tok, salt, &live)
                            .map(|t| CycloidId::from_linear(t, dim))
                    };
                    next.cubical_neighbor = rand_id(SALT_CUBICAL);
                    next.cyclic_larger = rand_id(SALT_CYCLIC_LARGER);
                    next.cyclic_smaller = rand_id(SALT_CYCLIC_SMALLER);
                    for (slot, base) in slots(&mut next) {
                        for (i, entry) in slot.as_mut_slice().iter_mut().enumerate() {
                            if let Some(r) = rand_id(base + i as u64) {
                                *entry = r;
                            }
                        }
                    }
                }
                CorruptionStrategy::GhostLinks => {
                    let space = dim.id_space();
                    let is_live = |v: u64| live.binary_search(&v).is_ok();
                    let ghost_id = |salt: u64| {
                        plan.ghost(tok, salt, space, is_live)
                            .map(|t| CycloidId::from_linear(t, dim))
                    };
                    next.cubical_neighbor = ghost_id(SALT_CUBICAL).or(next.cubical_neighbor);
                    next.cyclic_larger = ghost_id(SALT_CYCLIC_LARGER).or(next.cyclic_larger);
                    next.cyclic_smaller = ghost_id(SALT_CYCLIC_SMALLER).or(next.cyclic_smaller);
                    for (slot, base) in slots(&mut next) {
                        for (i, entry) in slot.as_mut_slice().iter_mut().enumerate() {
                            if let Some(g) = ghost_id(base + i as u64) {
                                *entry = g;
                            }
                        }
                    }
                }
                CorruptionStrategy::CrossWireLeafSets => {
                    std::mem::swap(&mut next.inside_left, &mut next.inside_right);
                    std::mem::swap(&mut next.outside_left, &mut next.outside_right);
                    std::mem::swap(&mut next.cyclic_larger, &mut next.cyclic_smaller);
                }
                CorruptionStrategy::ZeroLinks => {
                    next.cubical_neighbor = None;
                    next.cyclic_larger = None;
                    next.cyclic_smaller = None;
                    next.inside_left.clear();
                    next.inside_right.clear();
                    next.outside_left.clear();
                    next.outside_right.clear();
                }
                CorruptionStrategy::EclipseRegion => {
                    if let Some(attacker) = attacker {
                        next.cubical_neighbor = Some(attacker);
                        next.cyclic_larger = Some(attacker);
                        next.cyclic_smaller = Some(attacker);
                        for (slot, _) in slots(&mut next) {
                            for entry in slot.as_mut_slice().iter_mut() {
                                *entry = attacker;
                            }
                        }
                    }
                }
            }
            let mutated = diff_count(&before, &next);
            *self.node_mut(id).expect("victim is live") = next;
            report.note(mutated);
        }
        report
    }

    /// One node's repair step: recompute its full routing state from
    /// live membership and return the number of entries rewritten. An
    /// exact no-op (returning 0) on a healthy node; ignores dead tokens.
    pub fn repair_one(&mut self, id: CycloidId) -> u64 {
        if !self.is_live(id) {
            return 0;
        }
        let before = self.node(id).expect("live node has state").clone();
        self.refresh_node(id);
        diff_count(&before, self.node(id).expect("still live"))
    }
}

/// The four leaf slots of a state with their per-slot salt bases.
fn slots(state: &mut NodeState) -> [(&mut LeafSlot, u64); 4] {
    [
        (&mut state.inside_left, SALT_INSIDE_LEFT),
        (&mut state.inside_right, SALT_INSIDE_RIGHT),
        (&mut state.outside_left, SALT_OUTSIDE_LEFT),
        (&mut state.outside_right, SALT_OUTSIDE_RIGHT),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CycloidConfig;
    use dht_core::audit::{AuditScope, StateAudit};

    fn net(n: usize) -> CycloidNetwork {
        CycloidNetwork::with_nodes(CycloidConfig::seven_entry(5), n, 42)
    }

    fn repair_sweep(net: &mut CycloidNetwork) -> u64 {
        let ids: Vec<CycloidId> = net.ids().collect();
        ids.into_iter().map(|id| net.repair_one(id)).sum()
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_network() {
        let mut n = net(80);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(80);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 40, "{strategy:?}");
            assert!(report.corrupted_nodes > 0, "{strategy:?} did no damage");
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            let fixed = repair_sweep(&mut n);
            assert!(fixed >= report.mutated_entries / 2, "{strategy:?}");
            assert!(
                n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} not repaired: {}",
                n.audit(AuditScope::Full)
            );
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let plan = CorruptionPlan::new(CorruptionStrategy::RandomizeLinks, 0.3, 77);
        let run = || {
            let mut n = net(64);
            let rep = n.corrupt(&plan);
            let states: Vec<String> = n
                .ids()
                .map(|id| format!("{:?}", n.node(id).unwrap()))
                .collect();
            (rep, states)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corruption_leaves_membership_alone() {
        let mut n = net(64);
        let before: Vec<CycloidId> = n.ids().collect();
        n.corrupt(&CorruptionPlan::new(
            CorruptionStrategy::EclipseRegion,
            1.0,
            3,
        ));
        let after: Vec<CycloidId> = n.ids().collect();
        assert_eq!(before, after);
    }
}
