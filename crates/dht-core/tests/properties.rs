//! Property-based tests of the substrate invariants everything else
//! builds on: hashing, ring arithmetic, and the statistics helpers.

use dht_core::hash::{reduce, splitmix64, IdAllocator};
use dht_core::ring::{clockwise_dist, in_interval_co, in_interval_oc, in_interval_oo, ring_dist};
use dht_core::stats::{percentile_sorted, Summary};
use proptest::prelude::*;

fn ring_args() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    // modulus in [2, 2^32], points reduced into it
    (2u64..=1u64 << 32)
        .prop_flat_map(|m| (Just(m), 0..m, 0..m, 0..m).prop_map(|(m, a, b, c)| (m, a, b, c)))
}

proptest! {
    #[test]
    fn splitmix_is_injective_on_samples(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(splitmix64(a) == splitmix64(b), a == b);
    }

    #[test]
    fn reduce_in_range(h in any::<u64>(), space in 1u64..=1 << 48) {
        prop_assert!(reduce(h, space) < space);
    }

    #[test]
    fn reduce_monotone(h1 in any::<u64>(), h2 in any::<u64>(), space in 1u64..=1 << 48) {
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        prop_assert!(reduce(lo, space) <= reduce(hi, space));
    }

    #[test]
    fn clockwise_distances_sum_to_modulus((m, a, b, _) in ring_args()) {
        let ab = clockwise_dist(a, b, m);
        let ba = clockwise_dist(b, a, m);
        if a == b {
            prop_assert_eq!(ab + ba, 0);
        } else {
            prop_assert_eq!(ab + ba, m);
        }
    }

    #[test]
    fn ring_dist_triangle_inequality((m, a, b, c) in ring_args()) {
        prop_assert!(ring_dist(a, c, m) <= ring_dist(a, b, m) + ring_dist(b, c, m));
    }

    #[test]
    fn oc_and_oo_agree_except_endpoint((m, x, from, to) in ring_args()) {
        let oc = in_interval_oc(x, from, to, m);
        let oo = in_interval_oo(x, from, to, m);
        if x == to {
            prop_assert!(!oo);
        } else {
            prop_assert_eq!(oc, oo);
        }
    }

    #[test]
    fn every_point_is_in_exactly_one_side((m, x, from, to) in ring_args()) {
        // For from != to, the ring splits into (from, to] and (to, from].
        prop_assume!(from != to);
        let first = in_interval_oc(x, from, to, m);
        let second = in_interval_oc(x, to, from, m);
        if x == from {
            prop_assert!(!first && second);
        } else if x == to {
            prop_assert!(first && !second);
        } else {
            prop_assert!(first ^ second, "point must be on exactly one side");
        }
    }

    #[test]
    fn co_interval_shifts_oc_by_one((m, x, from, to) in ring_args()) {
        // [from, to) == {from} ∪ (from, to) for from != to.
        prop_assume!(from != to);
        let co = in_interval_co(x, from, to, m);
        if x == from {
            prop_assert!(co);
        } else {
            prop_assert_eq!(co, in_interval_oo(x, from, to, m));
        }
    }

    #[test]
    fn summary_order_statistics_are_ordered(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let s = Summary::of_counts(&values);
        prop_assert!(s.min <= s.p01);
        prop_assert!(s.p01 <= s.p50);
        prop_assert!(s.p50 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn percentile_is_a_sample_value(values in prop::collection::vec(0u64..1_000, 1..100), q in 0.0f64..=1.0) {
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = percentile_sorted(&sorted, q);
        prop_assert!(sorted.contains(&p));
    }

    #[test]
    fn id_allocator_streams_are_collision_free(seed in any::<u64>()) {
        let mut alloc = IdAllocator::new(seed);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..512 {
            prop_assert!(seen.insert(alloc.next_raw()));
        }
    }
}
