//! The uniform simulation interface every overlay implements.
//!
//! The paper evaluates four structured overlays (Cycloid, Viceroy, Koorde,
//! Chord) under identical workloads. [`Overlay`] is the common surface the
//! experiment harness drives: membership changes, key lookups with full
//! traces, stabilization, and the bookkeeping the figures need (key
//! ownership, per-node query loads).

use std::any::Any;

use rand::RngCore;

use crate::audit::{AuditReport, AuditScope};
use crate::corrupt::{CorruptionPlan, CorruptionReport};
use crate::lookup::LookupTrace;
use crate::net::NetConditions;
use crate::obs::{PhaseAccountant, SinkHandle};
use crate::sim::{LookupCursor, WalkEffects};

/// Opaque, overlay-assigned identity of a live node.
///
/// Each overlay maps its native identifier (Cycloid's `(k, a)` pair,
/// Chord/Koorde's ring point, Viceroy's fixed-point real) into a unique
/// `u64`. Tokens are only meaningful to the overlay that issued them.
pub type NodeToken = u64;

/// A structured P2P overlay under simulation.
///
/// Implementations are *simulators in the paper's sense*: the whole
/// membership lives in one process, lookups are iterative walks over each
/// node's private routing state, and a "timeout" is an attempt to use a
/// routing-table entry pointing at a departed node.
pub trait Overlay {
    /// Human-readable name used in reports ("Cycloid(7)", "Koorde", ...).
    fn name(&self) -> String;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// `true` iff no node is live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on routing-state entries per node (Table 1's
    /// "routing table size" column). `None` for degrees that grow with the
    /// network, like Chord's `O(log n)`.
    fn degree_bound(&self) -> Option<usize>;

    /// Tokens of all live nodes, in an overlay-chosen deterministic order.
    fn node_tokens(&self) -> Vec<NodeToken>;

    /// Token of a uniformly random live node.
    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken>;

    /// Hashes an application key into this overlay's identifier space and
    /// returns the identifier (useful for deterministic workloads).
    fn key_id(&self, raw_key: u64) -> u64;

    /// The live node responsible for `raw_key`, computed from global
    /// knowledge (the ground truth lookups are checked against).
    fn owner_of(&self, raw_key: u64) -> Option<NodeToken>;

    /// Performs one lookup for `raw_key` starting at node `src`, walking
    /// the overlay hop by hop using only per-node routing state. Updates
    /// per-node query-load counters.
    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace;

    /// Performs a batch of independent lookups, returning the traces in
    /// request order. `jobs` is the worker-thread cap; implementations
    /// must produce results bit-identical to `jobs == 1` (the substrate
    /// overlays shard the batch across scoped threads and merge effects
    /// in request order — see `dht_core::sim::ParallelExecutor`). The
    /// default runs the batch sequentially.
    fn lookup_batch(&mut self, reqs: &[(NodeToken, u64)], jobs: usize) -> Vec<LookupTrace> {
        let _ = jobs;
        reqs.iter()
            .map(|&(src, raw_key)| self.lookup(src, raw_key))
            .collect()
    }

    /// A new node joins, bootstrapped per the overlay's join protocol.
    /// Returns its token, or `None` if the identifier space is full.
    fn join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken>;

    /// Graceful departure of `node`: the node notifies exactly the peers
    /// its protocol says it must (leaf sets for Cycloid, successors and
    /// predecessor for Koorde/Chord, all related nodes for Viceroy), then
    /// leaves. Pointers the protocol does *not* repair go stale until
    /// [`Overlay::stabilize`]. Returns `false` if the token is unknown.
    fn leave(&mut self, node: NodeToken) -> bool;

    /// Ungraceful failure of `node`: it vanishes **without notifying
    /// anyone**, so even the pointers graceful departure would repair
    /// (leaf sets, ring successors) go stale until stabilization. The
    /// paper defers this case ("nodes must notify others before leaving",
    /// §3.4) and flags it as the constant-degree DHTs' weakness (§5);
    /// implementations override this to model it, the default falls back
    /// to a graceful leave.
    fn fail(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    /// One full stabilization round: every node refreshes the routing
    /// entries its stabilizer is responsible for (§3.3.2: "updating cubical
    /// and cyclic neighbors are the responsibility of system stabilization,
    /// as in Chord").
    fn stabilize(&mut self);

    /// One node's stabilization routine (§4.4 runs these "at intervals
    /// that are uniformly distributed in the 30 s interval"). The default
    /// ignores unknown tokens.
    fn stabilize_node(&mut self, node: NodeToken) {
        let _ = node;
        self.stabilize();
    }

    /// Audits every node's routing state against the overlay's
    /// paper-specified invariants (see [`crate::audit`]). The default
    /// reports nothing checked; overlays with a
    /// [`crate::audit::StateAudit`] impl override this to run it.
    fn audit_state(&self, scope: AuditScope) -> AuditReport {
        AuditReport::new(self.name(), scope)
    }

    /// Seeded, deterministic corruption of routing state — the adversary
    /// half of the self-stabilization contract (see [`crate::corrupt`]).
    /// The returned report says how much damage was actually done. The
    /// default corrupts nothing.
    fn corrupt_state(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let _ = plan;
        CorruptionReport::default()
    }

    /// One node's repair routine: recomputes the routing entries its
    /// stabilizer owns from live membership and returns how many entries
    /// were rewritten. Repair subsumes [`Overlay::stabilize_node`] (the
    /// churn engine fires it *instead of* the stabilizer when repair is
    /// enabled) and must be an exact no-op on healthy state. The default
    /// delegates to the stabilizer and reports zero rewrites.
    fn repair_node(&mut self, node: NodeToken) -> u64 {
        self.stabilize_node(node);
        0
    }

    /// Per-node query loads: number of lookup messages each live node has
    /// received (as source, intermediate, or terminal) since the last
    /// [`Overlay::reset_query_loads`]. Order matches
    /// [`Overlay::node_tokens`].
    fn query_loads(&self) -> Vec<u64>;

    /// Zeroes all query-load counters.
    fn reset_query_loads(&mut self);

    /// Total heap bytes of routing/membership state this overlay holds:
    /// the node store plus per-state heap payloads plus auxiliary
    /// indexes. The default reports 0 for overlays that do not track
    /// memory; the substrate's blanket impl computes it from the
    /// [`crate::sim::Membership`] store and the
    /// `SimOverlay::state_heap_bytes` / `SimOverlay::aux_bytes` hooks.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Average routing/membership bytes per live node — the scale
    /// sweep's memory-compactness measure. Zero when empty or when the
    /// overlay does not track memory.
    fn bytes_per_node(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            0.0
        } else {
            self.state_bytes() as f64 / n as f64
        }
    }

    /// The network conditions (fault plan + retry policy) lookups run
    /// under. The default is an ideal network; overlays on the shared
    /// substrate store these in their [`crate::sim::Membership`].
    fn net_conditions(&self) -> NetConditions {
        NetConditions::ideal()
    }

    /// Replaces the network conditions every subsequent lookup runs under.
    /// The default (for overlays not on the shared substrate) ignores the
    /// request, matching the ideal network [`Overlay::net_conditions`]
    /// reports.
    fn set_net_conditions(&mut self, net: NetConditions) {
        let _ = net;
    }

    /// The trace sink handle lookups emit structured events through
    /// (see [`crate::obs`]). The default reports tracing disabled;
    /// overlays on the shared substrate store the handle in their
    /// [`crate::sim::Membership`].
    fn trace_sink(&self) -> SinkHandle {
        SinkHandle::disabled()
    }

    /// Installs a trace sink handle. The default (for overlays not on
    /// the shared substrate) ignores the request, matching the disabled
    /// handle [`Overlay::trace_sink`] reports.
    fn set_trace_sink(&mut self, sink: SinkHandle) {
        let _ = sink;
    }

    /// The per-phase cost accountant every lookup, stabilization pass,
    /// repair, and membership change bills into (see
    /// [`crate::obs::phase`]). The default reports accounting disabled;
    /// overlays on the shared substrate store the handle in their
    /// [`crate::sim::Membership`]. Handles are cheap clones
    /// (`Option<Arc<_>>`), so this returns by value.
    fn phase_accountant(&self) -> PhaseAccountant {
        PhaseAccountant::disabled()
    }

    /// Installs a phase accountant handle. The default (for overlays
    /// not on the shared substrate) ignores the request, matching the
    /// disabled handle [`Overlay::phase_accountant`] reports.
    fn set_phase_accountant(&mut self, acct: PhaseAccountant) {
        let _ = acct;
    }

    /// Messages one maintenance pass over `node`'s routing links costs
    /// — the hook behind the Stabilize/Repair/Join/Leave message
    /// conventions (one probe per routing entry; see
    /// [`crate::obs::phase`]). Overlays report their actual per-node
    /// link count; the default assumes the constant degree bound, or 1
    /// when the degree grows with the network.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        let _ = node;
        self.degree_bound().map_or(1, |d| d.max(1) as u64)
    }

    /// `true` iff `node` is live. The default scans
    /// [`Overlay::node_tokens`]; substrate overlays answer from the
    /// membership arena in `O(log n)`.
    fn contains(&self, node: NodeToken) -> bool {
        self.node_tokens().contains(&node)
    }

    /// The concrete overlay as [`Any`], so a suspended
    /// [`LookupCursor`] handed out through `dyn Overlay` can recover
    /// the overlay type it was created from when stepped.
    fn as_any(&self) -> &dyn Any;

    /// Starts a lookup for `raw_key` at the live node `src` and
    /// returns it *suspended* instead of walking it to completion —
    /// the entry point the continuous-time churn engine uses to
    /// interleave in-flight lookups with membership and stabilization
    /// events on the virtual clock. Consumes one lookup index (fault
    /// draws) exactly as [`Overlay::lookup`] would, so an immediately
    /// stepped-to-completion cursor reproduces `lookup` byte for byte.
    ///
    /// Step the cursor while its reply delays elapse, then pass
    /// [`LookupCursor::finish`]'s effects to
    /// [`Overlay::apply_walk_effects`].
    fn lookup_begin(&mut self, src: NodeToken, raw_key: u64) -> Box<dyn LookupCursor>;

    /// Replays a finished cursor's deferred effects (query loads,
    /// repair-on-use, exhaustion accounting, trace events) against the
    /// overlay. Application order across lookups defines the canonical
    /// event stream.
    fn apply_walk_effects(&mut self, fx: WalkEffects);
}

/// Forwarding impl so factory-built `Box<dyn Overlay>` values satisfy
/// `O: Overlay` bounds (e.g. the kvstore). Deliberately concrete: a
/// generic `impl<T: Overlay + ?Sized> Overlay for Box<T>` would overlap
/// with the blanket [`crate::sim::SimOverlay`] impl.
impl Overlay for Box<dyn Overlay> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn degree_bound(&self) -> Option<usize> {
        (**self).degree_bound()
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        (**self).node_tokens()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        (**self).random_node(rng)
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        (**self).key_id(raw_key)
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        (**self).owner_of(raw_key)
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        (**self).lookup(src, raw_key)
    }

    fn lookup_batch(&mut self, reqs: &[(NodeToken, u64)], jobs: usize) -> Vec<LookupTrace> {
        (**self).lookup_batch(reqs, jobs)
    }

    fn join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        (**self).join(rng)
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        (**self).leave(node)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        (**self).fail(node)
    }

    fn stabilize(&mut self) {
        (**self).stabilize();
    }

    fn stabilize_node(&mut self, node: NodeToken) {
        (**self).stabilize_node(node);
    }

    fn audit_state(&self, scope: AuditScope) -> AuditReport {
        (**self).audit_state(scope)
    }

    fn corrupt_state(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        (**self).corrupt_state(plan)
    }

    fn repair_node(&mut self, node: NodeToken) -> u64 {
        (**self).repair_node(node)
    }

    fn query_loads(&self) -> Vec<u64> {
        (**self).query_loads()
    }

    fn reset_query_loads(&mut self) {
        (**self).reset_query_loads();
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }

    fn bytes_per_node(&self) -> f64 {
        (**self).bytes_per_node()
    }

    fn net_conditions(&self) -> NetConditions {
        (**self).net_conditions()
    }

    fn set_net_conditions(&mut self, net: NetConditions) {
        (**self).set_net_conditions(net);
    }

    fn trace_sink(&self) -> SinkHandle {
        (**self).trace_sink()
    }

    fn set_trace_sink(&mut self, sink: SinkHandle) {
        (**self).set_trace_sink(sink);
    }

    fn phase_accountant(&self) -> PhaseAccountant {
        (**self).phase_accountant()
    }

    fn set_phase_accountant(&mut self, acct: PhaseAccountant) {
        (**self).set_phase_accountant(acct);
    }

    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        (**self).maintenance_msgs(node)
    }

    fn contains(&self, node: NodeToken) -> bool {
        (**self).contains(node)
    }

    fn as_any(&self) -> &dyn Any {
        // Forward to the inner overlay: a cursor created by the boxed
        // overlay must downcast to the *concrete* type, not the box.
        (**self).as_any()
    }

    fn lookup_begin(&mut self, src: NodeToken, raw_key: u64) -> Box<dyn LookupCursor> {
        (**self).lookup_begin(src, raw_key)
    }

    fn apply_walk_effects(&mut self, fx: WalkEffects) {
        (**self).apply_walk_effects(fx);
    }
}

/// Distributes `raw_keys` over the overlay's live nodes by ownership and
/// returns the per-node key counts in `node_tokens()` order — the data
/// behind Figs. 8 and 9.
///
/// An owner token missing from [`Overlay::node_tokens`] (an overlay
/// whose ownership rule momentarily disagrees with its membership, e.g.
/// mid-churn) is skipped rather than attributed to the wrong node.
pub fn key_counts<O: Overlay + ?Sized>(overlay: &O, raw_keys: &[u64]) -> Vec<u64> {
    let tokens = overlay.node_tokens();
    let index: std::collections::HashMap<NodeToken, usize> =
        tokens.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut counts = vec![0u64; tokens.len()];
    for &k in raw_keys {
        if let Some(&i) = overlay.owner_of(k).and_then(|owner| index.get(&owner)) {
            counts[i] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::LookupOutcome;
    use crate::sim::{Membership, SimOverlay, StepDecision};

    /// A degenerate single-node overlay (token 7) used to exercise the
    /// trait's default methods and `key_counts`. When `ghost_owner` is
    /// set, `owner_of` names a token that is not a live node — the
    /// inconsistency `key_counts` must tolerate.
    struct OneNode {
        members: Membership<()>,
        ghost_owner: bool,
    }

    impl OneNode {
        fn new(ghost_owner: bool) -> Self {
            let mut members = Membership::new(0);
            members.insert(7, ());
            Self {
                members,
                ghost_owner,
            }
        }
    }

    impl SimOverlay for OneNode {
        type State = ();
        type Walk = ();

        fn membership(&self) -> &Membership<()> {
            &self.members
        }
        fn membership_mut(&mut self) -> &mut Membership<()> {
            &mut self.members
        }
        fn label(&self) -> String {
            "OneNode".into()
        }
        fn degree_limit(&self) -> Option<usize> {
            Some(0)
        }
        fn map_key(&self, raw_key: u64) -> u64 {
            raw_key
        }
        fn owner_token(&self, _raw_key: u64) -> Option<NodeToken> {
            if self.ghost_owner {
                Some(999)
            } else {
                Some(7)
            }
        }
        fn hop_budget(&self) -> usize {
            4
        }
        fn begin_walk(&self, _src: NodeToken, _raw_key: u64) {}
        fn walk_owner(&self, _walk: &()) -> Option<NodeToken> {
            Some(7)
        }
        fn next_hop(&self, _cur: NodeToken, _walk: &mut ()) -> StepDecision {
            StepDecision::Terminate
        }
        fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
            None
        }
        fn node_leave(&mut self, _node: NodeToken) -> bool {
            false
        }
        fn stabilize_network(&mut self) {}
    }

    #[test]
    fn default_is_empty_uses_len() {
        let o = OneNode::new(false);
        assert!(!o.is_empty());
    }

    #[test]
    fn key_counts_assigns_everything_to_owner() {
        let o = OneNode::new(false);
        let counts = key_counts(&o, &[1, 2, 3, 4, 5]);
        assert_eq!(counts, vec![5]);
    }

    #[test]
    fn key_counts_skips_owner_outside_membership() {
        // Regression: an owner token absent from `node_tokens()` used to
        // panic on the index lookup; it must be skipped instead.
        let o = OneNode::new(true);
        let counts = key_counts(&o, &[1, 2, 3, 4, 5]);
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn lookup_counts_queries_and_reset_clears() {
        let mut o = OneNode::new(false);
        let t = o.lookup(7, 99);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(o.query_loads(), vec![1]);
        o.reset_query_loads();
        assert_eq!(o.query_loads(), vec![0]);
    }
}
