//! The virtual clock: a deterministic discrete-event kernel.
//!
//! Every temporal claim of the paper's §4.3–§4.4 (stale-entry timeout
//! cost, lookup latency under churn, time to recover from a membership
//! shock) is reproduced by interleaving *timestamped events* — lookup
//! message round trips, retry/backoff waits, per-node stabilization
//! timers, join/leave arrivals — on one seeded, time-ordered queue:
//!
//! * [`SimTime`] — simulated microseconds, the single time unit shared
//!   by the event queue, the fault layer's delay/backoff draws
//!   ([`crate::net`]), and every latency figure.
//! * [`EventQueue`] — a min-heap of `(time, event)` pairs with strict
//!   FIFO tie-breaking: events scheduled at the same timestamp dequeue
//!   in scheduling order, so simulations are deterministic down to the
//!   byte regardless of heap internals.
//! * [`exp_delay`] — Poisson inter-arrival sampling for workload and
//!   churn streams.
//!
//! # Determinism contract
//!
//! A simulation driven by this kernel is a pure function of its seeds:
//!
//! 1. the queue itself introduces no randomness and no dependence on
//!    wall clock, thread timing, or allocation order;
//! 2. equal-timestamp ties always resolve FIFO (monotone sequence
//!    numbers), so "simultaneous" events have one canonical order —
//!    the order the simulation scheduled them in;
//! 3. all stochastic inputs (arrival gaps, fault draws) come from
//!    seeded streams ([`crate::rng`], [`crate::net::FaultPlan`]) that
//!    are consumed in event order.
//!
//! Hence the same seed reproduces the identical event sequence across
//! runs, machines, and worker counts (parallelism in this workspace
//! only ever shards *read-only* walks; see [`crate::sim`]).
//!
//! # Round-mode equivalence
//!
//! The lockstep "stabilization rounds" engine the evaluation started
//! with is the degenerate configuration of this kernel: zero message
//! delays collapse every lookup into a single instant, and the hashed
//! per-second stabilization buckets fire exactly as the round engine's
//! bucket sweep did. `dht-sim`'s churn engine keeps that configuration
//! byte-compatible (see its `TimeModel`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::RngCore;

/// Simulated time in microseconds.
pub type SimTime = u64;

/// One microsecond-resolution second.
pub const SECOND: SimTime = 1_000_000;

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; sequence number breaks ties FIFO.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue. Events with equal timestamps dequeue in
/// insertion order, so simulations are deterministic.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is
    /// a logic error.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next pending event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Samples an exponentially distributed inter-arrival delay (in simulated
/// microseconds) for a Poisson process with `rate` events per second.
#[must_use]
pub fn exp_delay(rate_per_sec: f64, rng: &mut dyn RngCore) -> SimTime {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    // Inverse-CDF sampling; 1 - u avoids ln(0).
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let secs = -(1.0 - u).ln() / rate_per_sec;
    (secs * SECOND as f64).round() as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        assert_eq!(q.pop(), Some((5, "first")));
        assert_eq!(q.pop(), Some((5, "second")));
    }

    #[test]
    fn interleaved_scheduling_keeps_fifo_ties() {
        // Ties stay FIFO even when other timestamps are pushed between
        // the tied events — the sequence number is global, not per-time.
        let mut q = EventQueue::new();
        q.schedule(7, "x");
        q.schedule(3, "early");
        q.schedule(7, "y");
        q.schedule(9, "late");
        q.schedule(7, "z");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "x", "y", "z", "late"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.pop(), Some((150, ())));
    }

    #[test]
    fn exp_delay_mean_is_close_to_inverse_rate() {
        let mut rng = stream(1, "exp");
        let rate = 4.0; // four per second -> mean 0.25 s
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp_delay(rate, &mut rng)).sum();
        let mean_secs = total as f64 / n as f64 / SECOND as f64;
        assert!(
            (mean_secs - 0.25).abs() < 0.01,
            "empirical mean {mean_secs} should be ~0.25"
        );
    }

    #[test]
    fn exp_delay_is_deterministic_per_stream() {
        let a: Vec<SimTime> = {
            let mut r = stream(2, "exp");
            (0..10).map(|_| exp_delay(1.0, &mut r)).collect()
        };
        let b: Vec<SimTime> = {
            let mut r = stream(2, "exp");
            (0..10).map(|_| exp_delay(1.0, &mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
