//! Summary statistics in exactly the form the paper reports them.
//!
//! Every distributional figure (key counts, query loads, timeouts) plots
//! "the mean, the 1st and 99th percentiles" (§4.2–§4.4), so [`Summary`]
//! carries precisely those plus min/max/std for the extended reports.

/// Mean, standard deviation, and order statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 1st percentile (paper's lower whisker).
    pub p01: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile (paper's upper whisker).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample of `f64` values. Returns an all-zero summary for
    /// an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p01: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p01: percentile_sorted(&sorted, 0.01),
            p50: percentile_sorted(&sorted, 0.50),
            p99: percentile_sorted(&sorted, 0.99),
            max: sorted[n - 1],
        }
    }

    /// Summarizes a sample of unsigned counters (key counts, query loads,
    /// timeout counts).
    #[must_use]
    pub fn of_counts(values: &[u64]) -> Self {
        let as_f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::of(&as_f)
    }

    /// Summarizes a sample of `usize` values (path lengths).
    #[must_use]
    pub fn of_lens(values: &[usize]) -> Self {
        let as_f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::of(&as_f)
    }
}

/// Percentile by the nearest-rank method over a pre-sorted slice.
///
/// Nearest-rank matches how the paper's whiskers behave for the discrete
/// count data it plots (e.g. "(0, 4)" timeout percentiles in Table 4 are
/// attainable values, not interpolations).
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    // Nearest-rank is 1-based; `ceil` sends q = 0.0 to rank 0, which we
    // define explicitly as the minimum (rank 1) rather than relying on the
    // lower clamp bound to catch it.
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zeroes() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.p01, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn mean_and_std_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&sorted, 0.01), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.50), 50.0);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100.0);
    }

    #[test]
    fn of_counts_matches_of() {
        let a = Summary::of_counts(&[1, 2, 3]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        // Nearest-rank percentiles must be actual sample values.
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = Summary::of(&vals);
        assert!(vals.contains(&s.p01));
        assert!(vals.contains(&s.p50));
        assert!(vals.contains(&s.p99));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn percentile_extreme_quantiles_are_min_and_max() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0, "q = 0 is the minimum");
        assert_eq!(
            percentile_sorted(&sorted, 1.0),
            100.0,
            "q = 1 is the maximum"
        );
    }

    #[test]
    fn percentile_single_sample_is_that_sample_for_all_quantiles() {
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_sorted(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentile_two_samples_split_at_the_median() {
        let sorted = [1.0, 2.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.01), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.50), 1.0, "rank ceil(1.0) = 1");
        assert_eq!(percentile_sorted(&sorted, 0.51), 2.0, "rank ceil(1.02) = 2");
        assert_eq!(percentile_sorted(&sorted, 0.99), 2.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 2.0);
    }

    #[test]
    fn percentile_empty_sample_is_zero_at_any_quantile() {
        assert_eq!(percentile_sorted(&[], 0.0), 0.0);
        assert_eq!(percentile_sorted(&[], 1.0), 0.0);
    }

    #[test]
    fn of_counts_survives_u64_max() {
        let s = Summary::of_counts(&[u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(s.n, 3);
        let expect = u64::MAX as f64;
        assert_eq!(s.mean, expect);
        assert_eq!(s.min, expect);
        assert_eq!(s.max, expect);
        assert_eq!(s.p01, expect);
        assert_eq!(s.p99, expect);
        assert_eq!(s.std_dev, 0.0, "identical samples have zero spread");
        assert!(s.mean.is_finite());
    }
}
