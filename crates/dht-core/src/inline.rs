//! Fixed-capacity inline vectors for constant-degree routing state.
//!
//! Cycloid's headline property is a constant routing degree: every node
//! keeps ~7 links regardless of network size. Storing those links in
//! heap-allocated `Vec`s costs a pointer chase plus a 24-byte header per
//! list — for a four-entry leaf set that is more header than payload.
//! [`InlineVec`] keeps the elements inline in the owning struct (and
//! therefore inline in the [`crate::sim::Membership`] state slab), so a
//! node's entire routing table lives in one contiguous allocation.
//!
//! The API is the small slice of `Vec` the overlay crates actually use:
//! push/clear/truncate, `Deref` to `[T]` for iteration and indexing, and
//! conversions from `Vec`/slices for code that builds lists dynamically
//! before freezing them into a node's state. Capacity overflow panics —
//! the overlays validate their degree bounds (e.g. Cycloid's leaf radius
//! ≤ 4) at configuration time, so an overflow here is a logic error.

use std::fmt;

/// A fixed-capacity vector storing up to `N` elements inline.
///
/// `T` must be `Copy + Default` so the backing array can be materialised
/// eagerly; unused slots hold `T::default()` and are never observed
/// through the public API.
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: u8,
    buf: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty inline vector.
    pub fn new() -> Self {
        assert!(
            N <= u8::MAX as usize,
            "InlineVec capacity exceeds u8 length"
        );
        Self {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Creates an inline vector holding `len` copies of `value`.
    ///
    /// Panics if `len > N`.
    pub fn repeat(value: T, len: usize) -> Self {
        assert!(
            len <= N,
            "InlineVec::repeat length {len} exceeds capacity {N}"
        );
        let mut v = Self::new();
        for _ in 0..len {
            v.push(value);
        }
        v
    }

    /// Creates an inline vector from a slice.
    ///
    /// Panics if the slice is longer than the capacity `N`.
    pub fn from_slice(slice: &[T]) -> Self {
        assert!(
            slice.len() <= N,
            "InlineVec::from_slice length {} exceeds capacity {N}",
            slice.len()
        );
        let mut v = Self::new();
        for &item in slice {
            v.push(item);
        }
        v
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity `N`.
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Appends an element. Panics if the vector is full.
    pub fn push(&mut self, value: T) {
        assert!((self.len as usize) < N, "InlineVec overflow: capacity {N}");
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Shortens the vector to `len` elements; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len as usize {
            self.len = len as u8;
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        Self::from_slice(&v)
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for InlineVec<T, N> {
    fn from(v: &[T]) -> Self {
        Self::from_slice(v)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<InlineVec<T, N>> for Vec<T> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_and_deref() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(3);
        v.push(7);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 3);
        assert_eq!(v.last(), Some(&7));
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn from_vec_and_eq_vec() {
        let v: InlineVec<u64, 4> = vec![1, 2, 3].into();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], v);
        assert_ne!(v, vec![1, 2]);
    }

    #[test]
    fn repeat_fills() {
        let v: InlineVec<u64, 4> = InlineVec::repeat(9, 3);
        assert_eq!(v, vec![9, 9, 9]);
    }

    #[test]
    fn clear_and_truncate() {
        let mut v: InlineVec<u64, 4> = vec![1, 2, 3, 4].into();
        v.truncate(2);
        assert_eq!(v, vec![1, 2]);
        v.truncate(10);
        assert_eq!(v.len(), 2);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn mutate_through_deref_mut() {
        let mut v: InlineVec<u64, 4> = vec![1, 2].into();
        v[0] = 5;
        v.sort_unstable();
        assert_eq!(v, vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_past_capacity_panics() {
        let mut v: InlineVec<u64, 2> = vec![1, 2].into();
        v.push(3);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn from_slice_past_capacity_panics() {
        let _: InlineVec<u64, 2> = InlineVec::from_slice(&[1, 2, 3]);
    }

    #[test]
    fn chain_via_into_iterator_ref() {
        let a: InlineVec<u64, 4> = vec![1, 2].into();
        let b: InlineVec<u64, 4> = vec![3].into();
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        assert_eq!(all, vec![1, 2, 3]);
    }
}
