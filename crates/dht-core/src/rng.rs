//! Deterministic randomness for reproducible experiments.
//!
//! Every experiment in the harness takes a single `u64` seed; all of its
//! stochastic inputs (node identifiers, workload keys, churn event times)
//! are derived from that seed through named sub-streams, so re-running a
//! figure always reproduces the same numbers, and two experiments never
//! share a stream by accident.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::{hash_str, splitmix64};

/// Derives an independent named RNG sub-stream from a master seed.
///
/// The stream label is hashed and mixed with the master seed, so
/// `stream(seed, "workload")` and `stream(seed, "churn")` are statistically
/// independent, while the same `(seed, label)` pair always yields the same
/// generator.
#[must_use]
pub fn stream(master_seed: u64, label: &str) -> StdRng {
    let mixed = splitmix64(master_seed ^ hash_str(label));
    StdRng::seed_from_u64(mixed)
}

/// Derives an indexed RNG sub-stream, for per-trial or per-node streams.
#[must_use]
pub fn stream_indexed(master_seed: u64, label: &str, index: u64) -> StdRng {
    let mixed = splitmix64(master_seed ^ hash_str(label) ^ splitmix64(index));
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = stream(1, "x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(1, "y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(2, "x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_independent() {
        let a: u64 = stream_indexed(1, "trial", 0).gen();
        let b: u64 = stream_indexed(1, "trial", 1).gen();
        assert_ne!(a, b);
    }
}
