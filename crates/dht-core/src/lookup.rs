//! Per-lookup traces: the raw material every figure in the paper is
//! computed from.
//!
//! A lookup walks node-to-node through an overlay. The overlay records one
//! [`HopPhase`] per forwarding step, a timeout count (each attempt to
//! contact a departed node, §4.3: "the number of timeouts experienced by a
//! lookup is equal to the number of departed nodes encountered"), the
//! message-level bill under the active fault plan (see [`crate::net`]),
//! and the final [`LookupOutcome`].

use crate::net::NetCosts;

/// The routing phase a single hop was taken in.
///
/// Cycloid and Viceroy both route in three phases (§3.2, §2.4); the paper's
/// Fig. 7 breaks lookup cost down by phase. Koorde hops are either de Bruijn
/// hops or successor hops (Fig. 7(c), Fig. 14). Chord hops are finger or
/// successor hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopPhase {
    /// Cycloid/Viceroy phase 1: raising the cyclic index / climbing levels.
    Ascending,
    /// Cycloid/Viceroy phase 2: correcting cubical bits / descending levels.
    Descending,
    /// Cycloid phase 3 / Viceroy phase 3: closing in along cycle or ring
    /// links.
    TraverseCycle,
    /// Koorde: a hop through the node's de Bruijn pointer.
    DeBruijn,
    /// Koorde/Chord: a hop to a successor (or successor-list backup).
    Successor,
    /// Chord: a hop through a finger-table entry.
    Finger,
}

impl HopPhase {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HopPhase::Ascending => "ascending",
            HopPhase::Descending => "descending",
            HopPhase::TraverseCycle => "traverse",
            HopPhase::DeBruijn => "debruijn",
            HopPhase::Successor => "successor",
            HopPhase::Finger => "finger",
        }
    }
}

/// How a lookup ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The lookup terminated at the node that is responsible for the key.
    Found,
    /// The lookup terminated at a node that is *not* responsible for the
    /// key (routing converged to the wrong place — §4.3 counts these for
    /// Koorde as "lookup failures").
    WrongOwner,
    /// Routing could not make progress (every candidate next hop was dead
    /// or farther from the target).
    Stuck,
    /// The hop budget was exhausted — treated as a failure; a correct
    /// overlay should never produce this.
    HopBudgetExhausted,
}

impl LookupOutcome {
    /// `true` iff the lookup resolved to the correct storing node.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, LookupOutcome::Found)
    }
}

/// The full trace of one lookup request.
#[derive(Debug, Clone)]
pub struct LookupTrace {
    /// One phase tag per forwarding hop, in order. The paper's "path
    /// length" is `hops.len()`.
    pub hops: Vec<HopPhase>,
    /// Number of departed nodes contacted during routing (§4.3).
    pub timeouts: u32,
    /// How the lookup ended.
    pub outcome: LookupOutcome,
    /// Opaque token of the node the lookup terminated at.
    pub terminal: u64,
    /// Message-level costs under the active [`crate::net::FaultPlan`]:
    /// retries, message timeouts, duplicates, and simulated end-to-end
    /// latency. All-zero when faults are disabled and no stale entry was
    /// hit.
    pub net: NetCosts,
}

impl LookupTrace {
    /// A zero-hop trace: the source itself stores the key.
    #[must_use]
    pub fn trivial(terminal: u64) -> Self {
        Self {
            hops: Vec::new(),
            timeouts: 0,
            outcome: LookupOutcome::Found,
            terminal,
            net: NetCosts::default(),
        }
    }

    /// Path length in hops (the y-axis of Figs. 5, 6, 11, 12, 13).
    #[must_use]
    pub fn path_len(&self) -> usize {
        self.hops.len()
    }

    /// Number of hops tagged with `phase` (Figs. 7, 14).
    #[must_use]
    pub fn hops_in_phase(&self, phase: HopPhase) -> usize {
        self.hops.iter().filter(|&&p| p == phase).count()
    }
}

/// Accumulates hop counts per phase over many lookups and reports each
/// phase's share of the total path length (Fig. 7's stacked bars).
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    counts: Vec<(HopPhase, u64)>,
    total_hops: u64,
    lookups: u64,
}

impl PhaseBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one lookup trace.
    pub fn record(&mut self, trace: &LookupTrace) {
        self.lookups += 1;
        for &hop in &trace.hops {
            self.total_hops += 1;
            if let Some(entry) = self.counts.iter_mut().find(|(p, _)| *p == hop) {
                entry.1 += 1;
            } else {
                self.counts.push((hop, 1));
            }
        }
    }

    /// Mean number of hops per lookup spent in `phase`.
    #[must_use]
    pub fn mean_hops(&self, phase: HopPhase) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        let c = self
            .counts
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, c)| *c);
        c as f64 / self.lookups as f64
    }

    /// Fraction of all hops spent in `phase` (0..=1).
    #[must_use]
    pub fn share(&self, phase: HopPhase) -> f64 {
        if self.total_hops == 0 {
            return 0.0;
        }
        let c = self
            .counts
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, c)| *c);
        c as f64 / self.total_hops as f64
    }

    /// All phases observed, with their hop counts, ordered by first
    /// appearance.
    #[must_use]
    pub fn phases(&self) -> &[(HopPhase, u64)] {
        &self.counts
    }

    /// Total lookups recorded.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mean total path length per lookup.
    #[must_use]
    pub fn mean_path_len(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(hops: Vec<HopPhase>) -> LookupTrace {
        LookupTrace {
            hops,
            timeouts: 0,
            outcome: LookupOutcome::Found,
            terminal: 0,
            net: NetCosts::default(),
        }
    }

    #[test]
    fn trivial_trace_is_zero_hop_success() {
        let t = LookupTrace::trivial(9);
        assert_eq!(t.path_len(), 0);
        assert!(t.outcome.is_success());
        assert_eq!(t.terminal, 9);
    }

    #[test]
    fn hops_in_phase_counts() {
        let t = trace(vec![
            HopPhase::Ascending,
            HopPhase::Descending,
            HopPhase::Descending,
            HopPhase::TraverseCycle,
        ]);
        assert_eq!(t.path_len(), 4);
        assert_eq!(t.hops_in_phase(HopPhase::Descending), 2);
        assert_eq!(t.hops_in_phase(HopPhase::DeBruijn), 0);
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let mut b = PhaseBreakdown::new();
        b.record(&trace(vec![HopPhase::Ascending, HopPhase::Descending]));
        b.record(&trace(vec![
            HopPhase::Descending,
            HopPhase::TraverseCycle,
            HopPhase::TraverseCycle,
        ]));
        let total = b.share(HopPhase::Ascending)
            + b.share(HopPhase::Descending)
            + b.share(HopPhase::TraverseCycle);
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(b.lookups(), 2);
        assert!((b.mean_path_len() - 2.5).abs() < 1e-12);
        assert!((b.mean_hops(HopPhase::Descending) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_empty_is_zero() {
        let b = PhaseBreakdown::new();
        assert_eq!(b.share(HopPhase::Ascending), 0.0);
        assert_eq!(b.mean_path_len(), 0.0);
    }

    #[test]
    fn outcome_success_classification() {
        assert!(LookupOutcome::Found.is_success());
        assert!(!LookupOutcome::WrongOwner.is_success());
        assert!(!LookupOutcome::Stuck.is_success());
        assert!(!LookupOutcome::HopBudgetExhausted.is_success());
    }

    #[test]
    fn phase_labels_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            HopPhase::Ascending,
            HopPhase::Descending,
            HopPhase::TraverseCycle,
            HopPhase::DeBruijn,
            HopPhase::Successor,
            HopPhase::Finger,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(labels.len(), 6);
    }
}
