//! Consistent hashing for node and key identifiers.
//!
//! The DHT papers reproduced here use SHA-1-style consistent hashing purely
//! to obtain identifiers that are *uniformly distributed* over the ID space.
//! Every experiment in the evaluation depends only on that uniformity, so we
//! substitute a 64-bit finalizer-quality mixer (splitmix64, the same
//! finalizer used by `SplittableRandom` and `wyhash`): it is deterministic,
//! allocation-free, and passes avalanche tests, which is exactly the property
//! consistent hashing requires. The substitution is recorded in `DESIGN.md`.

/// The splitmix64 finalizer: a bijective 64-bit mixer with full avalanche.
///
/// Because it is a bijection on `u64`, distinct inputs always produce
/// distinct outputs — convenient for generating collision-free node
/// identifiers from a counter.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes an arbitrary byte string to a 64-bit value.
///
/// FNV-1a over the bytes followed by a splitmix64 finalize. Used to map
/// application-level object names ("movie.mp4") onto DHT keys.
#[inline]
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Hashes a UTF-8 string to a 64-bit value (see [`hash_bytes`]).
#[inline]
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Reduces a 64-bit hash onto `[0, space)` without the modulo bias that a
/// plain `h % space` would introduce for spaces that do not divide `2^64`.
///
/// Uses Lemire's multiply-shift reduction. For the power-of-two spaces used
/// by Chord/Koorde this is exact; for Cycloid's `d * 2^d` spaces the bias of
/// a plain modulo would already be negligible, but the reduction costs
/// nothing and keeps the key distribution experiments clean.
#[inline]
#[must_use]
pub fn reduce(h: u64, space: u64) -> u64 {
    debug_assert!(space > 0, "identifier space must be non-empty");
    ((u128::from(h) * u128::from(space)) >> 64) as u64
}

/// A tiny deterministic ID allocator: hashes a monotonically increasing
/// counter through [`splitmix64`], yielding uniformly distributed,
/// collision-free (before reduction) identifiers.
///
/// Used by the overlays to model "the node hashes its IP address": each
/// simulated node gets a fresh counter value, so its identifier is an
/// independent uniform draw.
#[derive(Debug, Clone)]
pub struct IdAllocator {
    counter: u64,
}

impl IdAllocator {
    /// Creates an allocator whose stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            counter: splitmix64(seed),
        }
    }

    /// Returns the next raw 64-bit identifier.
    pub fn next_raw(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.counter)
    }

    /// Returns the next identifier reduced onto `[0, space)`.
    pub fn next_in(&mut self, space: u64) -> u64 {
        reduce(self.next_raw(), space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(12345), splitmix64(12345));
    }

    #[test]
    fn splitmix64_bijective_properties() {
        // Distinct inputs map to distinct outputs (bijection), and zero is
        // not a fixed point (the additive constant guarantees it).
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0, "zero must not be a fixed point");
        // Avalanche sanity: flipping one input bit flips many output bits.
        let d = (splitmix64(0x55) ^ splitmix64(0x54)).count_ones();
        assert!(d >= 16, "poor avalanche: only {d} bits flipped");
    }

    #[test]
    fn hash_bytes_differs_on_content() {
        assert_ne!(hash_bytes(b"alpha"), hash_bytes(b"beta"));
        assert_eq!(hash_str("alpha"), hash_bytes(b"alpha"));
    }

    #[test]
    fn reduce_stays_in_range() {
        for h in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            for space in [1u64, 2, 7, 2048, 24, 1 << 32] {
                assert!(reduce(h, space) < space);
            }
        }
    }

    #[test]
    fn reduce_is_monotone_in_hash() {
        // Lemire reduction preserves order of the raw hash.
        assert!(reduce(100, 1000) <= reduce(u64::MAX / 2, 1000));
    }

    #[test]
    fn id_allocator_yields_distinct_ids() {
        let mut alloc = IdAllocator::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(alloc.next_raw()), "raw ids must be unique");
        }
    }

    #[test]
    fn id_allocator_uniformity_rough() {
        // Chi-square-ish sanity check: 16 buckets, 16k draws, each bucket
        // should be within 25% of the expected 1000.
        let mut alloc = IdAllocator::new(7);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(alloc.next_in(16)) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (750..=1250).contains(&b),
                "bucket {i} count {b} outside tolerance"
            );
        }
    }

    #[test]
    fn id_allocator_streams_differ_by_seed() {
        let a: Vec<u64> = {
            let mut x = IdAllocator::new(1);
            (0..8).map(|_| x.next_raw()).collect()
        };
        let b: Vec<u64> = {
            let mut x = IdAllocator::new(2);
            (0..8).map(|_| x.next_raw()).collect()
        };
        assert_ne!(a, b);
    }
}
