//! Shared substrate for the Cycloid reproduction suite.
//!
//! This crate defines everything the four overlay implementations
//! (`cycloid`, `chord`, `koorde`, `viceroy`) and the experiment harness have
//! in common:
//!
//! * [`audit`] — protocol-conformance auditing: the [`audit::StateAudit`]
//!   trait each overlay implements to check its paper-specified routing
//!   invariants, and the [`audit::AuditReport`] violations land in,
//! * [`clock`] — the virtual clock: the deterministic discrete-event
//!   kernel ([`clock::EventQueue`], FIFO tie-breaking, Poisson arrival
//!   sampling) every temporal simulation in the workspace runs on,
//! * [`corrupt`] — seeded adversarial corruption of routing state
//!   ([`corrupt::CorruptionPlan`], [`corrupt::CorruptionStrategy`]): the
//!   damage half of the self-stabilization test harness,
//! * [`hash`] — the consistent-hashing primitive used to map node names and
//!   object keys onto identifier spaces,
//! * [`rng`] — deterministic, seedable randomness so every experiment is
//!   reproducible bit-for-bit,
//! * [`lookup`] — the per-lookup trace (hops, per-hop phase tags, timeouts,
//!   success) that every overlay reports and every figure of the paper is
//!   computed from,
//! * [`net`] — the deterministic unreliable-network model: a seeded
//!   [`net::FaultPlan`] (message loss / delay / duplication) plus a
//!   [`net::RetryPolicy`] (attempts, exponential backoff) applied by the
//!   shared walk engine to every per-hop contact,
//! * [`obs`] — observability: zero-cost-when-disabled structured event
//!   tracing ([`obs::TraceSink`], [`obs::SinkHandle`]), the metrics
//!   registry behind the `BENCH_*.json` export, and a leveled progress
//!   logger,
//! * [`inline`] — fixed-capacity inline vectors ([`inline::InlineVec`])
//!   keeping constant-degree routing tables inside the state slab,
//! * [`overlay`] — the [`overlay::Overlay`] trait: the uniform simulation
//!   interface (join / graceful leave / lookup / stabilize / query loads),
//! * [`store`] — the compact struct-of-arrays node store
//!   ([`store::CompactStore`]) backing million-node memberships,
//! * [`ring`] — modular-ring interval and distance arithmetic shared by the
//!   ring-based overlays,
//! * [`sim`] — the shared simulation substrate: the [`sim::Membership`]
//!   node arena, query-load accounting, and the iterative lookup walk
//!   driver behind the [`sim::SimOverlay`] per-hop routing interface,
//! * [`stats`] — mean and 1st/99th-percentile summaries exactly as the
//!   paper plots them,
//! * [`workload`] — lookup and key-placement workload generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod clock;
pub mod corrupt;
pub mod hash;
pub mod inline;
pub mod lookup;
pub mod net;
pub mod obs;
pub mod overlay;
pub mod ring;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod store;
pub mod workload;

pub use audit::{AuditReport, AuditScope, AuditViolation, StateAudit};
pub use clock::{exp_delay, EventQueue, SimTime, SECOND};
pub use corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};
pub use inline::InlineVec;
pub use lookup::{HopPhase, LookupOutcome, LookupTrace};
pub use net::{DelayModel, FaultPlan, NetConditions, NetCosts, RetryPolicy};
pub use obs::{
    Event, JsonlSink, LogLevel, MetricsRegistry, NullSink, Progress, RingBufferSink, SinkHandle,
    TimeoutKind, TraceSink,
};
pub use overlay::{NodeToken, Overlay};
pub use sim::{
    default_store_kind, set_default_store_kind, CursorStep, LookupCursor, Membership, QueryLoads,
    SimOverlay, StepDecision, StoreKind, WalkCursor, WalkEffects,
};
pub use stats::Summary;
pub use store::CompactStore;
