//! Deterministic corruption of routing state — the adversary half of
//! the self-stabilization contract.
//!
//! The audit subsystem ([`crate::audit`]) *detects* divergence from
//! paper-specified routing state but repairs nothing. This module
//! supplies the other two pieces needed to prove the repair layer
//! correct: a catalogue of named corruption strategies
//! ([`CorruptionStrategy`]) and a seeded, fully deterministic plan
//! ([`CorruptionPlan`]) for applying one to a chosen fraction of a
//! network. Overlays implement the actual mutations (they own their
//! state layouts) via `SimOverlay::corrupt_network`; this module only
//! decides *who* gets corrupted and supplies deterministic draws for
//! *what* to write, so that a `(strategy, severity, seed)` triple
//! names exactly one corrupted network.
//!
//! Two properties matter for the test harness built on top:
//!
//! - **Exact-count victim selection.** [`CorruptionPlan::victims`]
//!   targets exactly `ceil(severity * n)` nodes for *every* seed — a
//!   per-node coin flip would make "≥25% of nodes corrupted" a
//!   probabilistic claim and the convergence proptests flaky.
//! - **No RNG objects.** All draws are pure [`splitmix64`] chains over
//!   `(seed, token, salt)`. Corruption consumes nothing from the
//!   overlay's seeded RNG streams, so a corrupt-then-repair episode
//!   composes with any workload without perturbing its draws.

use crate::hash::splitmix64;

/// A named way of damaging routing state. Each overlay maps the
/// strategy onto its own link layout (fingers, de Bruijn pointers,
/// leaf sets, zones…); the strategy names the *shape* of the damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionStrategy {
    /// Overwrite links with arbitrary (live) nodes: routing still lands
    /// somewhere real, but in the wrong place.
    RandomizeLinks,
    /// Point links at identifiers that are *not* live — departed or
    /// never-joined "ghost" nodes, the stale-entry hazard of §4.3.
    GhostLinks,
    /// Swap paired link sets against each other (smaller↔larger leaf
    /// halves, inside↔outside leaf sets), breaking ordering invariants
    /// while keeping every entry individually plausible.
    CrossWireLeafSets,
    /// Zero out long-range state (fingers, de Bruijn pointers, prefix
    /// tables), degrading routing to its fallback paths.
    ZeroLinks,
    /// Rewrite every victim's links to one seeded "attacker" node,
    /// eclipsing a contiguous region of the identifier space behind a
    /// single sink.
    EclipseRegion,
}

impl CorruptionStrategy {
    /// Every strategy, in catalogue order.
    pub const ALL: [CorruptionStrategy; 5] = [
        CorruptionStrategy::RandomizeLinks,
        CorruptionStrategy::GhostLinks,
        CorruptionStrategy::CrossWireLeafSets,
        CorruptionStrategy::ZeroLinks,
        CorruptionStrategy::EclipseRegion,
    ];

    /// Short stable name, used in experiment tables and metric keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CorruptionStrategy::RandomizeLinks => "randomize",
            CorruptionStrategy::GhostLinks => "ghost",
            CorruptionStrategy::CrossWireLeafSets => "crosswire",
            CorruptionStrategy::ZeroLinks => "zero",
            CorruptionStrategy::EclipseRegion => "eclipse",
        }
    }
}

/// A seeded plan: which strategy, what fraction of the network, under
/// which seed. A plan is pure data — applying it twice to identical
/// networks produces identical damage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionPlan {
    /// The damage shape.
    pub strategy: CorruptionStrategy,
    /// Fraction of live nodes to target, in `[0, 1]`. Exactly
    /// `ceil(severity * n)` nodes are selected.
    pub severity: f64,
    /// Master seed for victim selection and value draws.
    pub seed: u64,
}

impl CorruptionPlan {
    /// Builds a plan, clamping `severity` into `[0, 1]`.
    #[must_use]
    pub fn new(strategy: CorruptionStrategy, severity: f64, seed: u64) -> Self {
        Self {
            strategy,
            severity: severity.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Selects exactly `ceil(severity * n)` victim tokens from `tokens`,
    /// returned in ascending token order.
    ///
    /// For [`CorruptionStrategy::EclipseRegion`] the victims are a
    /// contiguous (wrap-around) arc of the ascending token list — a
    /// *region* of identifier space. Every other strategy ranks tokens
    /// by a per-token hash and takes the `k` smallest ranks, i.e. a
    /// seeded uniform sample without replacement.
    #[must_use]
    pub fn victims(&self, tokens: &[u64]) -> Vec<u64> {
        let n = tokens.len();
        let k = ((self.severity * n as f64).ceil() as usize).min(n);
        if k == 0 {
            return Vec::new();
        }
        let mut sorted: Vec<u64> = tokens.to_vec();
        sorted.sort_unstable();
        let mut chosen: Vec<u64> = match self.strategy {
            CorruptionStrategy::EclipseRegion => {
                let start = (splitmix64(self.seed) % n as u64) as usize;
                (0..k).map(|i| sorted[(start + i) % n]).collect()
            }
            _ => {
                let mut ranked: Vec<(u64, u64)> = sorted
                    .iter()
                    .map(|&t| (splitmix64(self.seed ^ splitmix64(t)), t))
                    .collect();
                ranked.sort_unstable();
                ranked.truncate(k);
                ranked.into_iter().map(|(_, t)| t).collect()
            }
        };
        chosen.sort_unstable();
        chosen
    }

    /// A deterministic 64-bit draw for `(victim token, salt)`. Distinct
    /// salts give independent-looking draws for distinct entries of the
    /// same node; no RNG object is involved.
    #[must_use]
    pub fn draw(&self, token: u64, salt: u64) -> u64 {
        splitmix64(splitmix64(self.seed ^ splitmix64(token)) ^ splitmix64(salt))
    }

    /// Picks one element of `pool` for `(token, salt)`; `None` when the
    /// pool is empty.
    #[must_use]
    pub fn pick(&self, token: u64, salt: u64, pool: &[u64]) -> Option<u64> {
        if pool.is_empty() {
            return None;
        }
        Some(pool[(self.draw(token, salt) % pool.len() as u64) as usize])
    }

    /// Draws an identifier in `[0, space)` that `is_live` rejects — a
    /// ghost. Probes up to 32 distinct draws before giving up (`None`
    /// only when the space is saturated with live nodes).
    #[must_use]
    pub fn ghost(
        &self,
        token: u64,
        salt: u64,
        space: u64,
        is_live: impl Fn(u64) -> bool,
    ) -> Option<u64> {
        if space == 0 {
            return None;
        }
        (0..32)
            .map(|probe| self.draw(token, salt ^ (0x9e37 + probe)) % space)
            .find(|&cand| !is_live(cand))
    }
}

/// What a corruption pass actually did — the harness uses it to assert
/// the adversary really damaged as much as the plan demanded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Nodes the plan selected as victims.
    pub targeted_nodes: usize,
    /// Victims whose state actually changed (a victim whose drawn value
    /// happened to equal the current one stays healthy).
    pub corrupted_nodes: usize,
    /// Total routing entries rewritten across all victims.
    pub mutated_entries: u64,
}

impl CorruptionReport {
    /// Records one visited victim that had `mutated` entries rewritten.
    pub fn note(&mut self, mutated: u64) {
        self.targeted_nodes += 1;
        if mutated > 0 {
            self.corrupted_nodes += 1;
            self.mutated_entries += mutated;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(n: u64) -> Vec<u64> {
        // Deliberately unsorted input: victims() must not rely on order.
        (0..n).map(|i| splitmix64(i) % 10_000).collect()
    }

    #[test]
    fn victims_hit_the_exact_ceiling_count() {
        let toks: Vec<u64> = (0..97).collect();
        for &sev in &[0.0, 0.01, 0.25, 0.5, 0.999, 1.0] {
            for seed in 0..8 {
                let plan = CorruptionPlan::new(CorruptionStrategy::RandomizeLinks, sev, seed);
                let want = ((sev * 97.0).ceil() as usize).min(97);
                assert_eq!(plan.victims(&toks).len(), want, "sev={sev} seed={seed}");
            }
        }
    }

    #[test]
    fn victims_are_sorted_deduplicated_members() {
        let toks = tokens(64);
        for strategy in CorruptionStrategy::ALL {
            let plan = CorruptionPlan::new(strategy, 0.4, 9);
            let v = plan.victims(&toks);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{strategy:?} sorted");
            assert!(v.iter().all(|t| toks.contains(t)), "{strategy:?} members");
            assert_eq!(v, plan.victims(&toks), "{strategy:?} deterministic");
        }
    }

    #[test]
    fn eclipse_selects_a_contiguous_arc() {
        let toks: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let plan = CorruptionPlan::new(CorruptionStrategy::EclipseRegion, 0.3, 123);
        let v = plan.victims(&toks);
        assert_eq!(v.len(), 15);
        // In the ascending token circle, a wrap-around arc has at most
        // one gap between consecutive selected positions.
        let positions: Vec<usize> = v
            .iter()
            .map(|t| toks.iter().position(|x| x == t).unwrap())
            .collect();
        let gaps = positions.windows(2).filter(|w| w[1] != w[0] + 1).count();
        assert!(gaps <= 1, "positions not contiguous: {positions:?}");
    }

    #[test]
    fn distinct_seeds_select_distinct_victims() {
        let toks = tokens(200);
        let a = CorruptionPlan::new(CorruptionStrategy::GhostLinks, 0.25, 1).victims(&toks);
        let b = CorruptionPlan::new(CorruptionStrategy::GhostLinks, 0.25, 2).victims(&toks);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn draw_is_salt_and_token_sensitive() {
        let plan = CorruptionPlan::new(CorruptionStrategy::ZeroLinks, 0.5, 77);
        assert_ne!(plan.draw(1, 0), plan.draw(1, 1));
        assert_ne!(plan.draw(1, 0), plan.draw(2, 0));
        assert_eq!(plan.draw(1, 0), plan.draw(1, 0));
    }

    #[test]
    fn pick_stays_in_pool_and_handles_empty() {
        let plan = CorruptionPlan::new(CorruptionStrategy::RandomizeLinks, 0.5, 5);
        assert_eq!(plan.pick(1, 0, &[]), None);
        let pool = [10, 20, 30];
        for salt in 0..20 {
            let got = plan.pick(7, salt, &pool).unwrap();
            assert!(pool.contains(&got));
        }
    }

    #[test]
    fn ghost_avoids_live_identifiers() {
        let plan = CorruptionPlan::new(CorruptionStrategy::GhostLinks, 0.5, 5);
        let live = |id: u64| id.is_multiple_of(2);
        for salt in 0..20 {
            let g = plan.ghost(3, salt, 1 << 20, live).unwrap();
            assert!(g % 2 == 1, "drew a live id {g}");
            assert!(g < (1 << 20));
        }
        // Saturated space: every id live, no ghost exists.
        assert_eq!(plan.ghost(3, 0, 4, |_| true), None);
        assert_eq!(plan.ghost(3, 0, 0, |_| false), None);
    }

    #[test]
    fn severity_is_clamped() {
        let plan = CorruptionPlan::new(CorruptionStrategy::ZeroLinks, 7.0, 1);
        assert_eq!(plan.severity, 1.0);
        let plan = CorruptionPlan::new(CorruptionStrategy::ZeroLinks, -3.0, 1);
        assert_eq!(plan.severity, 0.0);
        assert!(plan.victims(&[1, 2, 3]).is_empty());
    }

    #[test]
    fn report_counts_targeted_vs_corrupted() {
        let mut rep = CorruptionReport::default();
        rep.note(0);
        rep.note(3);
        rep.note(2);
        assert_eq!(rep.targeted_nodes, 3);
        assert_eq!(rep.corrupted_nodes, 2);
        assert_eq!(rep.mutated_entries, 5);
    }
}
