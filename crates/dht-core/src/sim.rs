//! Shared simulation substrate for the overlay implementations.
//!
//! Every overlay crate in this workspace is a *simulator* in the
//! paper's sense: all node states live in one structure, and protocol
//! actions mutate exactly the state the real protocol would mutate.
//! Before this module existed each overlay copy-pasted the same three
//! concerns; the substrate owns them once:
//!
//! 1. **Membership** — [`Membership`] is the arena of live node
//!    states, keyed by [`NodeToken`], with deterministic (token-sorted)
//!    iteration order, identifier allocation for joins, wrapping ring
//!    searches, and liveness checks.
//! 2. **Query-load accounting** — [`QueryLoads`] tracks the per-node
//!    lookup-message counters of the paper's §4.2 congestion measure,
//!    kept in lockstep with the membership so a counter exists exactly
//!    for the live nodes.
//! 3. **The iterative lookup walk** — [`walk`] (and [`walk_from`] for
//!    pre-mapped keys) drives a lookup hop by hop: it owns the hop
//!    budget, the per-step timeout de-duplication for stale entries,
//!    query-load counting, and [`LookupTrace`] recording. The overlay
//!    only answers the pure per-hop question "from here, which
//!    candidates would you try next, in what order?" through
//!    [`SimOverlay::next_hop`].
//!
//! # Read-only walks and deferred effects
//!
//! The walk core is *read-only*: [`walk_ref`] routes against `&T` and
//! returns the trace **plus** a [`WalkEffects`] record of everything a
//! mutating walk would have done in place — query-load increments,
//! repair-on-use evictions, exhaustion accounting, and trace events.
//! [`apply_effects`] plays such a record back against `&mut T`. The
//! classic [`walk`]/[`walk_from`] entry points are exactly `walk_ref` +
//! immediate application, so overlays keep their sequential semantics
//! (a repair made by lookup *k* is visible to lookup *k + 1*).
//!
//! [`ParallelExecutor`] builds on this split: it shards a batch of
//! lookups across scoped worker threads that all walk the same
//! snapshot, then merges the effect records in canonical workload
//! order. Together with the order-independent fault draws of
//! [`crate::net::NetConditions`], every aggregate, query-load table,
//! and trace byte is identical for any worker count — including one.
//! The one semantic difference from the sequential entry points is
//! *within a batch*: repair-on-use is applied after the whole batch
//! routes, so all lookups of a batch see the same snapshot (see
//! DESIGN.md, "Parallel execution").
//!
//! Implementing [`SimOverlay`] yields [`Overlay`] for free through a
//! blanket impl, so the experiment harness drives every overlay —
//! including future ones — through one interface with no per-crate
//! glue.
//!
//! # Adding an overlay
//!
//! Define a network type holding a `Membership<YourNodeState>`, pick a
//! per-walk state type (usually the mapped key plus any cursor the
//! routing algorithm threads through hops), and implement the required
//! [`SimOverlay`] methods. Override the defaulted hooks only where the
//! protocol deviates: [`SimOverlay::admit`] for candidate filters
//! beyond liveness, [`SimOverlay::on_hop`] for per-hop *walk-state*
//! bookkeeping (cursor advancement, visited sets),
//! [`SimOverlay::repair_on_use`] / [`SimOverlay::record_exhausted`]
//! for deferred *network-state* mutations (stale-entry eviction,
//! failure counters), [`SimOverlay::on_exhausted`] /
//! [`SimOverlay::classify_terminal`] for outcome classification, and
//! [`SimOverlay::budget_before_terminal`] when the protocol checks its
//! termination test before the hop budget.

use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::collections::HashSet;

use rand::RngCore;

use crate::audit::{AuditReport, AuditScope};
use crate::corrupt::{CorruptionPlan, CorruptionReport};
use crate::hash::IdAllocator;
use crate::lookup::{HopPhase, LookupOutcome, LookupTrace};
use crate::net::{NetConditions, NetCosts};
use crate::obs::{Event, Phase, PhaseAccountant, PhaseCosts, SinkHandle, TimeoutKind};
use crate::overlay::{NodeToken, Overlay};
use crate::store::{approx_btree_bytes, CompactStore};

/// Per-node lookup-message counters (the paper's §4.2 congestion
/// measure), tracked for exactly the current live membership.
///
/// Counters are created at zero when a node is tracked and dropped when
/// it is untracked; counting a query for an untracked token is a no-op,
/// so departed nodes never resurrect a counter.
#[derive(Debug, Clone, Default)]
pub struct QueryLoads {
    counts: BTreeMap<NodeToken, u64>,
}

impl QueryLoads {
    /// Empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts tracking `node` at zero (keeps an existing counter).
    pub fn track(&mut self, node: NodeToken) {
        self.counts.entry(node).or_insert(0);
    }

    /// Stops tracking `node`, dropping its counter.
    pub fn untrack(&mut self, node: NodeToken) {
        self.counts.remove(&node);
    }

    /// Increments `node`'s counter if it is tracked.
    pub fn count(&mut self, node: NodeToken) {
        self.add(node, 1);
    }

    /// Adds `k` to `node`'s counter if it is tracked (no-op otherwise).
    /// Used by the parallel executor to apply per-shard folded counts.
    pub fn add(&mut self, node: NodeToken, k: u64) {
        if let Some(c) = self.counts.get_mut(&node) {
            *c += k;
        }
    }

    /// Current counter of `node` (zero if untracked).
    #[must_use]
    pub fn get(&self, node: NodeToken) -> u64 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// Number of tracked nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` iff no node is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// All counters in token order.
    #[must_use]
    pub fn as_vec(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// Sum of all counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Zeroes every counter (tracking set unchanged).
    pub fn reset(&mut self) {
        for c in self.counts.values_mut() {
            *c = 0;
        }
    }
}

/// The node arena shared by every overlay simulator: live node states
/// keyed by [`NodeToken`], the query-load counters kept in lockstep,
/// and the deterministic identifier allocator used by joins.
///
/// Iteration is always in ascending token order, which makes every
/// derived quantity (load vectors, token lists, tie-breaks) independent
/// of insertion history.
#[derive(Debug, Clone)]
pub struct Membership<S> {
    store: Store<S>,
    alloc: IdAllocator,
    net: NetConditions,
    sink: SinkHandle,
    accountant: PhaseAccountant,
}

/// Selects the backing representation of a [`Membership`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// The original `BTreeMap` + dense-sorted-mirror backend, retained
    /// as the reference implementation for the old-vs-new equivalence
    /// suite (`tests/compact_membership.rs`). O(n) memmove per
    /// join/leave — do not use at million-node scale.
    Legacy,
    /// The chunked struct-of-arrays backend
    /// ([`crate::store::CompactStore`]): amortized O(1) join/leave,
    /// dense state slab, O(1) token → state lookups. The default.
    Compact,
}

thread_local! {
    static DEFAULT_STORE_KIND: Cell<StoreKind> = const { Cell::new(StoreKind::Compact) };
}

/// The [`StoreKind`] that [`Membership::new`] uses on this thread.
#[must_use]
pub fn default_store_kind() -> StoreKind {
    DEFAULT_STORE_KIND.with(Cell::get)
}

/// Overrides the backend used by subsequently constructed
/// [`Membership`]s on this thread. This exists so equivalence tests can
/// build entire overlays on the legacy backend without threading a
/// store parameter through every overlay constructor; production code
/// should leave the default ([`StoreKind::Compact`]) alone.
pub fn set_default_store_kind(kind: StoreKind) {
    DEFAULT_STORE_KIND.with(|c| c.set(kind));
}

/// The two interchangeable node-store backends. Every public
/// [`Membership`] operation dispatches here; both arms implement
/// identical observable semantics (iteration order, range behavior,
/// duplicate-insert panics), which the equivalence suite pins.
#[derive(Debug, Clone)]
enum Store<S> {
    Legacy {
        nodes: BTreeMap<NodeToken, S>,
        /// Dense sorted mirror of the live tokens so indexed draws
        /// ([`Membership::token_at`]) avoid an O(n) iterator scan.
        order: Vec<NodeToken>,
        loads: QueryLoads,
    },
    Compact(CompactStore<S>),
}

/// Zero-cost iterator dispatch between the two store backends.
enum EitherIter<A, B> {
    A(A),
    B(B),
}

impl<T, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator for EitherIter<A, B> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::A(a) => a.next(),
            EitherIter::B(b) => b.next(),
        }
    }
}

impl<S> Membership<S> {
    /// Empty membership whose identifier allocator is seeded with
    /// `seed`. Network conditions start ideal (no message faults) and
    /// tracing starts disabled. The node store uses this thread's
    /// [`default_store_kind`] (compact unless a test overrode it).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_store_kind(seed, default_store_kind())
    }

    /// Empty membership on an explicitly chosen store backend.
    #[must_use]
    pub fn with_store_kind(seed: u64, kind: StoreKind) -> Self {
        let store = match kind {
            StoreKind::Legacy => Store::Legacy {
                nodes: BTreeMap::new(),
                order: Vec::new(),
                loads: QueryLoads::new(),
            },
            StoreKind::Compact => Store::Compact(CompactStore::new()),
        };
        Self {
            store,
            alloc: IdAllocator::new(seed),
            net: NetConditions::ideal(),
            sink: SinkHandle::disabled(),
            accountant: PhaseAccountant::disabled(),
        }
    }

    /// Which backend this arena runs on.
    #[must_use]
    pub fn store_kind(&self) -> StoreKind {
        match &self.store {
            Store::Legacy { .. } => StoreKind::Legacy,
            Store::Compact(_) => StoreKind::Compact,
        }
    }

    /// Heap bytes held by the node store itself (token order, state
    /// slab, query-load counters, token index) — exact capacities for
    /// the compact backend, a documented estimate for the legacy
    /// B-tree. Per-state heap payloads (e.g. a finger table's `Vec`)
    /// are reported separately via `SimOverlay::state_heap_bytes`.
    #[must_use]
    pub fn store_bytes(&self) -> usize {
        match &self.store {
            Store::Legacy {
                nodes,
                order,
                loads,
            } => {
                approx_btree_bytes(nodes.len(), std::mem::size_of::<(NodeToken, S)>())
                    + order.capacity() * std::mem::size_of::<NodeToken>()
                    + approx_btree_bytes(loads.len(), std::mem::size_of::<(NodeToken, u64)>())
            }
            Store::Compact(c) => c.heap_bytes(),
        }
    }

    /// Number of live nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.len(),
            Store::Compact(c) => c.len(),
        }
    }

    /// `true` iff no node is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.is_empty(),
            Store::Compact(c) => c.is_empty(),
        }
    }

    /// `true` iff `node` is live.
    #[must_use]
    pub fn contains(&self, node: NodeToken) -> bool {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.contains_key(&node),
            Store::Compact(c) => c.contains(node),
        }
    }

    /// State of a live node.
    #[must_use]
    pub fn get(&self, node: NodeToken) -> Option<&S> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.get(&node),
            Store::Compact(c) => c.get(node),
        }
    }

    /// Mutable state of a live node.
    pub fn get_mut(&mut self, node: NodeToken) -> Option<&mut S> {
        match &mut self.store {
            Store::Legacy { nodes, .. } => nodes.get_mut(&node),
            Store::Compact(c) => c.get_mut(node),
        }
    }

    /// Inserts a new node and starts its query-load counter at zero.
    ///
    /// # Panics
    /// Panics if `node` is already live: token collisions are a caller
    /// bug (joins must re-draw identifiers instead).
    pub fn insert(&mut self, node: NodeToken, state: S) {
        match &mut self.store {
            Store::Legacy {
                nodes,
                order,
                loads,
            } => {
                let prev = nodes.insert(node, state);
                assert!(prev.is_none(), "node token {node} already occupied");
                let i = order
                    .binary_search(&node)
                    .expect_err("order mirror out of sync");
                order.insert(i, node);
                loads.track(node);
            }
            Store::Compact(c) => c.insert(node, state),
        }
    }

    /// Removes a node, dropping its query-load counter. Returns the
    /// state if the node was live.
    pub fn remove(&mut self, node: NodeToken) -> Option<S> {
        match &mut self.store {
            Store::Legacy {
                nodes,
                order,
                loads,
            } => {
                let state = nodes.remove(&node);
                if state.is_some() {
                    let i = order
                        .binary_search(&node)
                        .expect("order mirror out of sync");
                    order.remove(i);
                    loads.untrack(node);
                }
                state
            }
            Store::Compact(c) => c.remove(node),
        }
    }

    /// Live tokens in ascending order.
    #[must_use]
    pub fn tokens(&self) -> Vec<NodeToken> {
        match &self.store {
            Store::Legacy { order, .. } => order.clone(),
            Store::Compact(c) => c.tokens(),
        }
    }

    /// The `i`-th smallest live token — the indexed draw behind
    /// [`crate::overlay::Overlay::random_node`]. O(1) on the legacy
    /// mirror, O(#chunks) ≈ O(n/1024) on the compact store.
    #[must_use]
    pub fn token_at(&self, i: usize) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { order, .. } => order.get(i).copied(),
            Store::Compact(c) => c.token_at(i),
        }
    }

    /// Iterates live tokens in ascending order without allocating.
    pub fn token_iter(&self) -> impl Iterator<Item = NodeToken> + '_ {
        match &self.store {
            Store::Legacy { nodes, .. } => EitherIter::A(nodes.keys().copied()),
            Store::Compact(c) => EitherIter::B(c.token_iter()),
        }
    }

    /// Smallest live token.
    #[must_use]
    pub fn first_token(&self) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.keys().next().copied(),
            Store::Compact(c) => c.first_token(),
        }
    }

    /// Iterates `(token, state)` pairs in ascending token order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeToken, &S)> {
        match &self.store {
            Store::Legacy { nodes, .. } => EitherIter::A(nodes.iter().map(|(&t, s)| (t, s))),
            Store::Compact(c) => EitherIter::B(c.iter()),
        }
    }

    /// Iterates node states in ascending token order.
    pub fn states(&self) -> impl Iterator<Item = &S> {
        match &self.store {
            Store::Legacy { nodes, .. } => EitherIter::A(nodes.values()),
            Store::Compact(c) => EitherIter::B(c.states()),
        }
    }

    /// Mutably iterates node states in ascending token order.
    pub fn states_mut(&mut self) -> impl Iterator<Item = &mut S> {
        match &mut self.store {
            Store::Legacy { nodes, .. } => EitherIter::A(nodes.values_mut()),
            Store::Compact(c) => EitherIter::B(c.states_mut()),
        }
    }

    /// Draws a fresh raw identifier from the allocator.
    pub fn next_raw(&mut self) -> u64 {
        self.alloc.next_raw()
    }

    /// Draws a fresh identifier uniform in `[0, space)`.
    pub fn next_in(&mut self, space: u64) -> u64 {
        self.alloc.next_in(space)
    }

    // ------------------------------------------------------------------
    // Wrapping ring searches over the token order
    // ------------------------------------------------------------------

    /// First live token `>= point`, wrapping to the smallest.
    #[must_use]
    pub fn successor_of(&self, point: u64) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes
                .range(point..)
                .next()
                .or_else(|| nodes.iter().next())
                .map(|(&t, _)| t),
            Store::Compact(c) => c.successor_of(point),
        }
    }

    /// First live token `> point`, wrapping to the smallest.
    #[must_use]
    pub fn successor_after(&self, point: u64) -> Option<NodeToken> {
        match point.checked_add(1) {
            Some(next) => self.successor_of(next),
            None => self.first_token(),
        }
    }

    /// Last live token `< point`, wrapping to the largest.
    #[must_use]
    pub fn predecessor_of(&self, point: u64) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes
                .range(..point)
                .next_back()
                .or_else(|| nodes.iter().next_back())
                .map(|(&t, _)| t),
            Store::Compact(c) => c.predecessor_of(point),
        }
    }

    /// Last live token `<= point`, wrapping to the largest.
    #[must_use]
    pub fn at_or_before(&self, point: u64) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes
                .range(..=point)
                .next_back()
                .or_else(|| nodes.iter().next_back())
                .map(|(&t, _)| t),
            Store::Compact(c) => c.at_or_before(point),
        }
    }

    /// Smallest live token in `[lo, hi]` (no wrapping).
    #[must_use]
    pub fn first_in_range(&self, lo: u64, hi: u64) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.range(lo..=hi).next().map(|(&t, _)| t),
            Store::Compact(c) => c.first_in_range(lo, hi),
        }
    }

    /// Largest live token in `[lo, hi]` (no wrapping).
    #[must_use]
    pub fn last_in_range(&self, lo: u64, hi: u64) -> Option<NodeToken> {
        match &self.store {
            Store::Legacy { nodes, .. } => nodes.range(lo..=hi).next_back().map(|(&t, _)| t),
            Store::Compact(c) => c.last_in_range(lo, hi),
        }
    }

    // ------------------------------------------------------------------
    // Query-load accounting
    // ------------------------------------------------------------------

    /// Increments the query-load counter of `node` (no-op if departed).
    pub fn count_query(&mut self, node: NodeToken) {
        self.add_queries(node, 1);
    }

    /// Adds `k` queries to `node`'s counter (no-op if departed) —
    /// the batched form used when merging per-shard load tables.
    pub fn add_queries(&mut self, node: NodeToken, k: u64) {
        match &mut self.store {
            Store::Legacy { loads, .. } => loads.add(node, k),
            Store::Compact(c) => c.add_load(node, k),
        }
    }

    /// Per-node query loads in ascending token order; one entry per
    /// live node.
    #[must_use]
    pub fn query_loads(&self) -> Vec<u64> {
        match &self.store {
            Store::Legacy { loads, .. } => loads.as_vec(),
            Store::Compact(c) => c.loads_vec(),
        }
    }

    /// Zeroes all query-load counters.
    pub fn reset_query_loads(&mut self) {
        match &mut self.store {
            Store::Legacy { loads, .. } => loads.reset(),
            Store::Compact(c) => c.reset_loads(),
        }
    }

    /// Current query-load counter of `node` (zero if departed).
    #[must_use]
    pub fn load_of(&self, node: NodeToken) -> u64 {
        match &self.store {
            Store::Legacy { loads, .. } => loads.get(node),
            Store::Compact(c) => c.load_of(node),
        }
    }

    /// Sum of all query-load counters.
    #[must_use]
    pub fn loads_total(&self) -> u64 {
        match &self.store {
            Store::Legacy { loads, .. } => loads.total(),
            Store::Compact(c) => c.loads_total(),
        }
    }

    // ------------------------------------------------------------------
    // Network conditions (message-level fault injection)
    // ------------------------------------------------------------------

    /// The active network conditions (fault plan + retry policy).
    #[must_use]
    pub fn net_conditions(&self) -> &NetConditions {
        &self.net
    }

    /// Mutable access to the network conditions — the walk engine takes
    /// lookup indices (the fault-draw keys) through this.
    pub fn net_conditions_mut(&mut self) -> &mut NetConditions {
        &mut self.net
    }

    /// Installs new network conditions, resetting the lookup-index
    /// counter.
    pub fn set_net_conditions(&mut self, net: NetConditions) {
        self.net = net;
    }

    // ------------------------------------------------------------------
    // Structured event tracing
    // ------------------------------------------------------------------

    /// The installed trace sink handle (disabled by default).
    #[must_use]
    pub fn trace_sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Installs a trace sink handle; the walk engine emits structured
    /// events through it (see [`crate::obs`]). Pass
    /// [`SinkHandle::disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    // ------------------------------------------------------------------
    // Per-phase cost accounting
    // ------------------------------------------------------------------

    /// The installed phase accountant handle (disabled by default).
    #[must_use]
    pub fn phase_accountant(&self) -> &PhaseAccountant {
        &self.accountant
    }

    /// Installs a phase accountant; the walk engine and maintenance
    /// drivers bill per-phase costs through it (see
    /// [`crate::obs::phase`]). Pass [`PhaseAccountant::disabled`] to
    /// turn accounting back off.
    pub fn set_phase_accountant(&mut self, accountant: PhaseAccountant) {
        self.accountant = accountant;
    }
}

/// What one node decides about a lookup it currently holds.
#[derive(Debug, Clone)]
pub enum StepDecision {
    /// The current node is (locally provably) where the walk stops;
    /// classify via [`SimOverlay::classify_terminal`].
    Terminate,
    /// Forward to the first live candidate, in preference order; each
    /// candidate is tagged with the phase the hop would be accounted
    /// to. Dead candidates cost one timeout each (de-duplicated within
    /// the step) and are skipped.
    Forward(Vec<(HopPhase, NodeToken)>),
}

/// An overlay expressed against the shared simulation substrate.
///
/// Implementors provide membership access, key mapping, and the pure
/// per-hop routing decision; the substrate's [`walk`] owns the
/// iterative lookup loop and the blanket [`Overlay`] impl provides the
/// harness-facing interface.
///
/// `Sync` is a supertrait because the substrate's [`ParallelExecutor`]
/// shards lookup batches across scoped threads that share `&self`;
/// node states are plain data in every overlay, so this costs nothing.
pub trait SimOverlay: Sync + 'static {
    /// Per-node routing state stored in the [`Membership`] arena.
    type State;
    /// Per-lookup walk state: the mapped key plus whatever cursor the
    /// routing algorithm threads from hop to hop. `'static` because
    /// suspended lookups ([`LookupCursor`]) box it across events; walk
    /// states are plain data in every overlay, so this costs nothing.
    type Walk: 'static;

    /// The node arena.
    fn membership(&self) -> &Membership<Self::State>;
    /// The node arena, mutably.
    fn membership_mut(&mut self) -> &mut Membership<Self::State>;

    /// Display name (e.g. `"Cycloid(7)"`).
    fn label(&self) -> String;

    /// Worst-case routing-state size per node, if the protocol bounds
    /// it by a constant.
    fn degree_limit(&self) -> Option<usize>;

    /// Maps a raw key to its identifier in this overlay's space.
    fn map_key(&self, raw_key: u64) -> u64;

    /// The live node responsible for `raw_key` (ground truth, computed
    /// from global membership), or `None` if the overlay cannot name
    /// an owner.
    fn owner_token(&self, raw_key: u64) -> Option<NodeToken>;

    /// Maximum hops before a walk is declared broken. Generous by
    /// design: only genuinely broken routing should trip it.
    fn hop_budget(&self) -> usize;

    /// Initializes the walk state for a lookup of `raw_key` starting
    /// at the live node `src`.
    fn begin_walk(&self, src: NodeToken, raw_key: u64) -> Self::Walk;

    /// The ground-truth owner of the walk's (already mapped) key.
    fn walk_owner(&self, walk: &Self::Walk) -> Option<NodeToken>;

    /// The per-hop routing decision at `cur`, using only `cur`'s own
    /// routing state (plus the walk cursor). May mutate the walk state
    /// for phase transitions that happen *before* forwarding.
    fn next_hop(&self, cur: NodeToken, walk: &mut Self::Walk) -> StepDecision;

    /// Extra candidate filter applied before the liveness check
    /// (e.g. Cycloid's no-revisit rule). Rejected candidates cost no
    /// timeout. Default: admit everything.
    fn admit(&self, walk: &Self::Walk, cur: NodeToken, cand: NodeToken) -> bool {
        let _ = (walk, cur, cand);
        true
    }

    /// Walk-state bookkeeping when the walk takes a hop `from -> to`
    /// accounted to `phase`; `timed_out` lists the dead candidates
    /// skipped in this step. Runs inline during the (read-only) walk,
    /// so it may only mutate the *walk* state — cursor advancement,
    /// visited sets. Network-state mutations (repair-on-use) belong in
    /// [`SimOverlay::repair_on_use`], which the engine defers into the
    /// walk's [`WalkEffects`]. Default: nothing.
    fn on_hop(
        &self,
        walk: &mut Self::Walk,
        from: NodeToken,
        phase: HopPhase,
        to: NodeToken,
        timed_out: &[NodeToken],
    ) {
        let _ = (walk, from, phase, to, timed_out);
    }

    /// Repair-on-use: the walk hopped `from -> to` (phase `phase`)
    /// after skipping the dead candidates in `timed_out`, and the
    /// protocol may now evict the stale entries. Called once per such
    /// hop when the walk's effects are applied — immediately after the
    /// walk under the sequential entry points, after the whole batch
    /// under [`ParallelExecutor`]. Only hops that actually skipped dead
    /// candidates are reported. Default: nothing.
    fn repair_on_use(
        &mut self,
        from: NodeToken,
        phase: HopPhase,
        to: NodeToken,
        timed_out: &[NodeToken],
    ) {
        let _ = (from, phase, to, timed_out);
    }

    /// Classifies a walk that stopped at `cur` by its own decision
    /// ([`StepDecision::Terminate`]). Default: compare against
    /// [`SimOverlay::walk_owner`].
    fn classify_terminal(&self, cur: NodeToken, walk: &Self::Walk) -> LookupOutcome {
        match self.walk_owner(walk) {
            Some(owner) if owner == cur => LookupOutcome::Found,
            Some(_) => LookupOutcome::WrongOwner,
            None => LookupOutcome::Stuck,
        }
    }

    /// Classifies a walk stranded at `cur` with no live candidate —
    /// read-only; accounting belongs in
    /// [`SimOverlay::record_exhausted`]. Default:
    /// [`LookupOutcome::Found`] when `cur` happens to be the owner,
    /// otherwise [`LookupOutcome::Stuck`].
    fn on_exhausted(&self, cur: NodeToken, walk: &Self::Walk) -> LookupOutcome {
        match self.walk_owner(walk) {
            Some(owner) if owner == cur => LookupOutcome::Found,
            _ => LookupOutcome::Stuck,
        }
    }

    /// Deferred accounting for a walk that exhausted its candidates at
    /// `terminal` (e.g. a protocol failure counter). Called when the
    /// walk's effects are applied. Default: nothing.
    fn record_exhausted(&mut self, terminal: NodeToken) {
        let _ = terminal;
    }

    /// Whether the hop budget is checked before the terminal test.
    /// Protocols that can cheaply prove local termination first
    /// (Viceroy, CAN) override this to `false`.
    fn budget_before_terminal(&self) -> bool {
        true
    }

    /// Joins one node (protocol-defined identifier draw), returning
    /// its token.
    fn node_join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken>;

    /// Graceful departure; `false` if `node` is not live.
    fn node_leave(&mut self, node: NodeToken) -> bool;

    /// Ungraceful failure; defaults to a graceful leave for protocols
    /// that do not distinguish the two.
    fn node_fail(&mut self, node: NodeToken) -> bool {
        self.node_leave(node)
    }

    /// One full stabilization round over the network.
    fn stabilize_network(&mut self);

    /// Stabilization work of a single node; defaults to a full round
    /// for protocols without a per-node refresh.
    fn stabilize_one(&mut self, node: NodeToken) {
        let _ = node;
        self.stabilize_network();
    }

    /// Audits every node's routing state (see [`crate::audit`]). Overlays
    /// with a [`crate::audit::StateAudit`] impl override this one-liner to
    /// run it; the default reports nothing checked. The blanket
    /// [`Overlay`] impl forwards [`Overlay::audit_state`] here.
    fn audit_network(&self, scope: AuditScope) -> AuditReport {
        AuditReport::new(self.label(), scope)
    }

    /// Applies a seeded corruption plan to the network's routing state
    /// (see [`crate::corrupt`]): the plan chooses the victims and the
    /// value draws, the overlay maps the plan's strategy onto its own
    /// link layout. Implementations must be deterministic in
    /// `(current state, plan)` and must not draw from any RNG stream.
    /// The default corrupts nothing — overlays without mutable routing
    /// links report zero targets.
    fn corrupt_network(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let _ = plan;
        CorruptionReport::default()
    }

    /// One node's *repair* routine: recomputes every routing entry the
    /// node's stabilizer owns from live membership and returns how many
    /// entries were actually rewritten. Repair subsumes
    /// [`SimOverlay::stabilize_one`] — on a healthy network it must be
    /// an exact no-op (zero rewrites, no other state change, no RNG
    /// draws), which is what pins goldens and repair-enabled churn runs
    /// byte-identical. The default falls back to the stabilizer and
    /// reports zero rewrites.
    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.stabilize_one(node);
        0
    }

    /// Heap bytes owned by one node's routing state beyond
    /// `size_of::<Self::State>()` — e.g. a Chord finger table's `Vec`
    /// buffer. States whose links are stored inline
    /// ([`crate::inline::InlineVec`]) report 0, the default.
    fn state_heap_bytes(&self, state: &Self::State) -> usize {
        let _ = state;
        0
    }

    /// Heap bytes of overlay-level auxiliary indexes outside the
    /// [`Membership`] arena (e.g. Cycloid's per-cycle member sets).
    /// Default: none.
    fn aux_bytes(&self) -> usize {
        0
    }

    /// Messages one maintenance pass over `node`'s routing links costs
    /// (one probe per routing entry — see the [`crate::obs::phase`]
    /// conventions). Overlays override this with their actual per-node
    /// link count; the default assumes the constant degree bound, or 1
    /// when the degree grows with the network. Must not mutate anything
    /// or draw from any RNG stream.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        let _ = node;
        self.degree_limit().map_or(1, |d| d.max(1) as u64)
    }
}

/// One hop's deferred repair-on-use record: the walk hopped
/// `from -> to` after skipping the dead candidates in `timed_out`.
/// Replayed into [`SimOverlay::repair_on_use`] by [`apply_effects`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRepair {
    /// Node whose routing entry pointed at the dead candidates.
    pub from: NodeToken,
    /// Phase the taken hop was accounted to.
    pub phase: HopPhase,
    /// The live candidate that answered.
    pub to: NodeToken,
    /// Dead candidates skipped in this step, in preference order.
    pub timed_out: Vec<NodeToken>,
}

/// Everything a mutating walk would have done in place, recorded by
/// [`walk_ref`] for deferred application via [`apply_effects`].
///
/// The trace events carry a placeholder lookup id of 0; the real
/// stream-unique id is stamped at application time so ids are handed
/// out in canonical workload order regardless of which worker thread
/// routed the walk.
#[derive(Debug, Clone, Default)]
pub struct WalkEffects {
    /// Visited nodes in visit order (source first) — one query-load
    /// increment each. Empty when the walk did not count loads.
    pub queried: Vec<NodeToken>,
    /// Hops that skipped dead candidates, for repair-on-use.
    pub repairs: Vec<HopRepair>,
    /// Terminal of an exhausted walk (no live candidate), for
    /// [`SimOverlay::record_exhausted`].
    pub exhausted: Option<NodeToken>,
    /// Trace events in emission order (empty when tracing is off).
    pub events: Vec<Event>,
    /// The walk's [`Phase::Lookup`] bill, recorded only when the
    /// overlay's [`PhaseAccountant`] was enabled at walk start (the
    /// same snapshot discipline as `events`); billed at apply time so
    /// parallel walks account in canonical workload order.
    pub bill: Option<PhaseCosts>,
}

impl WalkEffects {
    /// `true` iff applying these effects would change nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queried.is_empty()
            && self.repairs.is_empty()
            && self.exhausted.is_none()
            && self.events.is_empty()
            && self.bill.is_none()
    }
}

/// Reusable per-walk scratch buffers for the step loop. One instance
/// per worker (or per call site) avoids re-allocating the two
/// de-duplication sets and the dead-candidate list on every step —
/// see `benches/walk_throughput.rs` for the measured win.
#[derive(Debug, Default)]
pub struct WalkScratch {
    dead_seen: HashSet<NodeToken>,
    unreachable_seen: HashSet<NodeToken>,
    step_dead: Vec<NodeToken>,
}

impl WalkScratch {
    /// Fresh (empty) scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Read-only lookup from `src` for `raw_key`: routes against `&T` and
/// returns the trace plus the deferred [`WalkEffects`]. `lookup_index`
/// keys the fault draws (see
/// [`crate::net::NetConditions::take_lookup_index`]). When
/// `count_loads` is set, visited nodes are recorded for query-load
/// accounting (the §4.2 congestion measure counts lookup traffic only,
/// so control traffic passes `false`).
pub fn walk_ref<T: SimOverlay + ?Sized>(
    net: &T,
    src: NodeToken,
    raw_key: u64,
    count_loads: bool,
    lookup_index: u64,
) -> (LookupTrace, WalkEffects) {
    let mut scratch = WalkScratch::new();
    walk_ref_with_scratch(net, src, raw_key, count_loads, lookup_index, &mut scratch)
}

/// Like [`walk_ref`], reusing the caller's scratch buffers across
/// walks (the parallel executor keeps one per worker).
pub fn walk_ref_with_scratch<T: SimOverlay + ?Sized>(
    net: &T,
    src: NodeToken,
    raw_key: u64,
    count_loads: bool,
    lookup_index: u64,
    scratch: &mut WalkScratch,
) -> (LookupTrace, WalkEffects) {
    assert!(
        net.membership().contains(src),
        "lookup source {src} is not live"
    );
    let state = net.begin_walk(src, raw_key);
    walk_ref_inner(
        net,
        src,
        state,
        count_loads,
        lookup_index,
        Some(raw_key),
        scratch,
    )
}

/// Like [`walk_ref`], but with an already-initialized walk state — the
/// read-only counterpart of [`walk_from`].
pub fn walk_ref_from<T: SimOverlay + ?Sized>(
    net: &T,
    src: NodeToken,
    state: T::Walk,
    count_loads: bool,
    lookup_index: u64,
) -> (LookupTrace, WalkEffects) {
    let mut scratch = WalkScratch::new();
    walk_ref_inner(
        net,
        src,
        state,
        count_loads,
        lookup_index,
        None,
        &mut scratch,
    )
}

/// Performs one lookup from `src` for `raw_key`, walking the overlay
/// hop by hop using only each node's private routing state, and
/// returns the full trace. Exactly [`walk_ref`] followed by
/// [`apply_effects`], so query loads, repair-on-use, and trace events
/// land immediately. When `count_loads` is set, every visited node's
/// query-load counter is incremented.
pub fn walk<T: SimOverlay + ?Sized>(
    net: &mut T,
    src: NodeToken,
    raw_key: u64,
    count_loads: bool,
) -> LookupTrace {
    let index = net
        .membership_mut()
        .net_conditions_mut()
        .take_lookup_index();
    let (trace, fx) = walk_ref(&*net, src, raw_key, count_loads, index);
    apply_effects(net, fx);
    trace
}

/// Like [`walk`], but with an already-initialized walk state — the
/// entry point for overlays exposing route-to-point APIs whose key is
/// pre-mapped.
pub fn walk_from<T: SimOverlay + ?Sized>(
    net: &mut T,
    src: NodeToken,
    state: T::Walk,
    count_loads: bool,
) -> LookupTrace {
    let index = net
        .membership_mut()
        .net_conditions_mut()
        .take_lookup_index();
    let (trace, fx) = walk_ref_from(&*net, src, state, count_loads, index);
    apply_effects(net, fx);
    trace
}

/// Plays a [`WalkEffects`] record back against the overlay: query-load
/// increments, repair-on-use, exhaustion accounting, and trace-event
/// emission (stamping the stream-unique lookup id). Application order
/// across walks defines the canonical byte stream, so callers must
/// apply records in workload order.
pub fn apply_effects<T: SimOverlay + ?Sized>(net: &mut T, fx: WalkEffects) {
    let WalkEffects {
        queried,
        repairs,
        exhausted,
        events,
        bill,
    } = fx;
    for &node in &queried {
        net.membership_mut().count_query(node);
    }
    // Repair-on-use costs are billed to `Repair`, not `Lookup`: the
    // lookup only *detected* the stale entries; rewriting them is
    // maintenance work (one message per evicted entry).
    if !repairs.is_empty() {
        let entries: u64 = repairs.iter().map(|r| r.timed_out.len() as u64).sum();
        net.membership()
            .phase_accountant()
            .bill(Phase::Repair, || PhaseCosts {
                calls: repairs.len() as u64,
                msgs: entries,
                repair_entries: entries,
                ..PhaseCosts::default()
            });
    }
    for r in &repairs {
        net.repair_on_use(r.from, r.phase, r.to, &r.timed_out);
    }
    if let Some(terminal) = exhausted {
        net.record_exhausted(terminal);
    }
    if let Some(costs) = bill {
        net.membership()
            .phase_accountant()
            .bill(Phase::Lookup, || costs);
    }
    if !events.is_empty() {
        let sink = net.membership().trace_sink().clone();
        let id = sink.next_lookup_id();
        for mut event in events {
            event.set_lookup_id(id);
            sink.emit(move || event);
        }
    }
}

/// The read-only iterative walk loop shared by every entry point: a
/// [`WalkCursor`] stepped to completion in one call. `raw_key` is
/// purely informational (it tags the `LookupStart` event); routing
/// reads only the walk state.
fn walk_ref_inner<T: SimOverlay + ?Sized>(
    net: &T,
    src: NodeToken,
    state: T::Walk,
    count_loads: bool,
    lookup_index: u64,
    raw_key: Option<u64>,
    scratch: &mut WalkScratch,
) -> (LookupTrace, WalkEffects) {
    let mut cursor = WalkCursor::begin(net, src, state, count_loads, lookup_index, raw_key);
    while let CursorStep::Forwarded { .. } = cursor.step(net, scratch) {}
    cursor.finish()
}

/// One advance of a suspended walk (see [`WalkCursor::step`]), tagged
/// with the virtual time the step consumed: stale-entry waits, retry
/// backoff, and the answering message's round trip, exactly as billed
/// to [`NetCosts::latency_us`]. A discrete-event driver schedules the
/// walk's resumption `delay_us` after the step — which is why reported
/// lookup latency and virtual-clock elapsed time agree *by
/// construction* under the continuous engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorStep {
    /// The walk took one hop; it can step again once `delay_us` of
    /// simulated time has elapsed.
    Forwarded {
        /// Virtual-time cost of the step, in µs.
        delay_us: u64,
    },
    /// The walk terminated during this step (terminal reached, budget
    /// exhausted, or no live candidate answered) after `delay_us` of
    /// simulated waiting.
    Finished {
        /// Virtual-time cost of the final step, in µs.
        delay_us: u64,
    },
}

/// A lookup suspended between hops: the walk engine's loop state made
/// first-class so a discrete-event driver can interleave many walks on
/// one virtual clock, resuming each when its reply event fires.
///
/// [`walk_ref`] and every sequential entry point drive this same
/// cursor to completion in a tight loop, so suspended and inline walks
/// are one implementation — byte-identical traces by construction.
#[derive(Debug)]
pub struct WalkCursor<W> {
    state: W,
    cur: NodeToken,
    hops: Vec<HopPhase>,
    timeouts: u32,
    costs: NetCosts,
    fx: WalkEffects,
    outcome: Option<LookupOutcome>,
    lookup_index: u64,
    count_loads: bool,
    record_events: bool,
    bill_phase: bool,
    conditions: NetConditions,
    budget: usize,
}

impl<W> WalkCursor<W> {
    /// Starts a walk at the live node `src` with an initialized walk
    /// state. Snapshots the overlay's network conditions and sink
    /// enablement; `lookup_index` keys the fault draws.
    ///
    /// # Panics
    /// Panics if `src` is not live.
    pub fn begin<T: SimOverlay<Walk = W> + ?Sized>(
        net: &T,
        src: NodeToken,
        state: W,
        count_loads: bool,
        lookup_index: u64,
        raw_key: Option<u64>,
    ) -> Self {
        assert!(
            net.membership().contains(src),
            "lookup source {src} is not live"
        );
        // Record events only when a sink is installed, preserving the
        // zero-cost-when-disabled guarantee. Ids are stamped at apply
        // time. Phase billing snapshots enablement the same way.
        let record_events = net.membership().trace_sink().is_enabled();
        let bill_phase = net.membership().phase_accountant().is_enabled();
        let conditions = *net.membership().net_conditions();
        let mut fx = WalkEffects::default();
        if record_events {
            fx.events.push(Event::LookupStart {
                lookup: 0,
                src,
                key: raw_key,
            });
        }
        if count_loads {
            fx.queried.push(src);
        }
        Self {
            state,
            cur: src,
            hops: Vec::new(),
            timeouts: 0,
            costs: NetCosts::default(),
            fx,
            outcome: None,
            lookup_index,
            count_loads,
            record_events,
            bill_phase,
            conditions,
            budget: net.hop_budget(),
        }
    }

    /// The node currently holding the lookup (the terminal, once
    /// finished).
    #[must_use]
    pub fn current(&self) -> NodeToken {
        self.cur
    }

    /// `true` once the walk has terminated.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// Strands the walk: its current holder departed mid-flight (a
    /// hazard that only exists once walks are suspended on a virtual
    /// clock), so the lookup can make no further progress and is
    /// classified [`LookupOutcome::Stuck`]. No-op if already finished.
    pub fn strand(&mut self) {
        if self.outcome.is_none() {
            self.outcome = Some(LookupOutcome::Stuck);
        }
    }

    /// Advances the walk by exactly one iteration of the lookup loop:
    /// one routing decision at the current node, skipping dead and
    /// unreachable candidates (billing their waits) until one answers.
    ///
    /// # Panics
    /// Panics if the walk already finished.
    pub fn step<T: SimOverlay<Walk = W> + ?Sized>(
        &mut self,
        net: &T,
        scratch: &mut WalkScratch,
    ) -> CursorStep {
        assert!(self.outcome.is_none(), "stepping a finished walk");
        let before = self.costs.latency_us;
        let outcome = self.step_inner(net, scratch);
        let delay_us = self.costs.latency_us - before;
        match outcome {
            Some(o) => {
                self.outcome = Some(o);
                CursorStep::Finished { delay_us }
            }
            None => CursorStep::Forwarded { delay_us },
        }
    }

    /// One loop iteration; `Some` terminates the walk.
    fn step_inner<T: SimOverlay<Walk = W> + ?Sized>(
        &mut self,
        net: &T,
        scratch: &mut WalkScratch,
    ) -> Option<LookupOutcome> {
        if net.budget_before_terminal() && self.hops.len() >= self.budget {
            return Some(LookupOutcome::HopBudgetExhausted);
        }
        let candidates = match net.next_hop(self.cur, &mut self.state) {
            StepDecision::Terminate => {
                return Some(net.classify_terminal(self.cur, &self.state));
            }
            StepDecision::Forward(candidates) => candidates,
        };
        if !net.budget_before_terminal() && self.hops.len() >= self.budget {
            return Some(LookupOutcome::HopBudgetExhausted);
        }
        let mut next: Option<(HopPhase, NodeToken)> = None;
        // A stale entry costs one timeout; trying the same dead
        // node twice within one step does not (the querier
        // remembers who just failed to answer). The same memory
        // covers live candidates whose messages the fault plan
        // swallowed (`unreachable_seen`): one exhausted retry
        // cycle per step, never two.
        scratch.dead_seen.clear();
        scratch.unreachable_seen.clear();
        scratch.step_dead.clear();
        for (phase, cand) in candidates {
            if cand == self.cur || !net.admit(&self.state, self.cur, cand) {
                continue;
            }
            if !net.membership().contains(cand) {
                if scratch.dead_seen.insert(cand) {
                    self.timeouts += 1;
                    self.costs.absorb_stale(self.conditions.stale_wait_us());
                    scratch.step_dead.push(cand);
                    if self.record_events {
                        self.fx.events.push(Event::Timeout {
                            lookup: 0,
                            target: cand,
                            kind: TimeoutKind::Stale,
                        });
                    }
                }
                continue;
            }
            if scratch.unreachable_seen.contains(&cand) {
                continue;
            }
            // The candidate is live: contact it under the fault
            // plan, retrying per the policy. Draws are keyed by
            // (lookup_index, candidate, attempt), so the outcome
            // is independent of every other contact.
            let contact = self.conditions.contact(self.lookup_index, cand);
            self.costs.absorb(&contact);
            if self.record_events && contact.attempts > 1 {
                self.fx.events.push(Event::Retry {
                    lookup: 0,
                    target: cand,
                    attempts: contact.attempts,
                });
            }
            if !contact.delivered {
                // A message timeout, not a stale entry: the node
                // is alive, so it must NOT be reported through
                // `timed_out` — repair-on-use evicting it would
                // let the fault layer mutate routing state.
                if self.record_events {
                    self.fx.events.push(Event::Timeout {
                        lookup: 0,
                        target: cand,
                        kind: TimeoutKind::Message,
                    });
                }
                scratch.unreachable_seen.insert(cand);
                continue;
            }
            next = Some((phase, cand));
            break;
        }
        match next {
            Some((phase, cand)) => {
                net.on_hop(&mut self.state, self.cur, phase, cand, &scratch.step_dead);
                if !scratch.step_dead.is_empty() {
                    self.fx.repairs.push(HopRepair {
                        from: self.cur,
                        phase,
                        to: cand,
                        timed_out: scratch.step_dead.clone(),
                    });
                }
                if self.record_events {
                    self.fx.events.push(Event::Hop {
                        lookup: 0,
                        index: self.hops.len() as u32,
                        from: self.cur,
                        to: cand,
                        phase,
                    });
                }
                self.hops.push(phase);
                self.cur = cand;
                if self.count_loads {
                    self.fx.queried.push(self.cur);
                }
                None
            }
            None => {
                self.fx.exhausted = Some(self.cur);
                Some(net.on_exhausted(self.cur, &self.state))
            }
        }
    }

    /// Consumes the finished walk, emitting the `LookupEnd` event and
    /// returning the trace plus the deferred effects.
    ///
    /// # Panics
    /// Panics if the walk has not finished.
    #[must_use]
    pub fn finish(self) -> (LookupTrace, WalkEffects) {
        let Self {
            cur,
            hops,
            timeouts,
            costs,
            mut fx,
            outcome,
            record_events,
            bill_phase,
            ..
        } = self;
        let outcome = outcome.expect("finishing an unfinished walk");
        if record_events {
            fx.events.push(Event::LookupEnd {
                lookup: 0,
                outcome,
                terminal: cur,
                hops: hops.len() as u32,
                timeouts,
                latency_us: costs.latency_us,
            });
        }
        if bill_phase {
            // Message convention (see `crate::obs::phase`): one per hop
            // taken, one per extra send attempt, one per timed-out
            // contact (stale entry or exhausted retries).
            let retries = u64::from(costs.retries);
            let total_timeouts = u64::from(timeouts) + u64::from(costs.msg_timeouts);
            fx.bill = Some(PhaseCosts {
                calls: 1,
                msgs: hops.len() as u64 + retries + total_timeouts,
                retries,
                timeouts: total_timeouts,
                repair_entries: 0,
                time_us: costs.latency_us,
            });
        }
        (
            LookupTrace {
                hops,
                timeouts,
                outcome,
                terminal: cur,
                net: costs,
            },
            fx,
        )
    }
}

/// A suspended lookup with its overlay type erased — what
/// [`Overlay::lookup_begin`] hands to drivers that only hold a
/// `&mut dyn Overlay` (the continuous-time churn engine). Wraps a
/// [`WalkCursor`] plus its scratch buffers.
pub trait LookupCursor {
    /// The node currently holding the lookup.
    fn current(&self) -> NodeToken;
    /// `true` once the walk has terminated.
    fn is_finished(&self) -> bool;
    /// Advances the walk by one step against the overlay's *current*
    /// state (membership changes since the last step are observed,
    /// exactly as a real in-flight lookup would observe them).
    ///
    /// # Panics
    /// Panics if `net` is not the overlay that created this cursor, or
    /// if the walk already finished.
    fn step(&mut self, net: &dyn Overlay) -> CursorStep;
    /// Strands the walk (its current holder departed); see
    /// [`WalkCursor::strand`].
    fn strand(&mut self);
    /// Consumes the finished walk, returning the trace and the effects
    /// to replay via [`Overlay::apply_walk_effects`].
    fn finish(self: Box<Self>) -> (LookupTrace, WalkEffects);
}

/// The one [`LookupCursor`] implementation: a typed [`WalkCursor`]
/// that recovers its concrete overlay through [`Overlay::as_any`].
struct TypedCursor<T: SimOverlay> {
    cursor: WalkCursor<T::Walk>,
    scratch: WalkScratch,
}

impl<T: SimOverlay> LookupCursor for TypedCursor<T> {
    fn current(&self) -> NodeToken {
        self.cursor.current()
    }

    fn is_finished(&self) -> bool {
        self.cursor.is_finished()
    }

    fn step(&mut self, net: &dyn Overlay) -> CursorStep {
        let net = net
            .as_any()
            .downcast_ref::<T>()
            .expect("cursor stepped against a different overlay");
        self.cursor.step(net, &mut self.scratch)
    }

    fn strand(&mut self) {
        self.cursor.strand();
    }

    fn finish(self: Box<Self>) -> (LookupTrace, WalkEffects) {
        self.cursor.finish()
    }
}

/// Deterministic sharded lookup executor: splits a batch of `(src,
/// raw_key)` requests into contiguous chunks, routes every chunk on a
/// scoped worker thread against the *same* membership snapshot
/// (`&T`, via [`walk_ref_with_scratch`]), then applies the
/// [`WalkEffects`] in canonical workload order.
///
/// Determinism: fault draws are keyed by the lookup's reserved index
/// (`base + i`), query loads are commutative counter increments, and
/// repairs / failure accounting / trace events are applied strictly in
/// request order after all routing is done — so aggregates, load
/// tables, and event streams are bit-identical for any `jobs` value,
/// including 1.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    jobs: usize,
}

impl ParallelExecutor {
    /// An executor using up to `jobs` worker threads (at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// An executor sized to the machine's available parallelism.
    #[must_use]
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker cap.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Routes `reqs` (pairs of source token and raw key) and returns
    /// the traces in request order. All walks observe the membership as
    /// it is on entry; effects (query loads, repair-on-use, failure
    /// accounting, trace events) are applied in request order before
    /// returning.
    pub fn run<T: SimOverlay + ?Sized>(
        &self,
        net: &mut T,
        reqs: &[(NodeToken, u64)],
        count_loads: bool,
    ) -> Vec<LookupTrace> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let base = net
            .membership_mut()
            .net_conditions_mut()
            .reserve_lookup_indices(reqs.len() as u64);
        let workers = self.jobs.min(reqs.len());
        let chunk = reqs.len().div_ceil(workers);
        struct Shard {
            /// Per-node query-count deltas, folded in the worker so the
            /// bulky per-walk `queried` vectors never accumulate.
            loads: BTreeMap<NodeToken, u64>,
            walks: Vec<(LookupTrace, WalkEffects)>,
        }
        let shared: &T = net;
        let shards: Vec<Shard> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = reqs
                .chunks(chunk)
                .map(|slice| {
                    let offset = (slice.as_ptr() as usize - reqs.as_ptr() as usize)
                        / std::mem::size_of::<(NodeToken, u64)>();
                    scope.spawn(move |_| {
                        let mut scratch = WalkScratch::new();
                        let mut loads: BTreeMap<NodeToken, u64> = BTreeMap::new();
                        let mut walks = Vec::with_capacity(slice.len());
                        for (k, &(src, raw_key)) in slice.iter().enumerate() {
                            let index = base + (offset + k) as u64;
                            let (trace, mut fx) = walk_ref_with_scratch(
                                shared,
                                src,
                                raw_key,
                                count_loads,
                                index,
                                &mut scratch,
                            );
                            for node in fx.queried.drain(..) {
                                *loads.entry(node).or_insert(0) += 1;
                            }
                            walks.push((trace, fx));
                        }
                        Shard { loads, walks }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lookup worker panicked"))
                .collect()
        })
        .expect("worker pool");
        // Canonical merge: shards cover contiguous request ranges in
        // order, so walking them front to back is workload order.
        let mut traces = Vec::with_capacity(reqs.len());
        for shard in shards {
            for (node, count) in shard.loads {
                net.membership_mut().add_queries(node, count);
            }
            for (trace, fx) in shard.walks {
                apply_effects(net, fx);
                traces.push(trace);
            }
        }
        traces
    }
}

impl<T: SimOverlay> Overlay for T {
    fn name(&self) -> String {
        self.label()
    }

    fn len(&self) -> usize {
        self.membership().len()
    }

    fn degree_bound(&self) -> Option<usize> {
        self.degree_limit()
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        self.membership().tokens()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        let n = self.membership().len();
        if n == 0 {
            return None;
        }
        let i = (rng.next_u64() % n as u64) as usize;
        self.membership().token_at(i)
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        self.map_key(raw_key)
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        self.owner_token(raw_key)
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        walk(self, src, raw_key, true)
    }

    fn lookup_batch(&mut self, reqs: &[(NodeToken, u64)], jobs: usize) -> Vec<LookupTrace> {
        ParallelExecutor::new(jobs).run(self, reqs, true)
    }

    fn join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.node_join(rng)
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        self.node_leave(node)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        self.node_fail(node)
    }

    fn stabilize(&mut self) {
        self.stabilize_network();
    }

    fn stabilize_node(&mut self, node: NodeToken) {
        self.stabilize_one(node);
    }

    fn audit_state(&self, scope: AuditScope) -> AuditReport {
        self.audit_network(scope)
    }

    fn corrupt_state(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        self.corrupt_network(plan)
    }

    fn repair_node(&mut self, node: NodeToken) -> u64 {
        self.repair_step(node)
    }

    fn query_loads(&self) -> Vec<u64> {
        self.membership().query_loads()
    }

    fn reset_query_loads(&mut self) {
        self.membership_mut().reset_query_loads();
    }

    fn state_bytes(&self) -> usize {
        let m = self.membership();
        let heap: usize = m.states().map(|s| self.state_heap_bytes(s)).sum();
        m.store_bytes() + heap + self.aux_bytes()
    }

    fn net_conditions(&self) -> NetConditions {
        *self.membership().net_conditions()
    }

    fn set_net_conditions(&mut self, net: NetConditions) {
        self.membership_mut().set_net_conditions(net);
    }

    fn trace_sink(&self) -> SinkHandle {
        self.membership().trace_sink().clone()
    }

    fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.membership_mut().set_trace_sink(sink);
    }

    fn phase_accountant(&self) -> PhaseAccountant {
        self.membership().phase_accountant().clone()
    }

    fn set_phase_accountant(&mut self, acct: PhaseAccountant) {
        self.membership_mut().set_phase_accountant(acct);
    }

    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        SimOverlay::maintenance_msgs(self, node)
    }

    fn contains(&self, node: NodeToken) -> bool {
        self.membership().contains(node)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn lookup_begin(&mut self, src: NodeToken, raw_key: u64) -> Box<dyn LookupCursor> {
        let index = self
            .membership_mut()
            .net_conditions_mut()
            .take_lookup_index();
        let state = self.begin_walk(src, raw_key);
        let cursor = WalkCursor::begin(&*self, src, state, true, index, Some(raw_key));
        Box::new(TypedCursor::<Self> {
            cursor,
            scratch: WalkScratch::new(),
        })
    }

    fn apply_walk_effects(&mut self, fx: WalkEffects) {
        apply_effects(self, fx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal substrate client: a ring where each node stores the
    /// successor pointer it had at insertion time and never repairs it,
    /// so departures produce stale entries (timeouts) with the global
    /// successor as fallback — enough to exercise every walk feature.
    struct StaleRing {
        members: Membership<u64>,
        space: u64,
    }

    impl StaleRing {
        fn with_tokens(tokens: &[u64], space: u64) -> Self {
            let mut members: Membership<u64> = Membership::new(0);
            for &t in tokens {
                members.insert(t, t);
            }
            let snapshot: Vec<u64> = members.tokens();
            for &t in &snapshot {
                let succ = members.successor_after(t).unwrap();
                *members.get_mut(t).unwrap() = succ;
            }
            Self { members, space }
        }
    }

    impl SimOverlay for StaleRing {
        type State = u64;
        type Walk = u64;

        fn membership(&self) -> &Membership<u64> {
            &self.members
        }
        fn membership_mut(&mut self) -> &mut Membership<u64> {
            &mut self.members
        }
        fn label(&self) -> String {
            "stale-ring".into()
        }
        fn degree_limit(&self) -> Option<usize> {
            Some(1)
        }
        fn map_key(&self, raw_key: u64) -> u64 {
            raw_key % self.space
        }
        fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
            self.members.successor_of(self.map_key(raw_key))
        }
        fn hop_budget(&self) -> usize {
            2 * self.members.len() + 4
        }
        fn begin_walk(&self, _src: NodeToken, raw_key: u64) -> u64 {
            self.map_key(raw_key)
        }
        fn walk_owner(&self, walk: &u64) -> Option<NodeToken> {
            self.members.successor_of(*walk)
        }
        fn next_hop(&self, cur: NodeToken, walk: &mut u64) -> StepDecision {
            if self.members.successor_of(*walk) == Some(cur) {
                return StepDecision::Terminate;
            }
            // Prefer the (possibly stale) stored pointer, then the
            // true successor as the repair fallback.
            let stored = *self.members.get(cur).unwrap();
            let live = self.members.successor_after(cur).unwrap();
            StepDecision::Forward(vec![
                (HopPhase::Successor, stored),
                (HopPhase::Successor, live),
            ])
        }
        fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
            None
        }
        fn node_leave(&mut self, node: NodeToken) -> bool {
            self.members.remove(node).is_some()
        }
        fn stabilize_network(&mut self) {}
    }

    #[test]
    fn membership_tracks_loads_in_lockstep() {
        let mut m: Membership<()> = Membership::new(1);
        m.insert(5, ());
        m.insert(2, ());
        m.insert(9, ());
        assert_eq!(m.tokens(), vec![2, 5, 9]);
        assert_eq!(m.query_loads(), vec![0, 0, 0]);
        m.count_query(5);
        m.count_query(5);
        m.count_query(7); // untracked: no-op
        assert_eq!(m.query_loads(), vec![0, 2, 0]);
        assert!(m.remove(5).is_some());
        assert_eq!(m.query_loads(), vec![0, 0], "counter departs with node");
        m.insert(5, ());
        assert_eq!(m.load_of(5), 0, "rejoin starts at zero");
        m.reset_query_loads();
        assert_eq!(m.loads_total(), 0);
    }

    #[test]
    fn ring_searches_wrap() {
        let mut m: Membership<()> = Membership::new(2);
        for t in [10u64, 20, 30] {
            m.insert(t, ());
        }
        assert_eq!(m.successor_of(20), Some(20));
        assert_eq!(m.successor_of(31), Some(10), "wraps forward");
        assert_eq!(m.successor_after(30), Some(10));
        assert_eq!(m.successor_after(u64::MAX), Some(10));
        assert_eq!(m.predecessor_of(10), Some(30), "wraps backward");
        assert_eq!(m.at_or_before(20), Some(20));
        assert_eq!(m.at_or_before(5), Some(30));
    }

    #[test]
    fn walk_reaches_owner_and_counts_loads() {
        let mut net = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let t = walk(&mut net, 0, 40, true);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.terminal, 48);
        assert_eq!(t.timeouts, 0);
        assert_eq!(t.hops.len(), 3);
        // Every visited node (source included) counted once.
        assert_eq!(net.members.query_loads(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn stale_pointers_cost_one_timeout_each_step() {
        let mut net = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        assert!(net.node_leave(16));
        let t = walk(&mut net, 0, 40, true);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.terminal, 48);
        assert_eq!(t.timeouts, 1, "one stale hop through the departed 16");
    }

    #[test]
    fn quiet_walks_leave_loads_untouched() {
        let mut net = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let state = net.begin_walk(0, 40);
        let t = walk_from(&mut net, 0, state, false);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(net.members.loads_total(), 0);
    }

    #[test]
    fn blanket_overlay_impl_drives_the_substrate() {
        let mut net: Box<dyn Overlay> = Box::new(StaleRing::with_tokens(&[3, 7, 11], 16));
        assert_eq!(net.name(), "stale-ring");
        assert_eq!(net.len(), 3);
        assert_eq!(net.degree_bound(), Some(1));
        assert_eq!(net.node_tokens(), vec![3, 7, 11]);
        let t = net.lookup(3, 9);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(Some(t.terminal), net.owner_of(9));
        assert_eq!(
            net.query_loads().iter().sum::<u64>() as usize,
            t.path_len() + 1
        );
        net.reset_query_loads();
        assert_eq!(net.query_loads(), vec![0, 0, 0]);
        assert!(net.leave(7));
        assert_eq!(net.len(), 2);
        let mut rng = crate::rng::stream(1, "sim-test");
        let pick = net.random_node(&mut rng).unwrap();
        assert!(net.node_tokens().contains(&pick));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A two-node ring whose key owner keeps moving is impossible,
        // so force exhaustion by shrinking the budget via a wrapper.
        struct Tiny(StaleRing);
        impl SimOverlay for Tiny {
            type State = u64;
            type Walk = u64;
            fn membership(&self) -> &Membership<u64> {
                self.0.membership()
            }
            fn membership_mut(&mut self) -> &mut Membership<u64> {
                self.0.membership_mut()
            }
            fn label(&self) -> String {
                "tiny".into()
            }
            fn degree_limit(&self) -> Option<usize> {
                None
            }
            fn map_key(&self, raw_key: u64) -> u64 {
                self.0.map_key(raw_key)
            }
            fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
                self.0.owner_token(raw_key)
            }
            fn hop_budget(&self) -> usize {
                1
            }
            fn begin_walk(&self, src: NodeToken, raw_key: u64) -> u64 {
                self.0.begin_walk(src, raw_key)
            }
            fn walk_owner(&self, walk: &u64) -> Option<NodeToken> {
                self.0.walk_owner(walk)
            }
            fn next_hop(&self, cur: NodeToken, walk: &mut u64) -> StepDecision {
                self.0.next_hop(cur, walk)
            }
            fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
                None
            }
            fn node_leave(&mut self, node: NodeToken) -> bool {
                self.0.node_leave(node)
            }
            fn stabilize_network(&mut self) {}
        }
        let mut net = Tiny(StaleRing::with_tokens(&[0, 16, 32, 48], 64));
        let t = walk(&mut net, 0, 40, true);
        assert_eq!(t.outcome, LookupOutcome::HopBudgetExhausted);
        assert_eq!(t.path_len(), 1, "budget of one hop");
    }

    use crate::net::{DelayModel, FaultPlan, NetConditions, RetryPolicy};

    #[test]
    fn walk_emits_structured_events_matching_the_trace() {
        use crate::obs::RingBufferSink;
        use std::sync::{Arc, Mutex};
        let mut net = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        assert!(net.node_leave(16));
        let ring = Arc::new(Mutex::new(RingBufferSink::new(256)));
        net.membership_mut()
            .set_trace_sink(SinkHandle::new(Arc::clone(&ring)));
        let trace = walk(&mut net, 0, 40, true);
        let events = ring.lock().unwrap().snapshot();
        // Exactly one lookup: start, per-hop, one stale timeout, end.
        assert!(matches!(
            events.first(),
            Some(Event::LookupStart {
                src: 0,
                key: Some(40),
                ..
            })
        ));
        let hop_events: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Hop {
                    index, from, to, ..
                } => Some((*index, *from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(hop_events.len(), trace.path_len());
        for (i, window) in hop_events.windows(2).enumerate() {
            assert_eq!(window[0].0 as usize, i, "hop indices are sequential");
            assert_eq!(window[0].2, window[1].1, "hops chain from -> to");
        }
        let stale = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Timeout {
                        kind: TimeoutKind::Stale,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stale as u32, trace.timeouts);
        match events.last() {
            Some(Event::LookupEnd {
                outcome,
                terminal,
                hops,
                timeouts,
                ..
            }) => {
                assert_eq!(*outcome, trace.outcome);
                assert_eq!(*terminal, trace.terminal);
                assert_eq!(*hops as usize, trace.path_len());
                assert_eq!(*timeouts, trace.timeouts);
            }
            other => panic!("last event should be LookupEnd, got {other:?}"),
        }
    }

    #[test]
    fn tracing_does_not_change_routing() {
        use crate::obs::NullSink;
        let run = |sink: Option<SinkHandle>| {
            let mut ring = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
            assert!(ring.node_leave(16));
            if let Some(s) = sink {
                ring.membership_mut().set_trace_sink(s);
            }
            (0..24u64)
                .map(|key| walk(&mut ring, 0, key, true))
                .collect::<Vec<_>>()
        };
        let silent = run(None);
        let traced = run(Some(SinkHandle::new(NullSink)));
        for (a, b) in silent.iter().zip(&traced) {
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.terminal, b.terminal);
            assert_eq!(a.timeouts, b.timeouts);
            assert_eq!(a.net, b.net);
        }
    }

    #[test]
    fn ideal_network_walk_has_zero_net_costs() {
        let mut net = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let t = walk(&mut net, 0, 40, true);
        assert_eq!(t.net, NetCosts::default());
    }

    #[test]
    fn zero_loss_with_delay_keeps_hops_identical_but_bills_latency() {
        let mut ideal = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let baseline = walk(&mut ideal, 0, 40, true);

        let mut delayed = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let plan = FaultPlan {
            seed: 11,
            loss: 0.0,
            delay: DelayModel::Uniform(10_000, 30_000),
            duplicate: 0.0,
        };
        delayed
            .membership_mut()
            .set_net_conditions(NetConditions::new(plan, RetryPolicy::standard()));
        let t = walk(&mut delayed, 0, 40, true);
        assert_eq!(t.hops, baseline.hops, "delay must not change routing");
        assert_eq!(t.outcome, baseline.outcome);
        assert_eq!(t.net.retries, 0);
        assert_eq!(t.net.msg_timeouts, 0);
        let hops = t.path_len() as u64;
        assert!(
            t.net.latency_us >= hops * 10_000 && t.net.latency_us <= hops * 30_000,
            "one RTT draw per hop, within the delay bounds"
        );
    }

    #[test]
    fn lossy_walk_is_deterministic_and_counts_retries() {
        let run = || {
            let mut ring = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
            let plan = FaultPlan {
                seed: 7,
                loss: 0.4,
                delay: DelayModel::Constant(1_000),
                duplicate: 0.1,
            };
            ring.membership_mut()
                .set_net_conditions(NetConditions::new(plan, RetryPolicy::standard()));
            let mut traces = Vec::new();
            for key in 0..32u64 {
                traces.push(walk(&mut ring, 0, key, false));
            }
            traces
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hops, y.hops);
            assert_eq!(x.net, y.net);
        }
        let retries: u32 = a.iter().map(|t| t.net.retries).sum();
        assert!(retries > 0, "40% loss over 32 walks must trigger retries");
    }

    #[test]
    fn total_loss_strands_the_source_without_mutating_state() {
        let mut ring = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        let before: Vec<u64> = ring.members.tokens();
        let plan = FaultPlan {
            seed: 3,
            loss: 1.0,
            delay: DelayModel::Constant(0),
            duplicate: 0.0,
        };
        let retry = RetryPolicy::standard();
        ring.membership_mut()
            .set_net_conditions(NetConditions::new(plan, retry));
        let t = walk(&mut ring, 0, 40, true);
        assert_eq!(t.outcome, LookupOutcome::Stuck);
        assert_eq!(t.path_len(), 0, "no message ever delivered");
        assert_eq!(t.timeouts, 0, "live-node losses are not stale timeouts");
        // Each distinct candidate is tried exactly once per step, and each
        // failed contact burns exactly max_attempts sends.
        assert_eq!(t.net.retries, t.net.msg_timeouts * (retry.max_attempts - 1));
        assert!(t.net.msg_timeouts > 0);
        assert_eq!(
            ring.members.tokens(),
            before,
            "faults never touch membership"
        );
    }

    #[test]
    fn stale_entries_bill_a_full_retry_cycle_of_latency() {
        let mut ring = StaleRing::with_tokens(&[0, 16, 32, 48], 64);
        assert!(ring.node_leave(16));
        let retry = RetryPolicy::standard();
        ring.membership_mut().set_net_conditions(NetConditions::new(
            FaultPlan {
                seed: 5,
                loss: 0.0,
                delay: DelayModel::Constant(0),
                duplicate: 0.0,
            },
            retry,
        ));
        let t = walk(&mut ring, 0, 40, true);
        assert_eq!(t.timeouts, 1);
        assert_eq!(t.net.retries, 0, "stale contacts are not message retries");
        assert_eq!(
            t.net.latency_us,
            retry.give_up_us(),
            "the one dead contact costs one exhausted retry cycle"
        );
    }

    #[test]
    fn token_at_tracks_sorted_order_through_churn() {
        // `random_node` draws an index and resolves it with `token_at`;
        // the O(1) dense mirror must agree with the sorted token list
        // (what the old `nth(i)` scan returned) after any interleaving
        // of joins and departures, so the draw sequence is unchanged.
        let mut m: Membership<u64> = Membership::new(9);
        let check = |m: &Membership<u64>| {
            let sorted = m.tokens();
            for (i, &t) in sorted.iter().enumerate() {
                assert_eq!(m.token_at(i), Some(t), "index {i}");
            }
            assert_eq!(m.token_at(sorted.len()), None, "out of range");
        };
        for t in [40u64, 10, 30, 20, 50] {
            m.insert(t, t);
            check(&m);
        }
        for t in [30u64, 50, 10] {
            assert!(m.remove(t).is_some());
            check(&m);
        }
        m.insert(25, 25);
        m.insert(5, 5);
        check(&m);
    }

    /// A 16-node lossy ring with three departures: stale entries,
    /// retries, and repairs all in play.
    fn contested_ring() -> StaleRing {
        let tokens: Vec<u64> = (0..16u64).map(|i| i * 16).collect();
        let mut ring = StaleRing::with_tokens(&tokens, 256);
        for t in [32u64, 96, 208] {
            assert!(ring.node_leave(t));
        }
        ring.membership_mut().set_net_conditions(NetConditions::new(
            FaultPlan {
                seed: 13,
                loss: 0.25,
                delay: DelayModel::Uniform(500, 1_500),
                duplicate: 0.05,
            },
            RetryPolicy::standard(),
        ));
        ring
    }

    #[test]
    fn parallel_executor_is_jobs_invariant() {
        let live: Vec<u64> = contested_ring().members.tokens();
        let reqs: Vec<(NodeToken, u64)> = (0..48u64)
            .map(|k| (live[k as usize % live.len()], k * 37))
            .collect();
        let run = |jobs: usize| {
            let mut ring = contested_ring();
            let traces = ParallelExecutor::new(jobs).run(&mut ring, &reqs, true);
            (traces, ring.members.query_loads())
        };
        let (seq_traces, seq_loads) = run(1);
        assert_eq!(seq_traces.len(), reqs.len());
        for jobs in [2, 4, 8] {
            let (traces, loads) = run(jobs);
            for (a, b) in seq_traces.iter().zip(&traces) {
                assert_eq!(a.hops, b.hops, "routes diverge at jobs={jobs}");
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.terminal, b.terminal);
                assert_eq!(a.timeouts, b.timeouts);
                assert_eq!(a.net, b.net, "net costs diverge at jobs={jobs}");
            }
            assert_eq!(seq_loads, loads, "query loads diverge at jobs={jobs}");
        }
    }

    #[test]
    fn parallel_executor_matches_one_walk_at_a_time() {
        // A batch at any width must also agree with the pre-batch
        // behavior: the same lookups issued one `walk` at a time.
        let live: Vec<u64> = contested_ring().members.tokens();
        let reqs: Vec<(NodeToken, u64)> = (0..32u64)
            .map(|k| (live[k as usize % live.len()], k * 29))
            .collect();
        let mut loop_ring = contested_ring();
        let loop_traces: Vec<LookupTrace> = reqs
            .iter()
            .map(|&(src, key)| walk(&mut loop_ring, src, key, true))
            .collect();
        let mut batch_ring = contested_ring();
        let batch_traces = ParallelExecutor::new(4).run(&mut batch_ring, &reqs, true);
        for (a, b) in loop_traces.iter().zip(&batch_traces) {
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.net, b.net);
        }
        assert_eq!(
            loop_ring.members.query_loads(),
            batch_ring.members.query_loads()
        );
    }

    #[test]
    fn parallel_executor_emits_canonical_event_stream() {
        use crate::obs::RingBufferSink;
        use std::sync::{Arc, Mutex};
        let live: Vec<u64> = contested_ring().members.tokens();
        let reqs: Vec<(NodeToken, u64)> = (0..24u64)
            .map(|k| (live[k as usize % live.len()], k * 41))
            .collect();
        let run = |jobs: usize| {
            let mut ring = contested_ring();
            let sink = Arc::new(Mutex::new(RingBufferSink::new(4096)));
            ring.membership_mut()
                .set_trace_sink(SinkHandle::new(Arc::clone(&sink)));
            ParallelExecutor::new(jobs).run(&mut ring, &reqs, true);
            let events = sink.lock().unwrap().snapshot();
            events
                .iter()
                .map(|e| format!("{e:?}"))
                .collect::<Vec<String>>()
        };
        assert_eq!(run(1), run(8), "trace streams must be byte-identical");
    }
}
