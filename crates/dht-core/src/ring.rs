//! Modular-ring arithmetic shared by every ring-flavoured overlay.
//!
//! Chord and Koorde live on a `2^b` identifier circle, Viceroy on a `[0,1)`
//! circle (represented in 64-bit fixed point), and Cycloid's large cycle is
//! a `2^d` circle of cubical indices. All of them need the same three
//! operations: clockwise distance, minimal (either-direction) distance, and
//! half-open interval membership with wraparound.

/// Clockwise (increasing-identifier) distance from `from` to `to` on a ring
/// of size `modulus`.
#[inline]
#[must_use]
pub fn clockwise_dist(from: u64, to: u64, modulus: u64) -> u64 {
    debug_assert!(modulus > 0);
    debug_assert!(from < modulus && to < modulus);
    if to >= from {
        to - from
    } else {
        modulus - from + to
    }
}

/// Minimal distance between `a` and `b` on a ring of size `modulus`
/// (the shorter of the two ways around).
#[inline]
#[must_use]
pub fn ring_dist(a: u64, b: u64, modulus: u64) -> u64 {
    let cw = clockwise_dist(a, b, modulus);
    cw.min(modulus - cw)
}

/// `true` iff `x` lies in the half-open clockwise interval `(from, to]` on a
/// ring of size `modulus`. This is the membership test Chord-family
/// protocols use for "is `x` between me and my successor".
///
/// When `from == to` the interval is the whole ring minus nothing — i.e.
/// every `x != from` is inside, and `x == from == to` is inside too (a
/// single node owns the entire circle).
#[inline]
#[must_use]
pub fn in_interval_oc(x: u64, from: u64, to: u64, modulus: u64) -> bool {
    debug_assert!(x < modulus && from < modulus && to < modulus);
    if from == to {
        true
    } else {
        clockwise_dist(from, x, modulus) <= clockwise_dist(from, to, modulus) && x != from
    }
}

/// `true` iff `x` lies in the half-open clockwise interval `[from, to)` on
/// a ring of size `modulus` — the "is `from` the predecessor of `x`" test
/// Koorde uses for imaginary-node ownership.
///
/// When `from == to` the interval is the whole ring (a single node owns
/// every imaginary point).
#[inline]
#[must_use]
pub fn in_interval_co(x: u64, from: u64, to: u64, modulus: u64) -> bool {
    debug_assert!(x < modulus && from < modulus && to < modulus);
    if from == to {
        true
    } else {
        clockwise_dist(from, x, modulus) < clockwise_dist(from, to, modulus)
    }
}

/// `true` iff `x` lies in the open clockwise interval `(from, to)`.
#[inline]
#[must_use]
pub fn in_interval_oo(x: u64, from: u64, to: u64, modulus: u64) -> bool {
    x != to && in_interval_oc(x, from, to, modulus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clockwise_basics() {
        assert_eq!(clockwise_dist(0, 5, 16), 5);
        assert_eq!(clockwise_dist(5, 0, 16), 11);
        assert_eq!(clockwise_dist(7, 7, 16), 0);
        assert_eq!(clockwise_dist(15, 0, 16), 1);
    }

    #[test]
    fn ring_dist_symmetric_and_minimal() {
        for m in [2u64, 7, 16, 2048] {
            for a in 0..m.min(32) {
                for b in 0..m.min(32) {
                    let d = ring_dist(a, b, m);
                    assert_eq!(d, ring_dist(b, a, m), "symmetry");
                    assert!(d <= m / 2, "minimality: {d} > {}/2", m);
                }
            }
        }
    }

    #[test]
    fn interval_oc_wraparound() {
        // (14, 2] on a 16-ring contains 15, 0, 1, 2 but not 14, 3.
        assert!(in_interval_oc(15, 14, 2, 16));
        assert!(in_interval_oc(0, 14, 2, 16));
        assert!(in_interval_oc(2, 14, 2, 16));
        assert!(!in_interval_oc(14, 14, 2, 16));
        assert!(!in_interval_oc(3, 14, 2, 16));
    }

    #[test]
    fn interval_degenerate_full_ring() {
        // from == to: single node owns everything.
        assert!(in_interval_oc(3, 7, 7, 16));
        assert!(in_interval_oc(7, 7, 7, 16));
    }

    #[test]
    fn interval_co_includes_start_excludes_end() {
        assert!(in_interval_co(14, 14, 2, 16));
        assert!(in_interval_co(0, 14, 2, 16));
        assert!(!in_interval_co(2, 14, 2, 16));
        assert!(!in_interval_co(5, 14, 2, 16));
        // Degenerate: single node owns every imaginary point.
        assert!(in_interval_co(9, 3, 3, 16));
    }

    #[test]
    fn interval_oo_excludes_endpoint() {
        assert!(in_interval_oo(1, 14, 2, 16));
        assert!(!in_interval_oo(2, 14, 2, 16));
        assert!(!in_interval_oo(14, 14, 2, 16));
    }
}
