//! Protocol-conformance auditing.
//!
//! Every overlay in this workspace maintains per-node routing state whose
//! correct shape is *specified by its paper*: Cycloid's seven-entry routing
//! state (§2.1 of the Cycloid paper), Chord's successor list and fingers,
//! Koorde's de Bruijn pointer, Pastry's leaf sets and prefix table,
//! Viceroy's level links, CAN's zone-neighbour sets. The simulation only
//! measures *lookup outcomes*, so a silent routing-table bug would surface
//! as mysteriously longer paths rather than a failing assertion.
//!
//! This module defines the vocabulary for checking those invariants:
//!
//! * [`AuditScope`] — which class of invariants to check. `Online`
//!   invariants are eagerly repaired by the graceful join/leave protocol and
//!   must hold at *any* instant; `Full` additionally checks the lazily
//!   stabilized state and is only expected to pass after stabilization.
//! * [`AuditViolation`] — one broken invariant on one node.
//! * [`AuditReport`] — the outcome of an audit pass: how many nodes were
//!   checked plus every violation found.
//! * [`StateAudit`] — the trait each overlay crate implements to check its
//!   own paper-specified invariants against a membership snapshot.
//!
//! The simulation driver exposes the auditor through
//! `Overlay::audit_state`, so experiment code can audit any boxed overlay
//! without naming its concrete type.

use std::fmt;

use crate::overlay::NodeToken;

/// Which class of invariants an audit pass checks.
///
/// The split mirrors how the overlays repair state: some pointers are fixed
/// eagerly by the graceful join/leave protocol (leaf sets, ring successor
/// lists), others only by periodic stabilization (finger tables, de Bruijn
/// pointers, prefix tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditScope {
    /// Only the invariants the graceful protocol keeps *always* true.
    ///
    /// An `Online` audit may run at any instant — mid-churn, between
    /// stabilization rounds — and a violation is a protocol bug, not a
    /// staleness artifact. (Ungraceful failures legitimately break online
    /// invariants until stabilization repairs them.)
    Online,
    /// Every invariant, including lazily-stabilized state.
    ///
    /// A `Full` audit is only expected to be clean on a quiescent,
    /// fully-stabilized network.
    Full,
}

impl AuditScope {
    /// Short lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AuditScope::Online => "online",
            AuditScope::Full => "full",
        }
    }
}

/// One broken invariant on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The node whose state violates the invariant.
    pub node: NodeToken,
    /// Stable invariant name, `"overlay/invariant"` (e.g.
    /// `"cycloid/inside-leaf-set"`). Tests match on this.
    pub invariant: &'static str,
    /// Human-readable expected-vs-actual detail.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {}: {} — {}",
            self.node, self.invariant, self.detail
        )
    }
}

/// Outcome of an audit pass over an overlay's membership snapshot.
#[derive(Debug, Clone)]
pub struct AuditReport {
    overlay: String,
    scope: AuditScope,
    checked_nodes: usize,
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Starts an empty report for `overlay` at the given scope.
    #[must_use]
    pub fn new(overlay: impl Into<String>, scope: AuditScope) -> Self {
        AuditReport {
            overlay: overlay.into(),
            scope,
            checked_nodes: 0,
            violations: Vec::new(),
        }
    }

    /// Display name of the audited overlay.
    #[must_use]
    pub fn overlay(&self) -> &str {
        &self.overlay
    }

    /// Scope the audit ran at.
    #[must_use]
    pub fn scope(&self) -> AuditScope {
        self.scope
    }

    /// Number of nodes whose state was checked, summed over merged passes.
    #[must_use]
    pub fn checked_nodes(&self) -> usize {
        self.checked_nodes
    }

    /// Counts `nodes` additional nodes as checked.
    pub fn note_checked(&mut self, nodes: usize) {
        self.checked_nodes += nodes;
    }

    /// Records a violation of `invariant` on `node`.
    pub fn record(&mut self, node: NodeToken, invariant: &'static str, detail: String) {
        self.violations.push(AuditViolation {
            node,
            invariant,
            detail,
        });
    }

    /// Records a violation unless `ok`; `detail` is only rendered on
    /// failure, so hot audit loops pay nothing for passing checks.
    pub fn check(
        &mut self,
        node: NodeToken,
        invariant: &'static str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        if !ok {
            self.record(node, invariant, detail());
        }
    }

    /// Equality check: records a violation with a rendered
    /// expected-vs-actual detail when `actual != expected`.
    pub fn check_eq<T: PartialEq + fmt::Debug>(
        &mut self,
        node: NodeToken,
        invariant: &'static str,
        actual: &T,
        expected: &T,
    ) {
        if actual != expected {
            self.record(
                node,
                invariant,
                format!("expected {expected:?}, found {actual:?}"),
            );
        }
    }

    /// Every violation found, in discovery order.
    #[must_use]
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// True when no violations were recorded.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Distinct invariant names that were violated, in first-hit order.
    #[must_use]
    pub fn violated_invariants(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for v in &self.violations {
            if !names.contains(&v.invariant) {
                names.push(v.invariant);
            }
        }
        names
    }

    /// Folds `other` into this report: node counts add, violations append.
    ///
    /// Used by the churn engine to accumulate one report across many
    /// per-round audit passes; the receiver keeps its overlay name and
    /// scope.
    pub fn merge(&mut self, other: AuditReport) {
        self.checked_nodes += other.checked_nodes;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] audit: {} nodes checked, ",
            self.overlay,
            self.scope.label(),
            self.checked_nodes
        )?;
        if self.is_clean() {
            return write!(f, "clean");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        const SHOWN: usize = 8;
        for v in self.violations.iter().take(SHOWN) {
            writeln!(f, "  {v}")?;
        }
        if self.violations.len() > SHOWN {
            writeln!(f, "  … and {} more", self.violations.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// Checks an overlay's paper-specified structural invariants.
///
/// Each overlay crate implements this on its network type by recomputing,
/// from the membership snapshot alone, what every node's routing state
/// *should* be and comparing it with what the protocol actually maintains.
/// The trait is object-safe so simulation drivers can audit a
/// `Box<dyn Overlay>` without knowing the concrete overlay.
pub trait StateAudit {
    /// Audits every live node's state at the given scope.
    fn audit(&self, scope: AuditScope) -> AuditReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = AuditReport::new("Test", AuditScope::Online);
        assert!(r.is_clean());
        assert_eq!(r.checked_nodes(), 0);
        assert_eq!(r.violations().len(), 0);
        assert_eq!(
            format!("{r}"),
            "Test [online] audit: 0 nodes checked, clean"
        );
    }

    #[test]
    fn record_and_check_collect_violations() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        r.note_checked(3);
        r.record(7, "test/explicit", "broken".into());
        r.check(8, "test/closure", false, || "lazy detail".into());
        r.check(9, "test/passing", true, || unreachable!());
        r.check_eq(10, "test/eq", &1u32, &2u32);
        r.check_eq(11, "test/eq-pass", &5u32, &5u32);
        assert!(!r.is_clean());
        assert_eq!(r.violations().len(), 3);
        assert_eq!(
            r.violated_invariants(),
            vec!["test/explicit", "test/closure", "test/eq"]
        );
        assert_eq!(r.violations()[2].detail, "expected 2, found 1");
    }

    #[test]
    fn merge_accumulates_counts_and_violations() {
        let mut a = AuditReport::new("Test", AuditScope::Online);
        a.note_checked(5);
        let mut b = AuditReport::new("Other", AuditScope::Full);
        b.note_checked(2);
        b.record(1, "test/x", "boom".into());
        a.merge(b);
        assert_eq!(a.checked_nodes(), 7);
        assert_eq!(a.overlay(), "Test");
        assert_eq!(a.scope(), AuditScope::Online);
        assert_eq!(a.violations().len(), 1);
    }

    #[test]
    fn merging_empty_reports_is_identity() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        r.note_checked(4);
        r.record(1, "test/x", "boom".into());
        let before = (r.checked_nodes(), r.violations().to_vec());
        // An empty same-scope merge and an empty cross-scope merge both
        // leave the receiver untouched (scope is metadata, not a guard).
        r.merge(AuditReport::new("Test", AuditScope::Full));
        r.merge(AuditReport::new("Elsewhere", AuditScope::Online));
        assert_eq!(r.checked_nodes(), before.0);
        assert_eq!(r.violations(), before.1.as_slice());
        // And a chain of empty-into-empty merges stays clean.
        let mut empty = AuditReport::new("Test", AuditScope::Online);
        empty.merge(AuditReport::new("Test", AuditScope::Online));
        empty.merge(AuditReport::new("Test", AuditScope::Full));
        assert!(empty.is_clean());
        assert_eq!(empty.checked_nodes(), 0);
    }

    #[test]
    fn duplicate_invariant_names_dedup_in_first_hit_order() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        r.record(1, "test/b", "1".into());
        r.record(2, "test/a", "2".into());
        r.record(3, "test/b", "3".into());
        let mut other = AuditReport::new("Test", AuditScope::Full);
        other.record(4, "test/a", "4".into());
        other.record(5, "test/c", "5".into());
        r.merge(other);
        // Every individual violation is kept...
        assert_eq!(r.violations().len(), 5);
        // ...but the distinct-name view dedups, preserving first-hit
        // order across the merge boundary.
        assert_eq!(r.violated_invariants(), vec!["test/b", "test/a", "test/c"]);
    }

    #[test]
    fn merge_across_scopes_keeps_receiver_identity_but_all_violations() {
        // The churn engine merges per-round Online passes; a Full pass
        // folded in afterwards must not relabel the accumulator, yet its
        // violations still count.
        let mut acc = AuditReport::new("Cycloid(7)", AuditScope::Online);
        acc.note_checked(10);
        let mut full = AuditReport::new("Cycloid(7)", AuditScope::Full);
        full.note_checked(10);
        full.record(3, "cycloid/cubical-neighbor", "stale".into());
        acc.merge(full);
        assert_eq!(acc.scope(), AuditScope::Online);
        assert_eq!(acc.overlay(), "Cycloid(7)");
        assert_eq!(acc.checked_nodes(), 20);
        assert!(!acc.is_clean());
        assert_eq!(acc.violated_invariants(), vec!["cycloid/cubical-neighbor"]);
    }

    #[test]
    fn check_eq_handles_option_and_collection_values() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        // Equal values — including None == None — record nothing.
        r.check_eq(1, "test/none", &None::<u64>, &None::<u64>);
        r.check_eq(2, "test/vec-eq", &vec![1u64, 2], &vec![1u64, 2]);
        assert!(r.is_clean());
        // None vs Some and length-mismatched collections both render an
        // expected-vs-actual detail.
        r.check_eq(3, "test/opt", &None::<u64>, &Some(9u64));
        r.check_eq(4, "test/vec", &vec![1u64], &vec![1u64, 2]);
        assert_eq!(r.violations().len(), 2);
        assert_eq!(r.violations()[0].detail, "expected Some(9), found None");
        assert_eq!(r.violations()[1].detail, "expected [1, 2], found [1]");
    }

    #[test]
    fn display_lists_violations() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        r.note_checked(1);
        r.record(42, "test/bad", "expected X, found Y".into());
        let s = format!("{r}");
        assert!(s.contains("1 violation(s)"));
        assert!(s.contains("node 42: test/bad — expected X, found Y"));
    }

    #[test]
    fn display_truncates_long_violation_lists() {
        let mut r = AuditReport::new("Test", AuditScope::Full);
        for i in 0..20 {
            r.record(i, "test/many", "dup".into());
        }
        let s = format!("{r}");
        assert!(s.contains("… and 12 more"));
    }
}
