//! Per-phase cost accounting.
//!
//! Aggregate counters answer "how many messages did this run send" but
//! not "who sent them": the paper's maintenance-cost tradeoff (§5)
//! needs lookup traffic separated from the stabilization, repair, and
//! membership traffic that pays for it. This module adds that
//! dimension: every message, retry, timeout, repair entry, and
//! microsecond of virtual time is attributed to the [`Phase`] that
//! caused it.
//!
//! The [`PhaseAccountant`] follows the same zero-cost-when-disabled
//! contract as [`crate::obs::SinkHandle`]: the default handle holds
//! nothing, recording through it is a no-op that constructs no bill,
//! and enabling it changes no routing decision — the walk engine reads
//! state through the same paths either way, so goldens stay
//! byte-identical (pinned by `tests/phase_accounting.rs`).
//!
//! # Message-count conventions
//!
//! The simulator does not exchange wire messages, so message counts are
//! *derived* from the same quantities the traces record. The
//! conventions (documented here once, used everywhere):
//!
//! * **Lookup**: one message per hop taken, plus one per extra send
//!   attempt (retries), plus one per timed-out contact (stale entries
//!   and exhausted retries each burn at least one probe). Virtual time
//!   is the lookup's end-to-end simulated latency.
//! * **Stabilize / Repair (timer-driven)**: one message per routing
//!   entry examined — a maintenance pass probes each link once — as
//!   reported by [`crate::overlay::Overlay::maintenance_msgs`].
//! * **Repair (on use)**: one message per routing entry rewritten when
//!   a lookup stumbles on a stale entry (§4.3's repair-on-use); billed
//!   to `Repair`, not `Lookup`, so the two costs stay separable.
//! * **Join / Leave**: one message per routing link the affected node
//!   must (un)announce, again via `maintenance_msgs`; an ungraceful
//!   failure sends nothing.
//! * **Audit**: one message per invariant check (the auditor reads each
//!   node's state once per check). Audit `time_us` is wall-clock — the
//!   audit is a measurement-side activity with no virtual cost.

use std::fmt;
use std::sync::{Arc, Mutex};

/// The activity a cost is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Application lookups routed by the walk engine.
    Lookup,
    /// Timer-driven stabilization sweeps.
    Stabilize,
    /// Repair work: `repair_node` sweeps and repair-on-use entries.
    Repair,
    /// Node arrivals (link establishment).
    Join,
    /// Graceful departures (link teardown); crashes cost nothing.
    Leave,
    /// Protocol-invariant audits.
    Audit,
}

/// Every phase, in display order.
pub const ALL_PHASES: [Phase; 6] = [
    Phase::Lookup,
    Phase::Stabilize,
    Phase::Repair,
    Phase::Join,
    Phase::Leave,
    Phase::Audit,
];

impl Phase {
    /// Short lower-case label used in metric names and series keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Lookup => "lookup",
            Phase::Stabilize => "stabilize",
            Phase::Repair => "repair",
            Phase::Join => "join",
            Phase::Leave => "leave",
            Phase::Audit => "audit",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Lookup => 0,
            Phase::Stabilize => 1,
            Phase::Repair => 2,
            Phase::Join => 3,
            Phase::Leave => 4,
            Phase::Audit => 5,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Costs attributed to one phase (see the module docs for the
/// message-count conventions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCosts {
    /// Operations billed (lookups, stabilize calls, repairs, …).
    pub calls: u64,
    /// Messages sent (derived; see module docs).
    pub msgs: u64,
    /// Extra send attempts beyond the first.
    pub retries: u64,
    /// Timed-out contacts (stale entries + exhausted retries).
    pub timeouts: u64,
    /// Routing entries rewritten.
    pub repair_entries: u64,
    /// Time attributed to the phase, in microseconds (virtual for
    /// lookups, wall-clock for audits, zero for instantaneous
    /// maintenance events).
    pub time_us: u64,
}

impl PhaseCosts {
    /// Adds `other` into `self` (saturating).
    pub fn absorb(&mut self, other: &PhaseCosts) {
        self.calls = self.calls.saturating_add(other.calls);
        self.msgs = self.msgs.saturating_add(other.msgs);
        self.retries = self.retries.saturating_add(other.retries);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.repair_entries = self.repair_entries.saturating_add(other.repair_entries);
        self.time_us = self.time_us.saturating_add(other.time_us);
    }

    /// Whether every field is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == PhaseCosts::default()
    }
}

/// Costs for all six phases of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTable {
    costs: [PhaseCosts; 6],
}

impl PhaseTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The costs billed to `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> &PhaseCosts {
        &self.costs[phase.index()]
    }

    /// Mutable access to the costs billed to `phase`.
    pub fn get_mut(&mut self, phase: Phase) -> &mut PhaseCosts {
        &mut self.costs[phase.index()]
    }

    /// Iterates phases in display order with their costs.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &PhaseCosts)> {
        ALL_PHASES.iter().map(move |&p| (p, self.get(p)))
    }

    /// The sum over all phases.
    #[must_use]
    pub fn total(&self) -> PhaseCosts {
        let mut sum = PhaseCosts::default();
        for c in &self.costs {
            sum.absorb(c);
        }
        sum
    }

    /// Adds every cell of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTable) {
        for (mine, theirs) in self.costs.iter_mut().zip(&other.costs) {
            mine.absorb(theirs);
        }
    }

    /// Whether nothing has been billed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.iter().all(PhaseCosts::is_zero)
    }
}

struct AccountantShared {
    table: Mutex<PhaseTable>,
}

/// A cheaply clonable, possibly-disabled handle to a [`PhaseTable`].
///
/// Mirrors [`crate::obs::SinkHandle`]: the default (disabled) handle is
/// an `Option::None`, so cloning, checking, and "billing" through it
/// are all no-ops. All clones of an enabled handle share one table.
#[derive(Clone, Default)]
pub struct PhaseAccountant {
    inner: Option<Arc<AccountantShared>>,
}

impl fmt::Debug for PhaseAccountant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseAccountant")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl PhaseAccountant {
    /// The disabled handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle billing into a fresh shared table.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(AccountantShared {
                table: Mutex::new(PhaseTable::new()),
            })),
        }
    }

    /// Whether costs are being collected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Bills `make()` to `phase`, constructing the costs only when
    /// accounting is enabled.
    pub fn bill(&self, phase: Phase, make: impl FnOnce() -> PhaseCosts) {
        if let Some(shared) = &self.inner {
            let costs = make();
            shared
                .table
                .lock()
                .expect("phase table poisoned")
                .get_mut(phase)
                .absorb(&costs);
        }
    }

    /// A copy of the current table, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<PhaseTable> {
        self.inner
            .as_ref()
            .map(|s| s.table.lock().expect("phase table poisoned").clone())
    }

    /// Clears the table (no-op when disabled).
    pub fn reset(&self) {
        if let Some(shared) = &self.inner {
            *shared.table.lock().expect("phase table poisoned") = PhaseTable::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_accountant_is_inert() {
        let acct = PhaseAccountant::disabled();
        assert!(!acct.is_enabled());
        let mut constructed = false;
        acct.bill(Phase::Lookup, || {
            constructed = true;
            PhaseCosts::default()
        });
        assert!(!constructed, "disabled accountant must not build bills");
        assert!(acct.snapshot().is_none());
        assert!(!PhaseAccountant::default().is_enabled());
    }

    #[test]
    fn clones_share_one_table() {
        let acct = PhaseAccountant::enabled();
        let clone = acct.clone();
        acct.bill(Phase::Lookup, || PhaseCosts {
            calls: 1,
            msgs: 3,
            ..PhaseCosts::default()
        });
        clone.bill(Phase::Repair, || PhaseCosts {
            repair_entries: 2,
            msgs: 2,
            ..PhaseCosts::default()
        });
        let table = acct.snapshot().expect("enabled");
        assert_eq!(table.get(Phase::Lookup).msgs, 3);
        assert_eq!(table.get(Phase::Repair).repair_entries, 2);
        assert_eq!(table.total().msgs, 5);
    }

    #[test]
    fn merge_and_reset() {
        let acct = PhaseAccountant::enabled();
        acct.bill(Phase::Stabilize, || PhaseCosts {
            calls: 4,
            msgs: 40,
            ..PhaseCosts::default()
        });
        let mut merged = PhaseTable::new();
        merged.merge(&acct.snapshot().unwrap());
        merged.merge(&acct.snapshot().unwrap());
        assert_eq!(merged.get(Phase::Stabilize).msgs, 80);
        acct.reset();
        assert!(acct.snapshot().unwrap().is_empty());
    }

    #[test]
    fn saturating_absorb() {
        let mut costs = PhaseCosts {
            msgs: u64::MAX - 1,
            ..PhaseCosts::default()
        };
        costs.absorb(&PhaseCosts {
            msgs: 5,
            ..PhaseCosts::default()
        });
        assert_eq!(costs.msgs, u64::MAX);
    }

    #[test]
    fn labels_unique_and_ordered() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ALL_PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), ALL_PHASES.len());
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
