//! Observability: structured event tracing, a metrics registry, and a
//! leveled progress logger.
//!
//! # Tracing
//!
//! The simulation substrate ([`crate::sim`]), the retry loop
//! ([`crate::net`]), and the churn engine emit typed [`Event`]s through a
//! [`SinkHandle`] installed on the [`crate::sim::Membership`]. Because
//! emission happens in the shared walk engine, every overlay inherits
//! instrumentation without overlay-local changes.
//!
//! The handle is **zero-cost when disabled**: the default
//! [`SinkHandle::disabled`] holds no sink, [`SinkHandle::emit`] takes the
//! event as a closure that is never called, and cloning the handle copies
//! an `Option<Arc<_>>` that is `None`. Disabled-handle runs are therefore
//! byte-identical to pre-observability runs — the golden-trace suite pins
//! this (`tests/obs_traces.rs` additionally pins that an *enabled*
//! [`NullSink`] changes nothing either).
//!
//! Three sinks ship with the crate:
//!
//! * [`NullSink`] — receives and discards; for measuring emission
//!   overhead and for tests that only need "enabled" semantics,
//! * [`RingBufferSink`] — keeps the last `capacity` events in memory and
//!   counts what it dropped; for tests and interactive debugging,
//! * [`JsonlSink`] — writes one JSON object per event to any
//!   [`std::io::Write`]; for offline analysis
//!   (see `examples/tracing_lookup.rs`).
//!
//! # Metrics
//!
//! [`metrics`] provides [`Counter`], [`Gauge`], log₂-bucket
//! [`Histogram`], and wall-clock [`Timer`] primitives under a
//! name-keyed [`MetricsRegistry`], serialisable to the versioned
//! `BENCH_*.json` export via [`metrics::to_bench_json`].

pub mod json;
pub mod metrics;
pub mod phase;

pub use metrics::{
    to_bench_json, BenchMeta, Counter, Gauge, Histogram, Metric, MetricsRegistry, Timer, TimerSpan,
    SCHEMA_VERSION,
};
pub use phase::{Phase, PhaseAccountant, PhaseCosts, PhaseTable, ALL_PHASES};

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lookup::{HopPhase, LookupOutcome};

impl LookupOutcome {
    /// Short label used in event streams and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LookupOutcome::Found => "found",
            LookupOutcome::WrongOwner => "wrong_owner",
            LookupOutcome::Stuck => "stuck",
            LookupOutcome::HopBudgetExhausted => "budget_exhausted",
        }
    }
}

/// Which kind of timeout a [`Event::Timeout`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// A stale routing entry: the contacted node had departed (§4.3's
    /// per-lookup timeout count).
    Stale,
    /// A live node whose message was lost on every attempt the
    /// [`crate::net::RetryPolicy`] allowed.
    Message,
}

impl TimeoutKind {
    /// Short label used in event streams.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TimeoutKind::Stale => "stale",
            TimeoutKind::Message => "message",
        }
    }
}

/// A structured trace event.
///
/// Lookup-scoped events carry the `lookup` id handed out by
/// [`SinkHandle::next_lookup_id`], so interleaved lookups (e.g. under
/// churn) can be demultiplexed from one stream. Node identifiers are the
/// same opaque tokens the [`crate::overlay::Overlay`] API uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A lookup entered the walk engine.
    LookupStart {
        /// Stream-unique lookup id.
        lookup: u64,
        /// Source node token.
        src: u64,
        /// Raw (pre-hash) key, when the caller supplied one.
        key: Option<u64>,
    },
    /// The walk forwarded to the next node.
    Hop {
        /// Stream-unique lookup id.
        lookup: u64,
        /// Zero-based hop index within the lookup.
        index: u32,
        /// Node the hop left from.
        from: u64,
        /// Node the hop arrived at.
        to: u64,
        /// Routing phase of this hop.
        phase: HopPhase,
    },
    /// A message to `target` needed more than one send attempt.
    Retry {
        /// Stream-unique lookup id.
        lookup: u64,
        /// Node being contacted.
        target: u64,
        /// Total attempts used (>= 2).
        attempts: u32,
    },
    /// A contact timed out (stale entry or exhausted retries).
    Timeout {
        /// Stream-unique lookup id.
        lookup: u64,
        /// Node whose contact timed out.
        target: u64,
        /// Stale-entry vs message-loss timeout.
        kind: TimeoutKind,
    },
    /// The walk terminated.
    LookupEnd {
        /// Stream-unique lookup id.
        lookup: u64,
        /// How the lookup ended.
        outcome: LookupOutcome,
        /// Node the lookup terminated at.
        terminal: u64,
        /// Path length in hops.
        hops: u32,
        /// Stale-entry timeouts encountered (§4.3).
        timeouts: u32,
        /// Simulated end-to-end latency in microseconds.
        latency_us: u64,
    },
    /// A node joined the overlay (churn engine).
    Join {
        /// Token of the new node.
        node: u64,
    },
    /// A node left the overlay (churn engine).
    Leave {
        /// Token of the departed node.
        node: u64,
        /// `true` for a graceful leave, `false` for a crash.
        graceful: bool,
    },
    /// One full stabilization round completed (churn engine).
    StabilizeRound {
        /// Zero-based round index.
        round: u64,
        /// Node count after the round.
        nodes: u64,
    },
    /// A protocol audit ran (churn engine / experiments).
    AuditRun {
        /// `true` iff no violations were found.
        clean: bool,
        /// Invariant checks performed.
        checked: u64,
        /// Violations found.
        violations: u64,
    },
}

impl Event {
    /// The lookup id, for lookup-scoped events.
    #[must_use]
    pub fn lookup_id(&self) -> Option<u64> {
        match self {
            Event::LookupStart { lookup, .. }
            | Event::Hop { lookup, .. }
            | Event::Retry { lookup, .. }
            | Event::Timeout { lookup, .. }
            | Event::LookupEnd { lookup, .. } => Some(*lookup),
            _ => None,
        }
    }

    /// Sets the lookup id on lookup-scoped events (no-op otherwise).
    /// Deferred walks record events with a placeholder id of 0 and
    /// stamp the stream-unique id at effect-apply time.
    pub fn set_lookup_id(&mut self, id: u64) {
        match self {
            Event::LookupStart { lookup, .. }
            | Event::Hop { lookup, .. }
            | Event::Retry { lookup, .. }
            | Event::Timeout { lookup, .. }
            | Event::LookupEnd { lookup, .. } => *lookup = id,
            _ => {}
        }
    }

    /// Renders the event as a single-line JSON object (no trailing
    /// newline), the format [`JsonlSink`] writes.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Event::LookupStart { lookup, src, key } => {
                let key = match key {
                    Some(k) => k.to_string(),
                    None => "null".to_string(),
                };
                format!("{{\"ev\":\"lookup_start\",\"lookup\":{lookup},\"src\":{src},\"key\":{key}}}")
            }
            Event::Hop {
                lookup,
                index,
                from,
                to,
                phase,
            } => format!(
                "{{\"ev\":\"hop\",\"lookup\":{lookup},\"index\":{index},\"from\":{from},\"to\":{to},\"phase\":\"{}\"}}",
                phase.label()
            ),
            Event::Retry {
                lookup,
                target,
                attempts,
            } => format!(
                "{{\"ev\":\"retry\",\"lookup\":{lookup},\"target\":{target},\"attempts\":{attempts}}}"
            ),
            Event::Timeout {
                lookup,
                target,
                kind,
            } => format!(
                "{{\"ev\":\"timeout\",\"lookup\":{lookup},\"target\":{target},\"kind\":\"{}\"}}",
                kind.label()
            ),
            Event::LookupEnd {
                lookup,
                outcome,
                terminal,
                hops,
                timeouts,
                latency_us,
            } => format!(
                "{{\"ev\":\"lookup_end\",\"lookup\":{lookup},\"outcome\":\"{}\",\"terminal\":{terminal},\"hops\":{hops},\"timeouts\":{timeouts},\"latency_us\":{latency_us}}}",
                outcome.label()
            ),
            Event::Join { node } => format!("{{\"ev\":\"join\",\"node\":{node}}}"),
            Event::Leave { node, graceful } => {
                format!("{{\"ev\":\"leave\",\"node\":{node},\"graceful\":{graceful}}}")
            }
            Event::StabilizeRound { round, nodes } => {
                format!("{{\"ev\":\"stabilize_round\",\"round\":{round},\"nodes\":{nodes}}}")
            }
            Event::AuditRun {
                clean,
                checked,
                violations,
            } => format!(
                "{{\"ev\":\"audit_run\",\"clean\":{clean},\"checked\":{checked},\"violations\":{violations}}}"
            ),
        }
    }
}

/// Receives structured trace events.
///
/// Implementations must be cheap: the walk engine calls
/// [`TraceSink::record`] inline on the lookup hot path whenever a sink is
/// installed.
pub trait TraceSink {
    /// Receives one event.
    fn record(&mut self, event: &Event);
}

/// A sink that discards every event.
///
/// Useful for measuring the cost of event *construction* in isolation and
/// for tests that need "a sink is installed" semantics without storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// A bounded in-memory sink keeping the most recent events.
///
/// When full, the oldest event is evicted and counted in
/// [`RingBufferSink::dropped`].
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: std::collections::VecDeque<Event>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the retained events *together with* the number evicted
    /// before them, leaving the sink empty.
    ///
    /// This is the read path consumers should prefer over
    /// [`RingBufferSink::snapshot`]: a full buffer silently sheds its
    /// oldest events, so any reader that only sees the retained suffix
    /// can mistake a truncated trace for a complete one. The drain
    /// couples the events with the drop count so truncation is always
    /// visible ([`DrainedTrace::is_complete`]).
    pub fn drain(&mut self) -> DrainedTrace {
        let drained = DrainedTrace {
            events: self.events.drain(..).collect(),
            dropped: self.dropped,
        };
        self.dropped = 0;
        drained
    }
}

/// The output of [`RingBufferSink::drain`]: the retained events plus
/// how many older events were evicted before them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainedTrace {
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted because the buffer was full; `0` means `events`
    /// is the complete stream.
    pub dropped: u64,
}

impl DrainedTrace {
    /// Whether the trace is the complete stream (nothing was evicted).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// A sink writing one JSON object per line to a [`Write`] target.
///
/// I/O errors are counted, not propagated — the walk engine cannot
/// surface them mid-lookup.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer, errors: 0 }
    }

    /// Write errors swallowed so far.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if writeln!(self.writer, "{}", event.to_json_line()).is_err() {
            self.errors += 1;
        }
    }
}

/// Lets a caller install a sink it keeps shared access to:
/// `SinkHandle::new` takes the sink by value, so shared inspection goes
/// through an `Arc<Mutex<_>>` the caller clones first.
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn record(&mut self, event: &Event) {
        self.lock().expect("sink poisoned").record(event);
    }
}

struct SinkShared {
    sink: Mutex<Box<dyn TraceSink + Send>>,
    next_lookup: AtomicU64,
}

/// A cheaply clonable, possibly-disabled handle to a [`TraceSink`].
///
/// This is what instrumented code holds. The default (disabled) handle
/// is an `Option::None` — cloning it, checking it, and "emitting" through
/// it are all no-ops, which is the zero-cost-when-disabled guarantee.
/// All clones of an enabled handle share one sink and one lookup-id
/// sequence.
#[derive(Clone, Default)]
pub struct SinkHandle {
    inner: Option<Arc<SinkShared>>,
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl SinkHandle {
    /// The disabled handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle delivering events to `sink`.
    ///
    /// To keep inspecting the sink after installing it, wrap it in
    /// `Arc<Mutex<_>>` first and hand the handle a clone:
    ///
    /// ```
    /// use std::sync::{Arc, Mutex};
    /// use dht_core::obs::{Event, RingBufferSink, SinkHandle};
    ///
    /// let ring = Arc::new(Mutex::new(RingBufferSink::new(16)));
    /// let handle = SinkHandle::new(Arc::clone(&ring));
    /// handle.emit(|| Event::Join { node: 7 });
    /// assert_eq!(ring.lock().unwrap().len(), 1);
    /// ```
    #[must_use]
    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> Self {
        Self {
            inner: Some(Arc::new(SinkShared {
                sink: Mutex::new(Box::new(sink)),
                next_lookup: AtomicU64::new(1),
            })),
        }
    }

    /// Whether a sink is installed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Delivers `make()` to the sink, constructing the event only when a
    /// sink is installed.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(shared) = &self.inner {
            let event = make();
            shared.sink.lock().expect("sink poisoned").record(&event);
        }
    }

    /// Hands out the next stream-unique lookup id, or `0` when disabled
    /// (disabled runs never emit, so the id is never observed).
    #[must_use]
    pub fn next_lookup_id(&self) -> u64 {
        match &self.inner {
            Some(shared) => shared.next_lookup.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }
}

/// Verbosity of the [`Progress`] logger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Print nothing.
    Quiet,
    /// Print per-experiment progress (the default).
    Info,
    /// Print additional detail.
    Debug,
}

impl LogLevel {
    /// Parses `"quiet"` / `"info"` / `"debug"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "quiet" | "off" => Some(LogLevel::Quiet),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// A leveled stderr progress logger with a fixed line prefix.
///
/// Replaces ad-hoc `eprintln!("[repro] ...")` lines: messages below the
/// configured level are skipped, and the level can come from a CLI flag
/// or an environment variable (see [`Progress::from_env`]).
#[derive(Debug, Clone)]
pub struct Progress {
    prefix: &'static str,
    level: LogLevel,
}

impl Progress {
    /// A logger printing `[prefix] message` for messages at or below
    /// `level`.
    #[must_use]
    pub fn new(prefix: &'static str, level: LogLevel) -> Self {
        Self { prefix, level }
    }

    /// Like [`Progress::new`], but `env_var` (e.g. `REPRO_LOG`) overrides
    /// `default` when set to a recognised level name. Unrecognised values
    /// are ignored.
    #[must_use]
    pub fn from_env(prefix: &'static str, env_var: &str, default: LogLevel) -> Self {
        let level = std::env::var(env_var)
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(default);
        Self::new(prefix, level)
    }

    /// The active level.
    #[must_use]
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether `level` messages would print.
    #[must_use]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Quiet && level <= self.level
    }

    /// Prints an info-level progress line to stderr.
    pub fn info(&self, msg: impl fmt::Display) {
        if self.enabled(LogLevel::Info) {
            eprintln!("[{}] {msg}", self.prefix);
        }
    }

    /// Prints a debug-level progress line to stderr.
    pub fn debug(&self, msg: impl fmt::Display) {
        if self.enabled(LogLevel::Debug) {
            eprintln!("[{}] {msg}", self.prefix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::LookupStart {
                lookup: 1,
                src: 10,
                key: Some(99),
            },
            Event::Hop {
                lookup: 1,
                index: 0,
                from: 10,
                to: 11,
                phase: HopPhase::Ascending,
            },
            Event::Retry {
                lookup: 1,
                target: 11,
                attempts: 2,
            },
            Event::Timeout {
                lookup: 1,
                target: 12,
                kind: TimeoutKind::Stale,
            },
            Event::LookupEnd {
                lookup: 1,
                outcome: LookupOutcome::Found,
                terminal: 11,
                hops: 1,
                timeouts: 1,
                latency_us: 42,
            },
            Event::Join { node: 20 },
            Event::Leave {
                node: 20,
                graceful: false,
            },
            Event::StabilizeRound {
                round: 3,
                nodes: 64,
            },
            Event::AuditRun {
                clean: true,
                checked: 100,
                violations: 0,
            },
        ]
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = SinkHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.next_lookup_id(), 0);
        assert_eq!(h.next_lookup_id(), 0);
        let mut constructed = false;
        h.emit(|| {
            constructed = true;
            Event::Join { node: 1 }
        });
        assert!(!constructed, "disabled handle must not build events");
        // Clones of a disabled handle are independent no-ops too.
        let h2 = h.clone();
        assert!(!h2.is_enabled());
    }

    #[test]
    fn default_handle_is_disabled() {
        assert!(!SinkHandle::default().is_enabled());
    }

    #[test]
    fn clones_share_sink_and_id_sequence() {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let h = SinkHandle::new(Arc::clone(&ring));
        let h2 = h.clone();
        assert_eq!(h.next_lookup_id(), 1);
        assert_eq!(h2.next_lookup_id(), 2, "clones share one sequence");
        h.emit(|| Event::Join { node: 1 });
        h2.emit(|| Event::Join { node: 2 });
        let events = ring.lock().unwrap().snapshot();
        assert_eq!(
            events,
            vec![Event::Join { node: 1 }, Event::Join { node: 2 }]
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut ring = RingBufferSink::new(2);
        for node in 0..5u64 {
            ring.record(&Event::Join { node });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(
            ring.snapshot(),
            vec![Event::Join { node: 3 }, Event::Join { node: 4 }]
        );
    }

    #[test]
    fn ring_buffer_drain_surfaces_drops_at_capacity_boundary() {
        // Exactly at capacity: nothing dropped, trace complete.
        let mut ring = RingBufferSink::new(3);
        for node in 0..3u64 {
            ring.record(&Event::Join { node });
        }
        let full = ring.drain();
        assert!(full.is_complete());
        assert_eq!(full.dropped, 0);
        assert_eq!(full.events.len(), 3);
        assert!(ring.is_empty(), "drain empties the sink");

        // One past capacity: the eviction must be visible in the drain.
        for node in 0..4u64 {
            ring.record(&Event::Join { node });
        }
        let truncated = ring.drain();
        assert!(!truncated.is_complete());
        assert_eq!(truncated.dropped, 1);
        assert_eq!(
            truncated.events,
            vec![
                Event::Join { node: 1 },
                Event::Join { node: 2 },
                Event::Join { node: 3 }
            ]
        );
        // The drain resets the drop counter for the next window.
        ring.record(&Event::Join { node: 9 });
        assert!(ring.drain().is_complete());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.errors(), 0);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in &lines {
            let doc = json::parse(line).expect("every event line is valid JSON");
            assert!(
                doc.get("ev").and_then(json::Json::as_str).is_some(),
                "every line carries an 'ev' tag: {line}"
            );
        }
        assert!(lines[0].contains("\"ev\":\"lookup_start\""));
        assert!(lines[1].contains("\"phase\":\"ascending\""));
        assert!(lines[3].contains("\"kind\":\"stale\""));
        assert!(lines[4].contains("\"outcome\":\"found\""));
    }

    #[test]
    fn lookup_id_scoping() {
        for e in sample_events() {
            match e {
                Event::Join { .. }
                | Event::Leave { .. }
                | Event::StabilizeRound { .. }
                | Event::AuditRun { .. } => assert_eq!(e.lookup_id(), None),
                _ => assert_eq!(e.lookup_id(), Some(1)),
            }
        }
    }

    #[test]
    fn log_level_parse_and_order() {
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("Debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("nope"), None);
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn progress_levels_gate_output() {
        let quiet = Progress::new("t", LogLevel::Quiet);
        assert!(!quiet.enabled(LogLevel::Info));
        assert!(!quiet.enabled(LogLevel::Quiet), "quiet never prints");
        let info = Progress::new("t", LogLevel::Info);
        assert!(info.enabled(LogLevel::Info));
        assert!(!info.enabled(LogLevel::Debug));
        let debug = Progress::new("t", LogLevel::Debug);
        assert!(debug.enabled(LogLevel::Info));
        assert!(debug.enabled(LogLevel::Debug));
    }

    #[test]
    fn outcome_labels_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            LookupOutcome::Found,
            LookupOutcome::WrongOwner,
            LookupOutcome::Stuck,
            LookupOutcome::HopBudgetExhausted,
        ]
        .iter()
        .map(|o| o.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
