//! Metrics registry: counters, gauges, log-scale histograms, and
//! wall-clock timers, serialisable to the versioned `BENCH_*.json`
//! benchmark export.
//!
//! Experiments populate a [`MetricsRegistry`] as they run; the `repro`
//! binary serialises it with [`to_bench_json`] when `--metrics-out` is
//! given. The schema is documented in `EXPERIMENTS.md` and validated by
//! `crates/bench/tests/metrics_schema.rs`; bump [`SCHEMA_VERSION`] on
//! any incompatible change.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use super::json::{escape, num};

/// Version stamp written into every `BENCH_*.json`. Consumers must
/// reject files with a version they do not understand.
///
/// History: v1 = header + `metrics` array; v2 adds the `series` array
/// of virtual-time telemetry samples (and is otherwise identical).
pub const SCHEMA_VERSION: u32 = 2;

/// A saturating event counter.
///
/// Increments saturate at `u64::MAX` instead of wrapping, so a
/// long-running registry degrades to a pegged value rather than a
/// nonsense small one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Replaces the gauge value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds exact zeros and
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, so 64 value buckets
/// cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-shape log₂-bucket histogram over `u64` observations.
///
/// The bucket layout is the same for every histogram (no configuration),
/// which makes [`Histogram::merge`] a plain element-wise add — the
/// property the per-thread experiment drivers rely on. Alongside the
/// buckets it tracks exact `count`, `sum`, `min`, and `max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket that would hold `value`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // value in [2^(i-1), 2^i) => ilog2(value) == i-1.
            value.ilog2() as usize + 1
        }
    }

    /// Inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i - 1`
    /// otherwise; bucket 64's bound is `u64::MAX`).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            0
        } else if i == HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (element-wise bucket add; min/max/sum
    /// combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all observations, or `0.0` if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index by [`Histogram::bucket_index`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — the compact
    /// form written to the JSON export.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_bound(i), c))
            .collect()
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by the
    /// nearest-rank rule over the log₂ buckets, or `None` if empty.
    ///
    /// **Error bound.** The rank is exact (bucket counts are exact), so
    /// the true quantile lies inside the selected bucket; the estimate
    /// is that bucket's midpoint, clamped to the exact observed
    /// `[min, max]`. A bucket spans `[2^(i-1), 2^i)`, so the estimate
    /// is always within a factor of 2 of the true quantile — and exact
    /// whenever the bucket is degenerate: an empty-range clamp (all
    /// observations equal), the zero bucket, or a quantile pinned to
    /// `min`/`max`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based: smallest r with r/count >= q.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The first and last ranks are the exact observed extremes.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                idx = i;
                break;
            }
        }
        let estimate = if idx == 0 {
            0
        } else {
            let low = 1u64 << (idx - 1);
            let high = Self::bucket_upper_bound(idx);
            low + (high - low) / 2
        };
        Some(estimate.clamp(self.min, self.max))
    }
}

/// Accumulated wall-clock time over any number of spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timer {
    total_us: u64,
    spans: u64,
    max_us: u64,
}

impl Timer {
    /// Starts a span; pass the result to [`Timer::record`] to stop it.
    #[must_use]
    pub fn start() -> TimerSpan {
        TimerSpan {
            started: Instant::now(),
        }
    }

    /// Stops `span` and folds its elapsed wall-clock time in.
    pub fn record(&mut self, span: TimerSpan) {
        // `as_micros` of an Instant delta fits u64 for ~584k years.
        self.record_us(span.started.elapsed().as_micros() as u64);
    }

    /// Folds in an externally measured duration (microseconds).
    pub fn record_us(&mut self, us: u64) {
        self.total_us = self.total_us.saturating_add(us);
        self.spans = self.spans.saturating_add(1);
        self.max_us = self.max_us.max(us);
    }

    /// Total recorded time in microseconds.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Longest single span in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }
}

/// An in-flight wall-clock span (see [`Timer::start`]).
#[derive(Debug)]
pub struct TimerSpan {
    started: Instant,
}

/// One named metric in a [`MetricsRegistry`].
// The `Histogram` variant dominates the enum size (its fixed bucket
// array), but registries hold at most a few thousand entries inside a
// `BTreeMap` and are never moved in bulk, so boxing would only add an
// indirection to every record call.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A saturating counter.
    Counter(Counter),
    /// An instantaneous value.
    Gauge(Gauge),
    /// A log₂-bucket histogram.
    Histogram(Histogram),
    /// Accumulated wall-clock spans.
    Timer(Timer),
}

impl Metric {
    /// Schema `type` string for the JSON export.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A named virtual-time telemetry series: `(t_us, value)` samples in
/// non-decreasing time order.
///
/// Unlike the point metrics above, a series keeps *every* sample, so a
/// `BENCH_*.json` can report the trajectory of a run (live nodes over
/// time, violations draining to zero, per-phase message totals), not
/// just its endpoint. Timestamps are virtual-clock microseconds
/// ([`crate::clock::SimTime`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    points: Vec<(u64, f64)>,
}

impl Series {
    /// Appends a sample.
    ///
    /// # Panics
    /// If `t_us` is earlier than the last sample — series are recorded
    /// by a single clock-driven sampler, so out-of-order pushes are a
    /// programming error.
    pub fn push(&mut self, t_us: u64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t_us >= last, "series sample at {t_us}µs after {last}µs");
        }
        self.points.push((t_us, value));
    }

    /// The samples, oldest first.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A flat, name-keyed collection of metrics.
///
/// Accessors create the metric on first use and panic if an existing
/// name is re-used with a different kind — mixed kinds under one name
/// are always a programming error, never data.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
    series: BTreeMap<String, Series>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created empty on first access.
    ///
    /// # Panics
    /// If `name` already holds a non-counter metric.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created at `0.0` on first access.
    ///
    /// # Panics
    /// If `name` already holds a non-gauge metric.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created empty on first access.
    ///
    /// # Panics
    /// If `name` already holds a non-histogram metric.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// The timer named `name`, created empty on first access.
    ///
    /// # Panics
    /// If `name` already holds a non-timer metric.
    pub fn timer(&mut self, name: &str) -> &mut Timer {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Timer::default()))
        {
            Metric::Timer(t) => t,
            other => panic!("metric '{name}' is a {}, not a timer", other.kind()),
        }
    }

    /// Read-only view of a metric, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The series named `name`, created empty on first access. Series
    /// share the registry's namespace conventions but live beside the
    /// point metrics — a name may hold both a metric and a series.
    pub fn series(&mut self, name: &str) -> &mut Series {
        self.series.entry(name.to_string()).or_default()
    }

    /// Read-only view of a series, if present.
    #[must_use]
    pub fn get_series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series in name order.
    pub fn series_iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered series.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series.len()
    }
}

/// Provenance stamped into every `BENCH_*.json` alongside the metrics.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Experiment name (also the file stem: `BENCH_<experiment>.json`).
    pub experiment: String,
    /// Short git revision of the producing tree, or `"unknown"`.
    pub git_rev: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Whether the run used `--quick` parameters.
    pub quick: bool,
}

/// Serialises a registry to the versioned `BENCH_*.json` document.
///
/// Layout (schema version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "schema_version": 2,
///   "experiment": "path",
///   "git_rev": "abc1234",
///   "seed": 42,
///   "quick": true,
///   "metrics": [
///     {"name": "...", "type": "counter", "value": 10},
///     {"name": "...", "type": "gauge", "value": 1.5},
///     {"name": "...", "type": "timer", "total_us": 9, "spans": 1, "max_us": 9},
///     {"name": "...", "type": "histogram", "count": 3, "sum": 7,
///      "min": 1, "max": 4, "mean": 2.33,
///      "buckets": [{"le": 1, "count": 2}, {"le": 7, "count": 1}]}
///   ],
///   "series": [
///     {"name": "...", "points": [{"t_us": 0, "value": 128},
///                                {"t_us": 1000000, "value": 131}]}
///   ]
/// }
/// ```
///
/// The `series` array (schema v2) carries the virtual-time telemetry
/// samples; point timestamps are non-decreasing within each series.
#[must_use]
pub fn to_bench_json(meta: &BenchMeta, reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(&meta.experiment));
    let _ = writeln!(out, "  \"git_rev\": \"{}\",", escape(&meta.git_rev));
    let _ = writeln!(out, "  \"seed\": {},", meta.seed);
    let _ = writeln!(out, "  \"quick\": {},", meta.quick);
    out.push_str("  \"metrics\": [\n");
    let total = reg.len();
    for (i, (name, metric)) in reg.iter().enumerate() {
        let mut entry = format!(
            "    {{\"name\": \"{}\", \"type\": \"{}\"",
            escape(name),
            metric.kind()
        );
        match metric {
            Metric::Counter(c) => {
                let _ = write!(entry, ", \"value\": {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(entry, ", \"value\": {}", num(g.get()));
            }
            Metric::Timer(t) => {
                let _ = write!(
                    entry,
                    ", \"total_us\": {}, \"spans\": {}, \"max_us\": {}",
                    t.total_us(),
                    t.spans(),
                    t.max_us()
                );
            }
            Metric::Histogram(h) => {
                let _ = write!(
                    entry,
                    ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}",
                    h.count(),
                    h.sum(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                    num(h.mean())
                );
                entry.push_str(", \"buckets\": [");
                for (j, (le, count)) in h.nonzero_buckets().into_iter().enumerate() {
                    if j > 0 {
                        entry.push_str(", ");
                    }
                    let _ = write!(entry, "{{\"le\": {le}, \"count\": {count}}}");
                }
                entry.push(']');
            }
        }
        entry.push('}');
        if i + 1 < total {
            entry.push(',');
        }
        let _ = writeln!(out, "{entry}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"series\": [\n");
    let n_series = reg.series_len();
    for (i, (name, series)) in reg.series_iter().enumerate() {
        let mut entry = format!("    {{\"name\": \"{}\", \"points\": [", escape(name));
        for (j, (t_us, value)) in series.points().iter().enumerate() {
            if j > 0 {
                entry.push_str(", ");
            }
            let _ = write!(entry, "{{\"t_us\": {t_us}, \"value\": {}}}", num(*value));
        }
        entry.push_str("]}");
        if i + 1 < n_series {
            entry.push(',');
        }
        let _ = writeln!(out, "{entry}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_max() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exact zeros; bucket i covers [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Upper bounds line up with the index rule: a value lands in the
        // first bucket whose bound is >= value.
        for i in 0..HISTOGRAM_BUCKETS {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i, "bound of bucket {i}");
            if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
                assert_eq!(Histogram::bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_and_summarises() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(8));
        assert!((h.mean() - 2.8).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (3, 2), (15, 1)]);
    }

    #[test]
    fn histogram_merge_is_element_wise_add() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1, 5, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [0, 5, 1000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal recording everything in one");
        let empty = Histogram::new();
        let mut c = whole.clone();
        c.merge(&empty);
        assert_eq!(c, whole, "merging an empty histogram is a no-op");
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: no quantile exists.
        assert_eq!(Histogram::new().quantile(0.5), None);

        // All zeros: every quantile is the zero bucket, exactly.
        let mut zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(zeros.quantile(q), Some(0), "q={q}");
        }

        // Single bucket with equal observations: the [min, max] clamp
        // collapses the bucket-midpoint error to zero.
        let mut single = Histogram::new();
        for _ in 0..5 {
            single.record(100);
        }
        assert_eq!(single.quantile(0.5), Some(100));
        assert_eq!(single.quantile(1.0), Some(100));

        // u64::MAX lands in the last bucket; q=1 clamps to the exact max.
        let mut extreme = Histogram::new();
        extreme.record(1);
        extreme.record(u64::MAX);
        assert_eq!(extreme.quantile(0.0), Some(1));
        assert_eq!(extreme.quantile(0.5), Some(1));
        assert_eq!(extreme.quantile(1.0), Some(u64::MAX));

        // Out-of-range q clamps instead of panicking.
        assert_eq!(extreme.quantile(-1.0), Some(1));
        assert_eq!(extreme.quantile(2.0), Some(u64::MAX));
    }

    #[test]
    fn quantile_within_factor_of_two() {
        // The documented bound: estimate and true quantile share a
        // log₂ bucket, so they differ by at most 2x.
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            let truth = values[((q * 1000.0).ceil() as usize).clamp(1, 1000) - 1];
            let est = h.quantile(q).unwrap();
            assert!(
                est >= truth / 2 && est <= truth.saturating_mul(2),
                "q={q}: estimate {est} vs true {truth}"
            );
        }
    }

    #[test]
    fn series_records_ordered_samples() {
        let mut reg = MetricsRegistry::new();
        reg.series("live_nodes").push(0, 128.0);
        reg.series("live_nodes").push(1_000_000, 131.0);
        reg.series("violations").push(0, 4.0);
        assert_eq!(reg.series_len(), 2);
        assert_eq!(
            reg.get_series("live_nodes").unwrap().points(),
            &[(0, 128.0), (1_000_000, 131.0)]
        );
        let names: Vec<_> = reg.series_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["live_nodes", "violations"]);
        assert!(reg.is_empty(), "series live beside the point metrics");
    }

    #[test]
    #[should_panic(expected = "series sample")]
    fn series_rejects_time_travel() {
        let mut s = Series::default();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn timer_is_monotone() {
        let mut t = Timer::default();
        let span = Timer::start();
        // Burn a little time so elapsed is visibly non-negative even on
        // coarse clocks.
        std::hint::black_box((0..1000).sum::<u64>());
        t.record(span);
        assert_eq!(t.spans(), 1);
        assert!(t.max_us() <= t.total_us());
        let before = t.total_us();
        t.record_us(250);
        assert_eq!(t.spans(), 2);
        assert_eq!(t.total_us(), before + 250, "totals only ever grow");
        assert!(t.max_us() >= 250);
    }

    #[test]
    fn registry_creates_on_first_use_and_checks_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        reg.gauge("b").set(1.5);
        reg.histogram("c").record(7);
        reg.timer("d").record_us(10);
        assert_eq!(reg.len(), 4);
        match reg.get("a") {
            Some(Metric::Counter(c)) => assert_eq!(c.get(), 3),
            other => panic!("unexpected: {other:?}"),
        }
        let names: Vec<_> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"], "iteration is name-sorted");
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn registry_panics_on_kind_mismatch() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.gauge("x");
    }

    #[test]
    fn bench_json_round_trips_through_parser() {
        use super::super::json::{parse, Json};
        let mut reg = MetricsRegistry::new();
        reg.counter("lookups").add(100);
        reg.gauge("lookups_per_sec").set(123.5);
        reg.histogram("hops").record(3);
        reg.histogram("hops").record(9);
        reg.timer("wall").record_us(4200);
        reg.series("live_nodes").push(0, 64.0);
        reg.series("live_nodes").push(500_000, 66.0);
        let meta = BenchMeta {
            experiment: "unit".to_string(),
            git_rev: "deadbeef".to_string(),
            seed: 42,
            quick: true,
        };
        let doc = parse(&to_bench_json(&meta, &reg)).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(f64::from(SCHEMA_VERSION))
        );
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("unit"));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        let metrics = doc.get("metrics").and_then(Json::as_array).unwrap();
        assert_eq!(metrics.len(), 4);
        let hops = metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some("hops"))
            .unwrap();
        assert_eq!(hops.get("type").and_then(Json::as_str), Some("histogram"));
        assert_eq!(hops.get("count").and_then(Json::as_f64), Some(2.0));
        let buckets = hops.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("le").and_then(Json::as_f64), Some(3.0));
        let series = doc.get("series").and_then(Json::as_array).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(
            series[0].get("name").and_then(Json::as_str),
            Some("live_nodes")
        );
        let points = series[0].get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[1].get("t_us").and_then(Json::as_f64),
            Some(500_000.0)
        );
        assert_eq!(points[1].get("value").and_then(Json::as_f64), Some(66.0));
    }
}
