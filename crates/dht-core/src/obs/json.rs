//! Minimal JSON support for the observability layer.
//!
//! The workspace is dependency-free by design (the build environment is
//! air-gapped), so the machine-readable exports hand-roll their JSON.
//! This module owns the two halves: escaping/formatting helpers used by
//! the writers ([`crate::obs::JsonlSink`], the `BENCH_*.json` export),
//! and a small recursive-descent parser used by schema validators and
//! tools that read the exports back.
//!
//! The parser accepts exactly the JSON this crate emits (objects,
//! arrays, strings with the standard escapes, finite numbers, booleans,
//! `null`) and rejects everything else with a position-tagged error. It
//! is not a general-purpose JSON library — no comments, no trailing
//! commas, numbers parsed as `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted) — the exports never
    /// rely on duplicate or ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. Non-finite values (which JSON
/// cannot represent) are clamped to `0`, keeping the output parseable;
/// the metrics layer never produces them in normal operation.
#[must_use]
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
///
/// # Errors
/// Returns a byte-position-tagged message on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogate pairs are not emitted by the
                            // writers; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("surrogate \\u escape at byte {start}"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn resolves_escapes() {
        let doc = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{e9}";
        let doc = parse(&format!("\"{}\"", escape(nasty))).unwrap();
        assert_eq!(doc.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn num_clamps_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }
}
