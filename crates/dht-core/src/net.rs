//! Deterministic message-level fault injection and retry policy.
//!
//! The paper's churn evaluation (§4.3–§4.4) counts only *node*-level
//! failures: a "timeout" is an attempt to contact a departed node
//! through a stale routing-table entry. Real deployments also lose,
//! delay, and duplicate individual messages, and the querier responds
//! with retries and exponential backoff. This module models that layer
//! for the shared walk engine ([`crate::sim::walk`]):
//!
//! * [`FaultPlan`] — a seeded per-message fault model: loss
//!   probability, round-trip delay distribution in simulated
//!   microseconds, and optional duplication of delivered messages.
//! * [`RetryPolicy`] — what the querier does about it: a bounded number
//!   of attempts per contact, a base timeout, and exponential backoff
//!   with a cap.
//! * [`NetConditions`] — the live session combining both plus a
//!   monotone *lookup-index* counter, owned by every
//!   [`crate::sim::Membership`]. All fault draws are pure functions of
//!   `(plan seed, lookup index, target, attempt)`, so a fixed-seed run
//!   is bit-identical across executions, independent of the overlay's
//!   own RNG streams — and, crucially, independent of the *order* the
//!   contacts are made in. Order-independence is what lets the
//!   parallel executor ([`crate::sim::ParallelExecutor`]) walk lookups
//!   concurrently and still reproduce the sequential byte stream: a
//!   walk's draws depend only on its own index, not on how many
//!   messages other walks sent first.
//! * [`NetCosts`] — the per-lookup bill: retries, message-level
//!   timeouts, duplicate deliveries, and end-to-end simulated latency.
//!
//! # Two kinds of timeout
//!
//! The engine distinguishes the §4.3 *stale-entry* timeout (the
//! contacted node has departed; no retry can help; reported in
//! [`crate::lookup::LookupTrace::timeouts`]) from the *message* timeout
//! introduced here (the node is live but every one of the
//! [`RetryPolicy::max_attempts`] sends was lost; reported in
//! [`NetCosts::msg_timeouts`]). Both cost the querier the full retry
//! cycle of waiting — it cannot tell the cases apart on the wire — but
//! only the former may feed repair-on-use, because the latter's target
//! is still alive and evicting it would let the fault layer mutate
//! routing state.
//!
//! # Zero-cost when disabled
//!
//! With [`FaultPlan::none`] every send is delivered on the first
//! attempt with zero delay: no retries, no message timeouts, no added
//! latency, and — critically — no change to any routing decision, so
//! every fixed-seed trace is bit-identical to the engine without this
//! layer. With `loss = 0.0` and a non-zero delay model, hop counts are
//! still exactly those of the fault-free engine; only
//! [`NetCosts::latency_us`] changes.

use crate::hash::splitmix64;

/// Simulated time in microseconds (matches the discrete-event engine's
/// clock resolution).
pub type SimMicros = u64;

/// Round-trip delay distribution for one delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every delivered message takes exactly this round trip, in µs.
    Constant(SimMicros),
    /// Round trips drawn uniformly from `[lo, hi]` µs (inclusive).
    Uniform(SimMicros, SimMicros),
}

impl DelayModel {
    /// The round trip for a message whose fault draw is `r`.
    #[must_use]
    fn sample(self, r: u64) -> SimMicros {
        match self {
            DelayModel::Constant(rtt) => rtt,
            DelayModel::Uniform(lo, hi) => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let span = hi - lo;
                if span == 0 {
                    return lo;
                }
                // Lemire reduction onto [0, span] (span < 2^64, so +1 fits
                // in u128).
                lo + ((u128::from(r) * (u128::from(span) + 1)) >> 64) as u64
            }
        }
    }
}

/// A deterministic, seeded per-message fault model.
///
/// The loss/delay/duplication draws for every message the walk engine
/// sends are pure functions of `(seed, lookup index, target, attempt)`
/// — no shared counter, so draws are independent of the order contacts
/// happen to be made in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault draw stream (independent of every overlay RNG).
    pub seed: u64,
    /// Probability in `[0, 1]` that any single message is lost.
    pub loss: f64,
    /// Round-trip delay of delivered messages.
    pub delay: DelayModel,
    /// Probability in `[0, 1]` that a delivered message is duplicated.
    /// Duplicates are idempotent: they are counted
    /// ([`NetCosts::duplicates`]) but never alter routing.
    pub duplicate: f64,
}

impl FaultPlan {
    /// The ideal network: nothing is lost, delayed, or duplicated.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            loss: 0.0,
            delay: DelayModel::Constant(0),
            duplicate: 0.0,
        }
    }

    /// A lossy wide-area profile: the given loss rate, 20–80 ms round
    /// trips, and 1% duplication.
    #[must_use]
    pub fn lossy(seed: u64, loss: f64) -> Self {
        Self {
            seed,
            loss,
            delay: DelayModel::Uniform(20_000, 80_000),
            duplicate: 0.01,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Retry/backoff behaviour of the querier for one contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total sends per contact (first attempt included). At least 1.
    pub max_attempts: u32,
    /// Timeout the querier waits before the first retry, in µs.
    pub base_timeout_us: SimMicros,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff_factor: u32,
    /// Upper bound on any single backoff wait, in µs.
    pub max_timeout_us: SimMicros,
}

impl RetryPolicy {
    /// The default querier: 4 attempts, 250 ms base timeout, doubling
    /// backoff capped at 2 s.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            max_attempts: 4,
            base_timeout_us: 250_000,
            backoff_factor: 2,
            max_timeout_us: 2_000_000,
        }
    }

    /// The timeout waited after the `attempt`-th send (1-based) goes
    /// unanswered: `base * factor^(attempt-1)`, capped.
    ///
    /// # Panics
    /// Panics if `attempt` is zero (attempts are 1-based).
    #[must_use]
    pub fn timeout_us(&self, attempt: u32) -> SimMicros {
        assert!(attempt >= 1, "attempts are 1-based");
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt - 1);
        self.base_timeout_us
            .saturating_mul(factor)
            .min(self.max_timeout_us)
    }

    /// Total time spent declaring one contact unreachable: the sum of
    /// all [`RetryPolicy::max_attempts`] timeouts.
    #[must_use]
    pub fn give_up_us(&self) -> SimMicros {
        (1..=self.max_attempts.max(1))
            .map(|a| self.timeout_us(a))
            .fold(0u64, SimMicros::saturating_add)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// Outcome of one contact (one candidate, up to
/// [`RetryPolicy::max_attempts`] sends) under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactOutcome {
    /// `true` iff some send was answered within the attempt budget.
    pub delivered: bool,
    /// Sends consumed (1 when the first attempt got through).
    pub attempts: u32,
    /// Wall-clock cost of the contact: backoff waits for every lost
    /// send, plus the round trip of the delivered one.
    pub latency_us: SimMicros,
    /// `true` iff the delivered message was duplicated in flight.
    pub duplicated: bool,
}

/// The live network conditions of one simulated overlay: the fault
/// plan, the retry policy, and the monotone lookup-index counter that
/// keys the deterministic draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConditions {
    /// Per-message fault model.
    pub plan: FaultPlan,
    /// Querier retry/backoff behaviour.
    pub retry: RetryPolicy,
    /// Next workload lookup index (monotone across all walks; each
    /// sequential walk takes one, the parallel executor reserves a
    /// contiguous range per batch).
    next_lookup: u64,
}

impl NetConditions {
    /// Conditions combining `plan` and `retry`, starting at lookup
    /// index zero.
    #[must_use]
    pub fn new(plan: FaultPlan, retry: RetryPolicy) -> Self {
        Self {
            plan,
            retry,
            next_lookup: 0,
        }
    }

    /// The ideal network with the standard retry policy — the default
    /// of every [`crate::sim::Membership`].
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(FaultPlan::none(), RetryPolicy::standard())
    }

    /// Number of lookup indices handed out so far under these
    /// conditions.
    #[must_use]
    pub fn lookups_started(&self) -> u64 {
        self.next_lookup
    }

    /// Takes the next lookup index — the walk engine calls this once
    /// per sequential walk.
    pub fn take_lookup_index(&mut self) -> u64 {
        let index = self.next_lookup;
        self.next_lookup += 1;
        index
    }

    /// Reserves `count` consecutive lookup indices for a batch of
    /// walks, returning the first. The parallel executor assigns
    /// `base + i` to the `i`-th request in canonical workload order, so
    /// the draw streams are identical no matter how the batch is
    /// sharded.
    pub fn reserve_lookup_indices(&mut self, count: u64) -> u64 {
        let base = self.next_lookup;
        self.next_lookup += count;
        base
    }

    /// The fault word for the `attempt`-th send (1-based) of `lookup`'s
    /// contact with `target` — a pure function of the plan seed and the
    /// key, independent of every other draw.
    fn draw(&self, lookup: u64, target: u64, attempt: u32) -> u64 {
        let lane = splitmix64(lookup ^ 0x006d_6573_7361_6765)
            ^ splitmix64(target ^ 0x7461_7267_6574)
            ^ splitmix64(u64::from(attempt) ^ 0x6174_746d_7074);
        splitmix64(self.plan.seed ^ splitmix64(lane))
    }

    /// Contacts a *live* node on behalf of the `lookup`-indexed walk:
    /// sends until a message gets through or the attempt budget is
    /// spent, accumulating backoff waits and the final round trip.
    ///
    /// The outcome is a pure function of `(plan, retry, lookup,
    /// target)` — contacting the same target twice within one lookup
    /// yields the same outcome (the network's disposition toward that
    /// pair is fixed for the lookup's duration), and contacts from
    /// different lookups never perturb each other.
    #[must_use]
    pub fn contact(&self, lookup: u64, target: u64) -> ContactOutcome {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut latency: SimMicros = 0;
        for attempt in 1..=max_attempts {
            let r = self.draw(lookup, target, attempt);
            if !roll(r, self.plan.loss) {
                latency =
                    latency.saturating_add(self.plan.delay.sample(splitmix64(r ^ 0x0072_7474)));
                return ContactOutcome {
                    delivered: true,
                    attempts: attempt,
                    latency_us: latency,
                    duplicated: roll(splitmix64(r ^ 0x0064_7570), self.plan.duplicate),
                };
            }
            latency = latency.saturating_add(self.retry.timeout_us(attempt));
        }
        ContactOutcome {
            delivered: false,
            attempts: max_attempts,
            latency_us: latency,
            duplicated: false,
        }
    }

    /// Wall-clock cost of contacting a *departed* node (the §4.3
    /// stale-entry timeout): no send can be answered, so the querier
    /// burns the full retry cycle before giving up. Consumes no fault
    /// draws — a dead node answers nothing whether or not the network
    /// also lost the request.
    #[must_use]
    pub fn stale_wait_us(&self) -> SimMicros {
        self.retry.give_up_us()
    }
}

impl Default for NetConditions {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Converts a fault word into a Bernoulli outcome with probability `p`.
fn roll(r: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    ((r >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// The message-level bill of one lookup, accumulated by the walk engine
/// alongside the hop trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCosts {
    /// Re-sends forced by message loss (attempts beyond the first, over
    /// all contacts of the walk). Stale-entry detection is *not*
    /// counted here — see the module docs.
    pub retries: u32,
    /// Contacts of live nodes abandoned because every send was lost.
    pub msg_timeouts: u32,
    /// Delivered messages that were duplicated in flight (idempotent).
    pub duplicates: u32,
    /// Simulated end-to-end latency: per-hop round trips, backoff waits
    /// for lost sends, and full retry cycles for stale entries and
    /// unreachable contacts.
    pub latency_us: SimMicros,
}

impl NetCosts {
    /// Folds one contact outcome into the bill.
    pub fn absorb(&mut self, outcome: &ContactOutcome) {
        self.retries += outcome.attempts.saturating_sub(1);
        if !outcome.delivered {
            self.msg_timeouts += 1;
        }
        if outcome.duplicated {
            self.duplicates += 1;
        }
        self.latency_us = self.latency_us.saturating_add(outcome.latency_us);
    }

    /// Adds the cost of one stale-entry (departed node) detection.
    pub fn absorb_stale(&mut self, wait_us: SimMicros) {
        self.latency_us = self.latency_us.saturating_add(wait_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_contact_is_free_and_instant() {
        let net = NetConditions::ideal();
        for lookup in 0..100 {
            let c = net.contact(lookup, 7);
            assert!(c.delivered);
            assert_eq!(c.attempts, 1);
            assert_eq!(c.latency_us, 0);
            assert!(!c.duplicated);
        }
    }

    #[test]
    fn lookup_indices_are_monotone_and_reservable() {
        let mut net = NetConditions::ideal();
        assert_eq!(net.lookups_started(), 0);
        assert_eq!(net.take_lookup_index(), 0);
        assert_eq!(net.take_lookup_index(), 1);
        assert_eq!(net.reserve_lookup_indices(10), 2, "batch starts after");
        assert_eq!(net.take_lookup_index(), 12, "batch advances the counter");
        assert_eq!(net.lookups_started(), 13);
    }

    #[test]
    fn total_loss_exhausts_exactly_max_attempts() {
        let plan = FaultPlan {
            seed: 3,
            loss: 1.0,
            delay: DelayModel::Constant(5_000),
            duplicate: 0.0,
        };
        let retry = RetryPolicy {
            max_attempts: 3,
            base_timeout_us: 100,
            backoff_factor: 2,
            max_timeout_us: 10_000,
        };
        let net = NetConditions::new(plan, retry);
        let c = net.contact(0, 1);
        assert!(!c.delivered);
        assert_eq!(c.attempts, 3);
        assert_eq!(c.latency_us, 100 + 200 + 400);
    }

    #[test]
    fn backoff_caps_at_max_timeout() {
        let retry = RetryPolicy {
            max_attempts: 10,
            base_timeout_us: 1_000,
            backoff_factor: 10,
            max_timeout_us: 50_000,
        };
        assert_eq!(retry.timeout_us(1), 1_000);
        assert_eq!(retry.timeout_us(2), 10_000);
        assert_eq!(retry.timeout_us(3), 50_000, "capped");
        assert_eq!(retry.timeout_us(9), 50_000, "saturates without overflow");
        assert_eq!(
            retry.give_up_us(),
            1_000 + 10_000 + 8 * 50_000,
            "give-up time sums every capped wait"
        );
    }

    #[test]
    fn delay_models_stay_in_bounds() {
        assert_eq!(DelayModel::Constant(7).sample(u64::MAX), 7);
        for r in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000, 12345] {
            let d = DelayModel::Uniform(10, 20).sample(r);
            assert!((10..=20).contains(&d), "draw {d} outside [10, 20]");
        }
        // Reversed and degenerate bounds are tolerated.
        assert!((10..=20).contains(&DelayModel::Uniform(20, 10).sample(99)));
        assert_eq!(DelayModel::Uniform(5, 5).sample(42), 5);
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_key() {
        let plan = FaultPlan::lossy(11, 0.5);
        let run = || {
            let net = NetConditions::new(plan, RetryPolicy::standard());
            (0..50)
                .map(|i| net.contact(i, i * 3 + 1))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // A different seed yields a different outcome sequence.
        let other = NetConditions::new(FaultPlan::lossy(12, 0.5), RetryPolicy::standard());
        let theirs: Vec<ContactOutcome> = (0..50).map(|i| other.contact(i, i * 3 + 1)).collect();
        assert_ne!(run(), theirs);
    }

    #[test]
    fn draws_are_independent_of_contact_order() {
        // The fault word depends only on (lookup, target, attempt):
        // interleaving contacts from many lookups in any order — the
        // situation the parallel executor creates — yields outcomes
        // identical to the canonical sequential order.
        let plan = FaultPlan::lossy(11, 0.5);
        let net = NetConditions::new(plan, RetryPolicy::standard());
        let keys: Vec<(u64, u64)> = (0..64).map(|i| (i / 4, splitmix64(i))).collect();
        let forward: Vec<ContactOutcome> = keys.iter().map(|&(l, t)| net.contact(l, t)).collect();
        let reversed: Vec<ContactOutcome> =
            keys.iter().rev().map(|&(l, t)| net.contact(l, t)).collect();
        let mut reversed = reversed;
        reversed.reverse();
        assert_eq!(forward, reversed);
        // Distinct lookups draw distinct fault words for the same target.
        let a: Vec<bool> = (0..200).map(|l| net.contact(l, 9).delivered).collect();
        let b: Vec<bool> = (0..200).map(|l| net.contact(l, 10).delivered).collect();
        assert_ne!(a, b, "targets get independent lanes");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let plan = FaultPlan {
            seed: 5,
            loss: 0.2,
            delay: DelayModel::Constant(0),
            duplicate: 0.0,
        };
        // Single-attempt policy so every contact is one Bernoulli draw.
        let retry = RetryPolicy {
            max_attempts: 1,
            base_timeout_us: 1,
            backoff_factor: 1,
            max_timeout_us: 1,
        };
        let net = NetConditions::new(plan, retry);
        let lost = (0..10_000)
            .filter(|&i| !net.contact(i, 1).delivered)
            .count();
        assert!(
            (1_700..=2_300).contains(&lost),
            "empirical loss {lost}/10000 should be ~2000"
        );
    }

    #[test]
    fn net_costs_absorb_contacts() {
        let mut costs = NetCosts::default();
        costs.absorb(&ContactOutcome {
            delivered: true,
            attempts: 3,
            latency_us: 900,
            duplicated: true,
        });
        costs.absorb(&ContactOutcome {
            delivered: false,
            attempts: 4,
            latency_us: 1_500,
            duplicated: false,
        });
        costs.absorb_stale(2_000);
        assert_eq!(costs.retries, 2 + 3);
        assert_eq!(costs.msg_timeouts, 1);
        assert_eq!(costs.duplicates, 1);
        assert_eq!(costs.latency_us, 900 + 1_500 + 2_000);
    }

    #[test]
    fn repeated_contact_within_a_lookup_is_fixed() {
        // Same (lookup, target) pair, same disposition — the walk engine
        // relies on this when a candidate recurs across steps.
        let plan = FaultPlan::lossy(3, 0.5);
        let net = NetConditions::new(plan, RetryPolicy::standard());
        for lookup in 0..20 {
            for target in 0..20 {
                assert_eq!(net.contact(lookup, target), net.contact(lookup, target));
            }
        }
    }

    #[test]
    fn stale_wait_matches_give_up_cycle() {
        let net = NetConditions::ideal();
        assert_eq!(net.stale_wait_us(), net.retry.give_up_us());
    }
}
