//! Compact struct-of-arrays node store backing [`crate::sim::Membership`].
//!
//! The original arena kept per-node state in a `BTreeMap<NodeToken, S>`
//! plus a dense sorted `Vec<NodeToken>` mirror. That pairing is fine at
//! the paper's d·2^d ≈ 90k scale but caps million-node runs twice over:
//! the B-tree scatters small state structs across pointer-chased tree
//! nodes, and the dense mirror pays an O(n) `memmove` per join/leave.
//!
//! [`CompactStore`] replaces both with three coupled structures:
//!
//! ```text
//!  chunks:  [ tokens ≤1024 | slots ]  [ tokens | slots ]  ...   sorted
//!              │ binary search over chunk `last()`s, then in-chunk
//!              ▼
//!  slab:    states[slot]   tokens_by_slot[slot]   loads[slot]
//!              ▲ unordered, swap-remove compacted, never shifts
//!              │
//!  index:   open-addressed token → slot hash table (linear probing,
//!           backward-shift deletion)
//! ```
//!
//! * **Chunked sorted tokens** — the token order lives in bounded chunks
//!   (≤ [`CHUNK_CAP`] entries), so a join/leave shifts at most one chunk:
//!   amortized O(1) with a ~8 KiB worst-case `memmove` instead of the
//!   old O(n) one. Ordered ring searches binary-search the chunk spine
//!   and then the chunk, preserving the exact BTreeMap range semantics.
//! * **State slab** — states are dense `Vec<S>` entries addressed by
//!   `slot`; removal swap-removes and patches the two references (hash
//!   index + chunk) to the moved entry. Iteration in token order walks
//!   the chunks and indexes the slab.
//! * **Hash index** — token → slot lookups are O(1) without touching the
//!   ordered structure; this is the `contains`/`get` hot path.
//!
//! Query-load counters (the paper's §4.2 congestion measure) are a
//! fourth parallel slab column — `loads[slot]` — so load accounting is
//! an indexed add, and departures drop the counter with the slot: a
//! departed node can never resurrect a "ghost" counter because its slot
//! is gone.
//!
//! Every operation reproduces the observable behavior of the BTreeMap
//! backend exactly (same iteration order, same range semantics, same
//! duplicate-insert panic), which is what keeps the golden traces
//! byte-identical; `tests/compact_membership.rs` pins this equivalence
//! property end-to-end.

use crate::hash::splitmix64;
use crate::overlay::NodeToken;

/// Maximum tokens per chunk before it splits in half.
///
/// 1024 × 8-byte tokens + 1024 × 4-byte slots ≈ 12 KiB per chunk: large
/// enough that the spine stays short (1M nodes ≈ 1–2k chunks), small
/// enough that the per-insert `memmove` is bounded and cache-resident.
pub const CHUNK_CAP: usize = 1024;

/// Sentinel marking a vacant hash-table entry.
const EMPTY: u32 = u32::MAX;

/// Rough per-entry heap cost of a `BTreeMap`/`BTreeSet` with entries of
/// `entry_bytes` bytes: payload plus amortized node headers and slack
/// from B-tree fill factor. Used by overlays to report auxiliary-index
/// memory in [`crate::overlay::Overlay::state_bytes`]; an estimate, not
/// an allocator measurement.
#[must_use]
pub fn approx_btree_bytes(len: usize, entry_bytes: usize) -> usize {
    // B-tree nodes hold up to 11 entries and average ~75% fill; the
    // node header plus parent pointers amortize to roughly 16 bytes per
    // entry on top of the (padded) payload.
    len * (entry_bytes + 16)
}

/// One bounded run of the sorted token order.
#[derive(Debug, Clone)]
struct Chunk {
    /// Sorted live tokens in this chunk (non-empty by invariant).
    tokens: Vec<u64>,
    /// Slab slot of the matching token (`slots[i]` ↔ `tokens[i]`).
    slots: Vec<u32>,
}

impl Chunk {
    fn last(&self) -> u64 {
        *self.tokens.last().expect("chunk is never empty")
    }

    fn heap_bytes(&self) -> usize {
        self.tokens.capacity() * std::mem::size_of::<u64>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
    }
}

/// Open-addressed token → slot map (linear probing, power-of-two
/// capacity, backward-shift deletion so no tombstones accumulate).
#[derive(Debug, Clone, Default)]
struct TokenIndex {
    /// `(token, slot)`; `slot == EMPTY` marks a vacant entry.
    entries: Vec<(u64, u32)>,
    len: usize,
}

impl TokenIndex {
    fn probe_start(&self, token: u64) -> usize {
        (splitmix64(token) as usize) & (self.entries.len() - 1)
    }

    /// Index of `token`'s entry, if present.
    fn find(&self, token: u64) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() - 1;
        let mut i = self.probe_start(token);
        loop {
            let (t, s) = self.entries[i];
            if s == EMPTY {
                return None;
            }
            if t == token {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    fn get(&self, token: u64) -> Option<u32> {
        self.find(token).map(|i| self.entries[i].1)
    }

    /// Inserts a new token. Caller guarantees it is absent.
    fn insert(&mut self, token: u64, slot: u32) {
        if (self.len + 1) * 4 > self.entries.len() * 3 {
            self.grow();
        }
        let mask = self.entries.len() - 1;
        let mut i = self.probe_start(token);
        while self.entries[i].1 != EMPTY {
            debug_assert_ne!(self.entries[i].0, token, "token already indexed");
            i = (i + 1) & mask;
        }
        self.entries[i] = (token, slot);
        self.len += 1;
    }

    /// Redirects an existing token to a new slot (after a swap-remove
    /// moved its state).
    fn set_slot(&mut self, token: u64, slot: u32) {
        let i = self.find(token).expect("token must be indexed");
        self.entries[i].1 = slot;
    }

    /// Removes a token, returning its slot. Backward-shift deletion
    /// keeps probe sequences intact without tombstones.
    fn remove(&mut self, token: u64) -> Option<u32> {
        let mut hole = self.find(token)?;
        let slot = self.entries[hole].1;
        let mask = self.entries.len() - 1;
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let (t, s) = self.entries[j];
            if s == EMPTY {
                break;
            }
            let ideal = (splitmix64(t) as usize) & mask;
            // The entry at `j` may slide into the hole only if its ideal
            // position is not cyclically inside (hole, j] — otherwise the
            // move would break its own probe chain.
            let blocked = if hole < j {
                ideal > hole && ideal <= j
            } else {
                ideal > hole || ideal <= j
            };
            if !blocked {
                self.entries[hole] = self.entries[j];
                hole = j;
            }
        }
        self.entries[hole] = (0, EMPTY);
        self.len -= 1;
        Some(slot)
    }

    fn grow(&mut self) {
        let cap = (self.entries.len() * 2).max(16);
        let old = std::mem::replace(&mut self.entries, vec![(0, EMPTY); cap]);
        let mask = cap - 1;
        for (t, s) in old {
            if s != EMPTY {
                let mut i = (splitmix64(t) as usize) & mask;
                while self.entries[i].1 != EMPTY {
                    i = (i + 1) & mask;
                }
                self.entries[i] = (t, s);
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Compact struct-of-arrays node store: chunked sorted token order, a
/// swap-remove state slab, per-slot query-load counters, and a hash
/// index from token to slot. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct CompactStore<S> {
    chunks: Vec<Chunk>,
    states: Vec<S>,
    /// Token owning each slab slot (`tokens_by_slot[slot]`).
    tokens_by_slot: Vec<u64>,
    /// Query-load counter per slab slot.
    loads: Vec<u64>,
    index: TokenIndex,
}

impl<S> Default for CompactStore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> CompactStore<S> {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self {
            chunks: Vec::new(),
            states: Vec::new(),
            tokens_by_slot: Vec::new(),
            loads: Vec::new(),
            index: TokenIndex::default(),
        }
    }

    /// Number of live nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` iff no node is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// `true` iff `token` is live.
    #[must_use]
    pub fn contains(&self, token: NodeToken) -> bool {
        self.index.get(token).is_some()
    }

    /// State of a live node.
    #[must_use]
    pub fn get(&self, token: NodeToken) -> Option<&S> {
        self.index
            .get(token)
            .map(|slot| &self.states[slot as usize])
    }

    /// Mutable state of a live node.
    pub fn get_mut(&mut self, token: NodeToken) -> Option<&mut S> {
        self.index
            .get(token)
            .map(|slot| &mut self.states[slot as usize])
    }

    /// Position of the chunk whose range should hold `token`: the first
    /// chunk whose last element is `>= token`, or the final chunk when
    /// `token` is beyond every chunk.
    fn chunk_for(&self, token: u64) -> usize {
        let p = self.chunks.partition_point(|c| c.last() < token);
        p.min(self.chunks.len().saturating_sub(1))
    }

    /// Inserts a new node with a zeroed query-load counter.
    ///
    /// # Panics
    /// Panics if `token` is already live (same contract as the BTreeMap
    /// backend: joins must re-draw identifiers on collision).
    pub fn insert(&mut self, token: NodeToken, state: S) {
        assert!(
            self.index.get(token).is_none(),
            "node token {token} already occupied"
        );
        let slot = u32::try_from(self.states.len()).expect("slab exceeds u32 slots");
        self.states.push(state);
        self.tokens_by_slot.push(token);
        self.loads.push(0);
        self.index.insert(token, slot);

        if self.chunks.is_empty() {
            self.chunks.push(Chunk {
                tokens: vec![token],
                slots: vec![slot],
            });
            return;
        }
        let ci = self.chunk_for(token);
        let chunk = &mut self.chunks[ci];
        let pos = chunk.tokens.partition_point(|&t| t < token);
        chunk.tokens.insert(pos, token);
        chunk.slots.insert(pos, slot);
        if chunk.tokens.len() >= CHUNK_CAP {
            let mid = chunk.tokens.len() / 2;
            let hi_tokens = chunk.tokens.split_off(mid);
            let hi_slots = chunk.slots.split_off(mid);
            self.chunks.insert(
                ci + 1,
                Chunk {
                    tokens: hi_tokens,
                    slots: hi_slots,
                },
            );
        }
    }

    /// Removes a node, dropping its query-load counter. Returns the
    /// state if the node was live.
    pub fn remove(&mut self, token: NodeToken) -> Option<S> {
        let slot = self.index.remove(token)? as usize;

        // Drop the ordered entry.
        let ci = self.chunk_for(token);
        let chunk = &mut self.chunks[ci];
        let pos = chunk
            .tokens
            .binary_search(&token)
            .expect("ordered view out of sync with index");
        chunk.tokens.remove(pos);
        chunk.slots.remove(pos);
        if chunk.tokens.is_empty() {
            self.chunks.remove(ci);
        }

        // Swap-remove the slab entry and patch references to the moved
        // tail entry (if any).
        let state = self.states.swap_remove(slot);
        self.tokens_by_slot.swap_remove(slot);
        self.loads.swap_remove(slot);
        if slot < self.states.len() {
            let moved = self.tokens_by_slot[slot];
            let new_slot = u32::try_from(slot).expect("slot fits u32");
            self.index.set_slot(moved, new_slot);
            let mi = self.chunk_for(moved);
            let mchunk = &mut self.chunks[mi];
            let mpos = mchunk
                .tokens
                .binary_search(&moved)
                .expect("moved token missing from ordered view");
            mchunk.slots[mpos] = new_slot;
        }
        Some(state)
    }

    /// Live tokens in ascending order.
    #[must_use]
    pub fn tokens(&self) -> Vec<NodeToken> {
        let mut out = Vec::with_capacity(self.len());
        for c in &self.chunks {
            out.extend_from_slice(&c.tokens);
        }
        out
    }

    /// The `i`-th smallest live token, in O(#chunks).
    #[must_use]
    pub fn token_at(&self, i: usize) -> Option<NodeToken> {
        let mut before = 0;
        for c in &self.chunks {
            let n = c.tokens.len();
            if i < before + n {
                return Some(c.tokens[i - before]);
            }
            before += n;
        }
        None
    }

    /// Iterates live tokens in ascending order without allocating.
    pub fn token_iter(&self) -> impl Iterator<Item = NodeToken> + '_ {
        self.chunks.iter().flat_map(|c| c.tokens.iter().copied())
    }

    /// Smallest live token.
    #[must_use]
    pub fn first_token(&self) -> Option<NodeToken> {
        self.chunks.first().map(|c| c.tokens[0])
    }

    /// Largest live token.
    #[must_use]
    pub fn last_token(&self) -> Option<NodeToken> {
        self.chunks.last().map(|c| c.last())
    }

    /// Iterates `(token, state)` pairs in ascending token order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeToken, &S)> {
        self.chunks.iter().flat_map(move |c| {
            c.tokens
                .iter()
                .zip(&c.slots)
                .map(move |(&t, &slot)| (t, &self.states[slot as usize]))
        })
    }

    /// Iterates node states in ascending token order.
    pub fn states(&self) -> impl Iterator<Item = &S> {
        self.iter().map(|(_, s)| s)
    }

    /// Mutably iterates node states in ascending token order.
    ///
    /// The slab is unordered, so this materialises one `Option<&mut S>`
    /// per slot and yields them in chunk order — O(n) setup, used only
    /// by whole-membership sweeps which are O(n) anyway.
    pub fn states_mut(&mut self) -> impl Iterator<Item = &mut S> {
        let mut refs: Vec<Option<&mut S>> = self.states.iter_mut().map(Some).collect();
        let order: Vec<u32> = self
            .chunks
            .iter()
            .flat_map(|c| c.slots.iter().copied())
            .collect();
        order
            .into_iter()
            .map(move |slot| refs[slot as usize].take().expect("slot yielded twice"))
    }

    // ------------------------------------------------------------------
    // Ordered ring searches (exact BTreeMap range semantics)
    // ------------------------------------------------------------------

    /// First live token `>= point`, without wrapping.
    #[must_use]
    pub fn lower_bound(&self, point: u64) -> Option<NodeToken> {
        let p = self.chunks.partition_point(|c| c.last() < point);
        let c = self.chunks.get(p)?;
        let i = c.tokens.partition_point(|&t| t < point);
        Some(c.tokens[i])
    }

    /// Last live token `< point` (or `<= point` when `inclusive`),
    /// without wrapping.
    #[must_use]
    pub fn upper_bound(&self, point: u64, inclusive: bool) -> Option<NodeToken> {
        let below = |t: u64| if inclusive { t <= point } else { t < point };
        let p = self.chunks.partition_point(|c| below(c.last()));
        if let Some(c) = self.chunks.get(p) {
            let i = c.tokens.partition_point(|&t| below(t));
            if i > 0 {
                return Some(c.tokens[i - 1]);
            }
        }
        if p > 0 {
            return Some(self.chunks[p - 1].last());
        }
        None
    }

    /// First live token `>= point`, wrapping to the smallest.
    #[must_use]
    pub fn successor_of(&self, point: u64) -> Option<NodeToken> {
        self.lower_bound(point).or_else(|| self.first_token())
    }

    /// Last live token `< point`, wrapping to the largest.
    #[must_use]
    pub fn predecessor_of(&self, point: u64) -> Option<NodeToken> {
        self.upper_bound(point, false).or_else(|| self.last_token())
    }

    /// Last live token `<= point`, wrapping to the largest.
    #[must_use]
    pub fn at_or_before(&self, point: u64) -> Option<NodeToken> {
        self.upper_bound(point, true).or_else(|| self.last_token())
    }

    /// Smallest live token in `[lo, hi]` (no wrapping).
    #[must_use]
    pub fn first_in_range(&self, lo: u64, hi: u64) -> Option<NodeToken> {
        self.lower_bound(lo).filter(|&t| t <= hi)
    }

    /// Largest live token in `[lo, hi]` (no wrapping).
    #[must_use]
    pub fn last_in_range(&self, lo: u64, hi: u64) -> Option<NodeToken> {
        self.upper_bound(hi, true).filter(|&t| t >= lo)
    }

    // ------------------------------------------------------------------
    // Query-load accounting (dense, slot-indexed)
    // ------------------------------------------------------------------

    /// Adds `k` to `token`'s query-load counter (no-op if departed).
    pub fn add_load(&mut self, token: NodeToken, k: u64) {
        if let Some(slot) = self.index.get(token) {
            self.loads[slot as usize] += k;
        }
    }

    /// Current query-load counter of `token` (zero if departed).
    #[must_use]
    pub fn load_of(&self, token: NodeToken) -> u64 {
        self.index
            .get(token)
            .map_or(0, |slot| self.loads[slot as usize])
    }

    /// Per-node query loads in ascending token order.
    #[must_use]
    pub fn loads_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        for c in &self.chunks {
            out.extend(c.slots.iter().map(|&slot| self.loads[slot as usize]));
        }
        out
    }

    /// Sum of all query-load counters.
    #[must_use]
    pub fn loads_total(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Zeroes every query-load counter.
    pub fn reset_loads(&mut self) {
        self.loads.iter_mut().for_each(|l| *l = 0);
    }

    // ------------------------------------------------------------------
    // Memory accounting
    // ------------------------------------------------------------------

    /// Heap bytes held by the store itself (chunk spine, state slab,
    /// load counters, hash index), from `Vec` capacities. Per-state
    /// heap payloads (e.g. a Chord finger table) are reported separately
    /// by the overlay via `SimOverlay::state_heap_bytes`.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let chunk_bytes: usize = self.chunks.iter().map(Chunk::heap_bytes).sum();
        self.chunks.capacity() * std::mem::size_of::<Chunk>()
            + chunk_bytes
            + self.states.capacity() * std::mem::size_of::<S>()
            + self.tokens_by_slot.capacity() * std::mem::size_of::<u64>()
            + self.loads.capacity() * std::mem::size_of::<u64>()
            + self.index.heap_bytes()
    }

    /// Internal consistency check used by tests: every token reachable
    /// through the ordered view resolves to its own slot through the
    /// hash index, chunks are sorted and non-empty, and the slab columns
    /// agree.
    #[cfg(test)]
    fn check_invariants(&self) {
        assert_eq!(self.states.len(), self.tokens_by_slot.len());
        assert_eq!(self.states.len(), self.loads.len());
        assert_eq!(self.index.len, self.states.len());
        let mut count = 0;
        let mut prev: Option<u64> = None;
        for c in &self.chunks {
            assert!(!c.tokens.is_empty(), "empty chunk survived");
            assert!(c.tokens.len() < CHUNK_CAP, "chunk exceeded capacity");
            assert_eq!(c.tokens.len(), c.slots.len());
            for (&t, &slot) in c.tokens.iter().zip(&c.slots) {
                assert!(prev.is_none_or(|p| p < t), "tokens out of order");
                prev = Some(t);
                assert_eq!(self.tokens_by_slot[slot as usize], t, "slot mismatch");
                assert_eq!(self.index.get(t), Some(slot), "index mismatch");
                count += 1;
            }
        }
        assert_eq!(count, self.states.len(), "ordered view lost entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Deterministic token stream for model tests.
    fn stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut x = seed;
        std::iter::repeat_with(move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(x)
        })
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: CompactStore<String> = CompactStore::new();
        s.insert(10, "a".into());
        s.insert(5, "b".into());
        s.insert(20, "c".into());
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(5).map(String::as_str), Some("b"));
        assert_eq!(s.tokens(), vec![5, 10, 20]);
        assert_eq!(s.remove(10).as_deref(), Some("a"));
        assert_eq!(s.remove(10), None);
        assert_eq!(s.tokens(), vec![5, 20]);
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn duplicate_insert_panics() {
        let mut s: CompactStore<u32> = CompactStore::new();
        s.insert(1, 0);
        s.insert(1, 0);
    }

    #[test]
    fn matches_btreemap_model_through_churn() {
        let mut s: CompactStore<u64> = CompactStore::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let tokens: Vec<u64> = stream(42).take(4000).map(|t| t % 10_000).collect();
        for (i, &t) in tokens.iter().enumerate() {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(t) {
                s.insert(t, i as u64);
                e.insert(i as u64);
            } else {
                // Alternate removing the probed token and a model member.
                assert_eq!(s.remove(t), model.remove(&t));
            }
            if i % 512 == 0 {
                s.check_invariants();
                assert_eq!(s.tokens(), model.keys().copied().collect::<Vec<_>>());
            }
        }
        s.check_invariants();
        assert_eq!(s.len(), model.len());
        assert_eq!(s.tokens(), model.keys().copied().collect::<Vec<_>>());
        for (i, (&t, &v)) in model.iter().enumerate() {
            assert_eq!(s.get(t), Some(&v));
            assert_eq!(s.token_at(i), Some(t));
        }
        assert_eq!(s.token_at(model.len()), None);
        // Ordered iteration matches.
        let pairs: Vec<(u64, u64)> = s.iter().map(|(t, &v)| (t, v)).collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(&t, &v)| (t, v)).collect();
        assert_eq!(pairs, want);
    }

    #[test]
    fn ordered_queries_match_model() {
        let mut s: CompactStore<()> = CompactStore::new();
        let mut model: BTreeMap<u64, ()> = BTreeMap::new();
        for t in stream(7).take(3000).map(|t| t % 5_000) {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(t) {
                s.insert(t, ());
                e.insert(());
            }
        }
        for point in stream(99).take(500).map(|p| p % 5_100) {
            let succ = model
                .range(point..)
                .next()
                .or_else(|| model.iter().next())
                .map(|(&t, ())| t);
            assert_eq!(s.successor_of(point), succ, "successor_of({point})");
            let pred = model
                .range(..point)
                .next_back()
                .or_else(|| model.iter().next_back())
                .map(|(&t, ())| t);
            assert_eq!(s.predecessor_of(point), pred, "predecessor_of({point})");
            let aob = model
                .range(..=point)
                .next_back()
                .or_else(|| model.iter().next_back())
                .map(|(&t, ())| t);
            assert_eq!(s.at_or_before(point), aob, "at_or_before({point})");
            let lo = point.saturating_sub(300);
            let fir = model.range(lo..=point).next().map(|(&t, ())| t);
            assert_eq!(s.first_in_range(lo, point), fir);
            let lir = model.range(lo..=point).next_back().map(|(&t, ())| t);
            assert_eq!(s.last_in_range(lo, point), lir);
        }
    }

    #[test]
    fn ordered_queries_on_empty_store() {
        let s: CompactStore<()> = CompactStore::new();
        assert_eq!(s.successor_of(0), None);
        assert_eq!(s.predecessor_of(0), None);
        assert_eq!(s.at_or_before(0), None);
        assert_eq!(s.first_in_range(0, u64::MAX), None);
        assert_eq!(s.token_at(0), None);
        assert_eq!(s.first_token(), None);
    }

    #[test]
    fn loads_survive_swap_remove_without_ghosts() {
        let mut s: CompactStore<()> = CompactStore::new();
        for t in [3, 9, 14, 27] {
            s.insert(t, ());
        }
        s.add_load(9, 2);
        s.add_load(27, 5);
        s.add_load(3, 1);
        assert_eq!(s.loads_vec(), vec![1, 2, 0, 5]);
        assert_eq!(s.loads_total(), 8);
        // Removing 9 must drop its counter and keep the others intact
        // even though the slab swap moves another entry into its slot.
        s.remove(9);
        assert_eq!(s.loads_vec(), vec![1, 0, 5]);
        assert_eq!(s.load_of(9), 0);
        // A departed node's counter never resurrects.
        s.add_load(9, 100);
        assert_eq!(s.loads_total(), 6);
        // Rejoin starts back at zero.
        s.insert(9, ());
        assert_eq!(s.load_of(9), 0);
        assert_eq!(s.loads_vec(), vec![1, 0, 0, 5]);
        s.reset_loads();
        assert_eq!(s.loads_total(), 0);
    }

    #[test]
    fn states_mut_yields_token_order() {
        let mut s: CompactStore<u64> = CompactStore::new();
        for (i, t) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            s.insert(*t, i as u64);
        }
        // Force slab disorder via removals.
        s.remove(30);
        s.insert(35, 99);
        let seen: Vec<u64> = s.states_mut().map(|v| *v).collect();
        // Token order 10,20,35,40,50 → insertion values 1,3,99,4,0.
        assert_eq!(seen, vec![1, 3, 99, 4, 0]);
        for v in s.states_mut() {
            *v += 1;
        }
        assert_eq!(s.get(35), Some(&100));
    }

    #[test]
    fn chunks_split_and_drain() {
        let mut s: CompactStore<()> = CompactStore::new();
        let n = CHUNK_CAP * 3 + 17;
        for t in 0..n as u64 {
            s.insert(t, ());
        }
        assert!(s.chunks.len() > 1, "expected chunk splits");
        s.check_invariants();
        assert_eq!(s.token_at(CHUNK_CAP + 5), Some((CHUNK_CAP + 5) as u64));
        for t in 0..n as u64 {
            assert!(s.remove(t).is_some());
        }
        assert!(s.is_empty());
        assert!(s.chunks.is_empty(), "drained chunks must be dropped");
        s.check_invariants();
    }

    #[test]
    fn heap_bytes_tracks_population() {
        let mut s: CompactStore<[u64; 4]> = CompactStore::new();
        let empty = s.heap_bytes();
        for t in 0..1000u64 {
            s.insert(t, [t; 4]);
        }
        let full = s.heap_bytes();
        assert!(full > empty);
        // At least the raw payload must be accounted for.
        assert!(full >= 1000 * std::mem::size_of::<[u64; 4]>());
    }
}
