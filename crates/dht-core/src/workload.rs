//! Workload generators for the paper's experiments.
//!
//! Two workload shapes cover the whole evaluation:
//!
//! * **Uniform lookups** — "each node made a total of n/4 lookup requests
//!   to random destinations" (§4.1) and "we performed 10,000 lookups with
//!   random sources and destinations" (§4.3);
//! * **Key populations** — "we varied the total number of keys to be
//!   distributed from 10^4 to 10^5" (§4.2).

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::overlay::{NodeToken, Overlay};

/// One lookup request: a source node and a raw (pre-hash) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupRequest {
    /// The node the request originates at.
    pub src: NodeToken,
    /// The raw key; overlays hash it into their own identifier space.
    pub raw_key: u64,
}

/// Generates `per_node` lookups from *every* live node to uniformly random
/// keys, shuffled into a random issue order (§4.1's workload).
pub fn per_node_uniform<O: Overlay + ?Sized>(
    overlay: &O,
    per_node: usize,
    rng: &mut dyn RngCore,
) -> Vec<LookupRequest> {
    let tokens = overlay.node_tokens();
    let mut reqs = Vec::with_capacity(tokens.len() * per_node);
    for &src in &tokens {
        for _ in 0..per_node {
            reqs.push(LookupRequest {
                src,
                raw_key: rng.gen::<u64>(),
            });
        }
    }
    reqs.shuffle(rng);
    reqs
}

/// Generates `count` lookups with uniformly random sources and keys
/// (§4.3's workload).
pub fn random_pairs<O: Overlay + ?Sized>(
    overlay: &O,
    count: usize,
    rng: &mut dyn RngCore,
) -> Vec<LookupRequest> {
    let tokens = overlay.node_tokens();
    assert!(
        !tokens.is_empty(),
        "cannot generate lookups on an empty overlay"
    );
    (0..count)
        .map(|_| LookupRequest {
            src: tokens[rng.gen_range(0..tokens.len())],
            raw_key: rng.gen::<u64>(),
        })
        .collect()
}

/// Generates a population of `count` uniformly random raw keys (§4.2).
pub fn key_population(count: usize, rng: &mut dyn RngCore) -> Vec<u64> {
    (0..count).map(|_| rng.gen::<u64>()).collect()
}

/// A Zipf-distributed sampler over a fixed key catalogue: key `i` (by
/// popularity rank) is drawn with probability proportional to
/// `1 / (i+1)^exponent`. Models the skewed object popularity behind the
/// "hot-spots are generated for too frequently accessed files" weakness
/// the paper's §2 attributes to structured DHTs.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    keys: Vec<u64>,
    /// Cumulative (unnormalized) weights for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// Builds a catalogue of `count` keys with Zipf exponent `exponent`
    /// (1.0 is the classic web-object value).
    ///
    /// # Panics
    /// Panics if `count == 0` or `exponent < 0`.
    #[must_use]
    pub fn new(count: usize, exponent: f64, rng: &mut dyn RngCore) -> Self {
        assert!(count > 0, "catalogue must be non-empty");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let keys = key_population(count, rng);
        let mut cdf = Vec::with_capacity(count);
        let mut total = 0.0f64;
        for i in 0..count {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        Self { keys, cdf }
    }

    /// Number of distinct keys in the catalogue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the catalogue is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// All catalogue keys, most popular first.
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Draws one key with Zipf-distributed popularity.
    pub fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        let total = *self.cdf.last().expect("non-empty");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * total;
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.keys.len() - 1);
        self.keys[idx]
    }
}

/// Generates `count` lookups with uniformly random sources and
/// Zipf-popular keys from `catalogue`.
pub fn zipf_pairs<O: Overlay + ?Sized>(
    overlay: &O,
    catalogue: &ZipfKeys,
    count: usize,
    rng: &mut dyn RngCore,
) -> Vec<LookupRequest> {
    let tokens = overlay.node_tokens();
    assert!(
        !tokens.is_empty(),
        "cannot generate lookups on an empty overlay"
    );
    (0..count)
        .map(|_| LookupRequest {
            src: tokens[rng.gen_range(0..tokens.len())],
            raw_key: catalogue.sample(rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use crate::sim::{Membership, SimOverlay, StepDecision};

    struct FakeOverlay {
        members: Membership<()>,
    }

    impl FakeOverlay {
        fn new(n: usize) -> Self {
            let mut members = Membership::new(0);
            for t in 0..n as u64 {
                members.insert(t, ());
            }
            Self { members }
        }
    }

    impl SimOverlay for FakeOverlay {
        type State = ();
        type Walk = ();

        fn membership(&self) -> &Membership<()> {
            &self.members
        }
        fn membership_mut(&mut self) -> &mut Membership<()> {
            &mut self.members
        }
        fn label(&self) -> String {
            "fake".into()
        }
        fn degree_limit(&self) -> Option<usize> {
            None
        }
        fn map_key(&self, raw_key: u64) -> u64 {
            raw_key
        }
        fn owner_token(&self, _raw_key: u64) -> Option<NodeToken> {
            self.members.first_token()
        }
        fn hop_budget(&self) -> usize {
            4
        }
        fn begin_walk(&self, _src: NodeToken, _raw_key: u64) {}
        fn walk_owner(&self, _walk: &()) -> Option<NodeToken> {
            self.members.first_token()
        }
        fn next_hop(&self, _cur: NodeToken, _walk: &mut ()) -> StepDecision {
            StepDecision::Terminate
        }
        fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
            None
        }
        fn node_leave(&mut self, _node: NodeToken) -> bool {
            false
        }
        fn stabilize_network(&mut self) {}
    }

    #[test]
    fn per_node_uniform_counts() {
        let o = FakeOverlay::new(10);
        let reqs = per_node_uniform(&o, 4, &mut stream(1, "w"));
        assert_eq!(reqs.len(), 40);
        // Every node appears exactly 4 times as a source.
        for t in 0..10u64 {
            assert_eq!(reqs.iter().filter(|r| r.src == t).count(), 4);
        }
    }

    #[test]
    fn random_pairs_sources_are_live() {
        let o = FakeOverlay::new(5);
        let reqs = random_pairs(&o, 100, &mut stream(2, "w"));
        assert_eq!(reqs.len(), 100);
        assert!(reqs.iter().all(|r| r.src < 5));
    }

    #[test]
    fn key_population_size_and_determinism() {
        let a = key_population(50, &mut stream(3, "k"));
        let b = key_population(50, &mut stream(3, "k"));
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty overlay")]
    fn random_pairs_rejects_empty() {
        let o = FakeOverlay::new(0);
        let _ = random_pairs(&o, 1, &mut stream(4, "w"));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = stream(5, "zipf");
        let cat = ZipfKeys::new(1000, 1.0, &mut rng);
        let top = cat.keys()[0];
        let second = cat.keys()[1];
        let mut top_hits = 0u32;
        let mut second_hits = 0u32;
        for _ in 0..20_000 {
            let k = cat.sample(&mut rng);
            if k == top {
                top_hits += 1;
            } else if k == second {
                second_hits += 1;
            }
        }
        // Rank 1 is drawn ~2x as often as rank 2 under exponent 1.
        assert!(top_hits > second_hits, "{top_hits} vs {second_hits}");
        let ratio = f64::from(top_hits) / f64::from(second_hits.max(1));
        assert!((1.5..=2.8).contains(&ratio), "ratio {ratio} should be ~2");
        // And takes a substantial share overall (1/H_1000 ~ 13%).
        let share = f64::from(top_hits) / 20_000.0;
        assert!((0.08..=0.20).contains(&share), "top share {share}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let mut rng = stream(6, "zipf0");
        let cat = ZipfKeys::new(16, 0.0, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..16_000 {
            *counts.entry(cat.sample(&mut rng)).or_insert(0u32) += 1;
        }
        for &k in cat.keys() {
            let c = counts.get(&k).copied().unwrap_or(0);
            assert!((700..=1300).contains(&c), "count {c} not ~1000");
        }
    }

    #[test]
    fn zipf_pairs_draw_from_catalogue() {
        let o = FakeOverlay::new(8);
        let mut rng = stream(7, "zp");
        let cat = ZipfKeys::new(50, 1.0, &mut rng);
        let reqs = zipf_pairs(&o, &cat, 200, &mut rng);
        assert_eq!(reqs.len(), 200);
        assert!(reqs.iter().all(|r| cat.keys().contains(&r.raw_key)));
        assert!(reqs.iter().all(|r| r.src < 8));
    }
}
