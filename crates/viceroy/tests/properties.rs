//! Property-based tests of the Viceroy butterfly invariants.

use dht_core::lookup::LookupOutcome;
use dht_core::rng::stream;
use proptest::prelude::*;
use rand::Rng;
use viceroy::{ViceroyConfig, ViceroyNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn levels_respect_the_estimate_range(seed in any::<u64>(), count in 2usize..400) {
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), count, seed);
        let max = ViceroyNetwork::level_range_for(count);
        for id in net.ids() {
            let l = net.node(id).unwrap().level;
            prop_assert!(l >= 1 && l <= max);
        }
    }

    #[test]
    fn links_are_always_live(seed in any::<u64>(), count in 3usize..200) {
        // Lazily resolved links model eager full repair: every resolved
        // link must be a live node, and up/down links must be at the
        // adjacent level.
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), count, seed);
        for id in net.ids() {
            let level = net.node(id).unwrap().level;
            for link in [net.succ_link(id), net.pred_link(id), net.level_next_link(id)]
                .into_iter()
                .flatten()
            {
                prop_assert!(net.is_live(link));
            }
            if let Some(up) = net.up_link(id) {
                prop_assert_eq!(net.node(up).unwrap().level, level - 1);
            }
            for down in [net.down_left_link(id), net.down_right_link(id)].into_iter().flatten() {
                prop_assert_eq!(net.node(down).unwrap().level, level + 1);
            }
        }
    }

    #[test]
    fn lookups_find_successors_with_zero_timeouts(seed in any::<u64>(), count in 2usize..300) {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), count, seed);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(seed, "vic-prop");
        for i in 0..15 {
            let raw: u64 = rng.gen();
            let k = net.key_of(raw);
            let t = net.route(ids[i % ids.len()], raw);
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
            prop_assert_eq!(t.timeouts, 0, "Viceroy never times out");
            prop_assert_eq!(Some(t.terminal), net.successor_of_point(k));
        }
    }

    #[test]
    fn churn_preserves_correctness_without_stabilization(seed in any::<u64>(), steps in 1usize..40) {
        // Viceroy's always-repaired links: correctness holds mid-churn
        // with no stabilization calls at all.
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 100, seed);
        let mut rng = stream(seed, "vic-churn-prop");
        for _ in 0..steps {
            if rng.gen_bool(0.5) {
                let _ = net.join_random(&mut rng);
            } else if net.node_count() > 4 {
                let ids: Vec<u64> = net.ids().collect();
                net.leave(ids[(rng.gen::<u64>() % ids.len() as u64) as usize]);
            }
            let ids: Vec<u64> = net.ids().collect();
            let t = net.route(ids[0], rng.gen());
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
        }
    }
}
