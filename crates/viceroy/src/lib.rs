//! # Viceroy baseline
//!
//! Viceroy (Malkhi, Naor & Ratajczak, PODC 2002) approximates a
//! **butterfly network** over a `[0,1)` identifier circle: every node draws
//! a uniform identifier and a butterfly *level* `l ∈ [1, log n₀]`, and keeps
//! seven links — general-ring successor/predecessor, level-ring
//! next/previous, two *down* links to level `l+1` (one nearby, one about
//! `2^{-l}` away), and one *up* link to level `l-1`. A lookup ascends to
//! level 1, descends through the butterfly, then traverses ring and
//! level-ring pointers to the key's successor (§2.4 of the Cycloid paper).
//!
//! **Simulation note (see DESIGN.md):** the Cycloid paper's §4.3
//! observes that Viceroy repairs *all* related nodes on every join/leave
//! ("all related nodes are updated before the node departs"), so its links
//! are never stale and lookups never time out. We model that exactly by
//! resolving links lazily from the always-current membership — behaviorally
//! identical to eager full repair, at none of the bookkeeping cost. The
//! price Viceroy pays appears where the paper says it does: long paths and
//! heavy join/leave repair traffic, not timeouts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use viceroy::{ViceroyConfig, ViceroyNetwork};
//!
//! let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 500, 42);
//! let src = net.ids().next().unwrap();
//! let trace = net.route(src, 0xfeed);
//! assert!(trace.outcome.is_success());
//! assert_eq!(trace.timeouts, 0); // Viceroy never times out
//! ```

mod audit;
pub mod network;
mod repair;

pub use network::{ViceroyConfig, ViceroyNetwork, ViceroyNode};
