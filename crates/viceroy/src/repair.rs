//! Corruption and self-stabilizing repair of Viceroy routing state.
//!
//! Viceroy resolves its butterfly links lazily from the per-level
//! membership index, so a node's only *private* routing state is its
//! level claim — and that claim is exactly what every strategy of the
//! shared catalogue ([`CorruptionStrategy`]) scrambles here, each with
//! its own deterministic shape. Corruption rewrites `node.level` but
//! deliberately leaves the `by_level` index alone: the index is the
//! membership's ground truth (what the level rings and the audit's
//! partition check are built from), so repair can re-synchronize the
//! claim from it, restoring the original level exactly.
//!
//! Every drawn level stays within `[1, #levels]` — the link resolvers
//! index `by_level[level - 1]` directly, so an out-of-range claim would
//! panic rather than misroute, which is outside the corruption model
//! (damaged state, not memory corruption).

use dht_core::corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};

use crate::network::ViceroyNetwork;

const SALT_LEVEL: u64 = 1;
const SALT_ATTACKER: u64 = 0xa77a;

impl ViceroyNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]) to
    /// the nodes' level claims. Membership, the level index, and query
    /// loads stay untouched.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let live: Vec<u64> = self.ids().collect();
        let victims = plan.victims(&live);
        let levels = self.level_sets().len() as u32;
        let mut report = CorruptionReport::default();
        if levels == 0 {
            return report;
        }
        let attacker_level = plan
            .pick(SALT_ATTACKER, 0, &live)
            .and_then(|a| self.node(a))
            .map(|n| n.level);
        if plan.strategy == CorruptionStrategy::CrossWireLeafSets {
            // Cross-wire: consecutive victims trade level claims.
            for pair in victims.chunks(2) {
                if let [a, b] = *pair {
                    let la = self.node(a).expect("victim is live").level;
                    let lb = self.node(b).expect("victim is live").level;
                    self.node_mut(a).expect("victim is live").level = lb;
                    self.node_mut(b).expect("victim is live").level = la;
                    let mutated = u64::from(la != lb);
                    report.note(mutated);
                    report.note(mutated);
                } else {
                    report.note(0); // odd victim out: nobody to trade with
                }
            }
            return report;
        }
        for &id in &victims {
            let current = self.node(id).expect("victim is live").level;
            let target = match plan.strategy {
                CorruptionStrategy::RandomizeLinks | CorruptionStrategy::GhostLinks => {
                    // A seeded level other than the real one when the
                    // butterfly has more than one level ("ghost" levels
                    // do not exist for Viceroy: any in-range level is as
                    // wrong as any other).
                    let drawn = 1 + (plan.draw(id, SALT_LEVEL) % u64::from(levels)) as u32;
                    if drawn == current && levels > 1 {
                        1 + drawn % levels
                    } else {
                        drawn
                    }
                }
                CorruptionStrategy::ZeroLinks => 1,
                CorruptionStrategy::EclipseRegion => attacker_level.unwrap_or(1),
                CorruptionStrategy::CrossWireLeafSets => unreachable!("handled above"),
            };
            let mutated = u64::from(target != current);
            self.node_mut(id).expect("victim is live").level = target;
            report.note(mutated);
        }
        report
    }

    /// One node's repair step: re-synchronize its level claim from the
    /// per-level membership index (the ground truth corruption never
    /// touches). Returns 1 if the claim was wrong, 0 on a healthy node;
    /// ignores dead tokens. Every live node is indexed at exactly one
    /// level — joins and leaves keep the index in lockstep — so the scan
    /// always finds it.
    pub fn repair_one(&mut self, id: u64) -> u64 {
        if !self.is_live(id) {
            return 0;
        }
        let Some(indexed) = self
            .level_sets()
            .iter()
            .position(|set| set.contains(&id))
            .map(|p| p as u32 + 1)
        else {
            return 0;
        };
        let node = self.node_mut(id).expect("live node has state");
        if node.level == indexed {
            0
        } else {
            node.level = indexed;
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ViceroyConfig;
    use dht_core::audit::{AuditScope, StateAudit};

    fn net(n: usize) -> ViceroyNetwork {
        ViceroyNetwork::with_nodes(ViceroyConfig::new(), n, 42)
    }

    fn repair_sweep(net: &mut ViceroyNetwork) -> u64 {
        let ids: Vec<u64> = net.ids().collect();
        ids.into_iter().map(|id| net.repair_one(id)).sum()
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_network() {
        let mut n = net(80);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(80);
            let before: Vec<u32> = n.ids().map(|id| n.node(id).unwrap().level).collect();
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 40, "{strategy:?}");
            assert!(report.corrupted_nodes > 0, "{strategy:?} did no damage");
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            repair_sweep(&mut n);
            assert!(
                n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} not repaired: {}",
                n.audit(AuditScope::Full)
            );
            let after: Vec<u32> = n.ids().map(|id| n.node(id).unwrap().level).collect();
            assert_eq!(before, after, "{strategy:?}: repair must restore levels");
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }

    #[test]
    fn corrupted_levels_stay_in_range() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(60);
            let levels = n.level_sets().len() as u32;
            n.corrupt(&CorruptionPlan::new(strategy, 1.0, 5));
            for id in n.ids().collect::<Vec<_>>() {
                let l = n.node(id).unwrap().level;
                assert!(
                    (1..=levels).contains(&l),
                    "{strategy:?}: level {l} of {levels}"
                );
            }
        }
    }
}
