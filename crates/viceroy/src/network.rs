//! The simulated Viceroy butterfly: membership, level assignment, link
//! resolution, and the three-phase lookup.

use std::collections::BTreeSet;

use dht_core::hash::{reduce, splitmix64};
use dht_core::lookup::{HopPhase, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::ring::{in_interval_oc, ring_dist};
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::{Rng, RngCore};

/// Configuration of a Viceroy deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViceroyConfig {
    /// Fixed-point precision of the `[0,1)` identifier circle: identifiers
    /// live on a `2^bits` ring. 48 bits makes collisions negligible at any
    /// simulated scale while leaving headroom for ring arithmetic.
    pub bits: u32,
}

impl ViceroyConfig {
    /// Default precision.
    #[must_use]
    pub fn new() -> Self {
        Self { bits: 48 }
    }

    /// Ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }
}

impl Default for ViceroyConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One Viceroy node: a fixed-point identifier in `[0,1)` and a butterfly
/// level. The identifier is fixed for the node's lifetime; the level was
/// drawn uniformly from `[1, max(1, ⌈log₂ n₀⌉)]` at join time, with `n₀`
/// the then-current network-size estimate (§2.4: "the level is randomly
/// selected from a range of [1, log n₀]").
#[derive(Debug, Clone)]
pub struct ViceroyNode {
    /// Ring identifier (fixed-point fraction of the circle).
    pub id: u64,
    /// Butterfly level, 1-based.
    pub level: u32,
}

/// Which of the three lookup phases the walk is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkPhase {
    /// Phase 1: ascend to a level-1 node via up links.
    Up,
    /// Phase 2: descend the butterfly via down links.
    Down,
    /// Phase 3: traverse ring and level-ring pointers to the successor.
    Traverse,
}

/// The state an in-flight Viceroy lookup carries: the target ring key
/// and the current butterfly phase.
#[derive(Debug, Clone, Copy)]
pub struct ViceroyWalk {
    /// Target identifier on the ring.
    pub key: u64,
    phase: WalkPhase,
}

/// A simulated Viceroy network.
///
/// Links are resolved lazily from the live membership — equivalent to the
/// eager everyone-gets-repaired protocol the paper ascribes to Viceroy,
/// which is why Viceroy shows zero timeouts in every churn experiment.
#[derive(Debug, Clone)]
pub struct ViceroyNetwork {
    config: ViceroyConfig,
    members: Membership<ViceroyNode>,
    /// `by_level[l]` holds identifiers of the nodes at level `l+1`.
    by_level: Vec<BTreeSet<u64>>,
}

impl ViceroyNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(config: ViceroyConfig, seed: u64) -> Self {
        Self {
            config,
            members: Membership::new(seed),
            by_level: Vec::new(),
        }
    }

    /// Builds a network of `count` nodes; levels are drawn uniformly from
    /// `[1, max(1, ⌈log₂ count⌉)]`.
    #[must_use]
    pub fn with_nodes(config: ViceroyConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        let mut rng = dht_core::rng::stream(seed, "viceroy-levels");
        let max_level = Self::level_range_for(count);
        while net.members.len() < count {
            let id = net.members.next_in(config.space());
            if !net.members.contains(id) {
                let level = rng.gen_range(1..=max_level);
                net.insert_raw(id, level);
            }
        }
        net
    }

    /// The level range `[1, max(1, ⌈log₂ n⌉)]` for a network-size estimate.
    #[must_use]
    pub fn level_range_for(n_estimate: usize) -> u32 {
        let n = n_estimate.max(2) as f64;
        (n.log2().ceil() as u32).max(1)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> ViceroyConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.members.contains(id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.token_iter()
    }

    /// Read access to one node.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&ViceroyNode> {
        self.members.get(id)
    }

    /// Exclusive access to one node — for the corruption injector and
    /// the audit tests, which damage state the protocol itself never
    /// produces.
    pub(crate) fn node_mut(&mut self, id: u64) -> Option<&mut ViceroyNode> {
        self.members.get_mut(id)
    }

    /// The per-level identifier index (`level_sets()[l]` holds level
    /// `l+1`), for the audit's partition-consistency check.
    pub(crate) fn level_sets(&self) -> &[BTreeSet<u64>] {
        &self.by_level
    }

    /// Maps a raw key onto the identifier circle.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// Ground truth: the key's successor — the storing node (§2.4:
    /// "Viceroy stores keys in the keys' successors").
    #[must_use]
    pub fn successor_of_point(&self, x: u64) -> Option<u64> {
        self.members.successor_of(x)
    }

    fn insert_raw(&mut self, id: u64, level: u32) {
        self.members.insert(id, ViceroyNode { id, level });
        if self.by_level.len() < level as usize {
            self.by_level.resize(level as usize, BTreeSet::new());
        }
        self.by_level[(level - 1) as usize].insert(id);
    }

    fn remove_raw(&mut self, id: u64) -> Option<ViceroyNode> {
        let node = self.members.remove(id)?;
        self.by_level[(node.level - 1) as usize].remove(&id);
        Some(node)
    }

    /// A node joins with a fresh identifier; its level is drawn from the
    /// current size estimate. All affected links are repaired immediately
    /// (Viceroy's expensive-but-thorough join).
    pub fn join_random(&mut self, rng: &mut dyn RngCore) -> Option<u64> {
        if self.members.len() as u64 >= self.config.space() {
            return None;
        }
        let max_level = Self::level_range_for(self.members.len() + 1);
        loop {
            let id = self.members.next_in(self.config.space());
            if !self.members.contains(id) {
                let level = 1 + (rng.next_u64() % u64::from(max_level)) as u32;
                self.insert_raw(id, level);
                return Some(id);
            }
        }
    }

    /// Graceful departure; every node that referenced the leaver is
    /// repaired before it goes (hence zero timeouts, §4.3).
    pub fn leave(&mut self, id: u64) -> bool {
        self.remove_raw(id).is_some()
    }

    // ------------------------------------------------------------------
    // Link resolution (always-correct, see crate docs)
    // ------------------------------------------------------------------

    /// General-ring successor link of node `id`.
    #[must_use]
    pub fn succ_link(&self, id: u64) -> Option<u64> {
        if self.members.len() <= 1 {
            return None;
        }
        self.members.successor_after(id)
    }

    /// General-ring predecessor link of node `id`.
    #[must_use]
    pub fn pred_link(&self, id: u64) -> Option<u64> {
        if self.members.len() <= 1 {
            return None;
        }
        self.members.predecessor_of(id)
    }

    /// The node of `level` nearest (in ring distance, either direction) to
    /// ring point `x` — how Viceroy resolves its butterfly links, so that
    /// landing slack is centred rather than one-sided.
    fn nearest_at_level(&self, level: u32, x: u64) -> Option<u64> {
        let set = self.by_level.get((level - 1) as usize)?;
        if set.is_empty() {
            return None;
        }
        let space = self.config.space();
        let after = set
            .range(x..)
            .next()
            .or_else(|| set.range(..).next())
            .copied()?;
        let before = set
            .range(..x)
            .next_back()
            .or_else(|| set.range(..).next_back())
            .copied()?;
        if ring_dist(after, x, space) <= ring_dist(before, x, space) {
            Some(after)
        } else {
            Some(before)
        }
    }

    /// Level-ring "next" link: the next node of the same level clockwise.
    #[must_use]
    pub fn level_next_link(&self, id: u64) -> Option<u64> {
        let level = self.members.get(id)?.level;
        let set = &self.by_level[(level - 1) as usize];
        if set.len() <= 1 {
            return None;
        }
        set.range(id + 1..)
            .next()
            .or_else(|| set.range(..).next())
            .copied()
    }

    /// Level-ring "previous" link: the previous node of the same level.
    #[must_use]
    pub fn level_prev_link(&self, id: u64) -> Option<u64> {
        let level = self.members.get(id)?.level;
        let set = &self.by_level[(level - 1) as usize];
        if set.len() <= 1 {
            return None;
        }
        set.range(..id)
            .next_back()
            .or_else(|| set.range(..).next_back())
            .copied()
    }

    /// Down-left butterfly link: the level `l+1` node nearest clockwise
    /// from the node's own position.
    #[must_use]
    pub fn down_left_link(&self, id: u64) -> Option<u64> {
        let level = self.members.get(id)?.level;
        self.nearest_at_level(level + 1, id)
    }

    /// Down-right butterfly link: the level `l+1` node nearest clockwise
    /// from `id + 2^{-l}` (a jump of one butterfly span).
    #[must_use]
    pub fn down_right_link(&self, id: u64) -> Option<u64> {
        let level = self.members.get(id)?.level;
        let space = self.config.space();
        let jump = space >> level.min(self.config.bits);
        self.nearest_at_level(level + 1, (id + jump) % space)
    }

    /// Up butterfly link: the level `l-1` node nearest clockwise. `None`
    /// at level 1.
    #[must_use]
    pub fn up_link(&self, id: u64) -> Option<u64> {
        let level = self.members.get(id)?.level;
        if level <= 1 {
            return None;
        }
        self.nearest_at_level(level - 1, id)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Local termination test: the key falls between this node's
    /// predecessor and itself (a lone node owns everything).
    fn key_lands_here(&self, cur: u64, key: u64) -> bool {
        match self.pred_link(cur) {
            Some(pred) => in_interval_oc(key, pred, cur, self.config.space()),
            None => true,
        }
    }

    /// One lookup from `src` for ring key `key`: ascend to level 1,
    /// descend the butterfly, then traverse ring and level-ring pointers
    /// to the key's successor.
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        walk_from(
            self,
            src,
            ViceroyWalk {
                key,
                phase: WalkPhase::Up,
            },
            true,
        )
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }
}

impl SimOverlay for ViceroyNetwork {
    type State = ViceroyNode;
    type Walk = ViceroyWalk;

    fn membership(&self) -> &Membership<ViceroyNode> {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership<ViceroyNode> {
        &mut self.members
    }

    fn label(&self) -> String {
        "Viceroy".to_string()
    }

    fn degree_limit(&self) -> Option<usize> {
        Some(7) // succ, pred, level next/prev, down-left, down-right, up
    }

    /// Links resolve lazily from live membership, so a maintenance pass
    /// probes the full constant link set — capped by the nodes that
    /// actually exist to answer.
    fn maintenance_msgs(&self, _node: NodeToken) -> u64 {
        (self.members.len().saturating_sub(1) as u64).clamp(1, 7)
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn hop_budget(&self) -> usize {
        8 * (usize::BITS - self.members.len().leading_zeros()) as usize + 256
    }

    fn begin_walk(&self, _src: NodeToken, raw_key: u64) -> ViceroyWalk {
        ViceroyWalk {
            key: self.key_of(raw_key),
            phase: WalkPhase::Up,
        }
    }

    fn walk_owner(&self, walk: &ViceroyWalk) -> Option<NodeToken> {
        self.successor_of_point(walk.key)
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut ViceroyWalk) -> StepDecision {
        let space = self.config.space();
        let key = walk.key;
        if self.key_lands_here(cur, key) {
            return StepDecision::Terminate;
        }
        loop {
            match walk.phase {
                // Phase 1: ascend to a level-1 node via up links.
                WalkPhase::Up => match self.up_link(cur) {
                    Some(up) => return StepDecision::Forward(vec![(HopPhase::Ascending, up)]),
                    None => walk.phase = WalkPhase::Down,
                },
                // Phase 2: descend along down links until a node with no
                // down links is reached, taking at each level the down
                // link whose landing point is ring-closest to the key
                // (the butterfly's choose-left-or-right step, robust to
                // sparse-level landing slack).
                WalkPhase::Down => {
                    let next = [self.down_left_link(cur), self.down_right_link(cur)]
                        .into_iter()
                        .flatten()
                        .filter(|&n| n != cur)
                        .min_by_key(|&n| ring_dist(n, key, space));
                    match next {
                        Some(n) => return StepDecision::Forward(vec![(HopPhase::Descending, n)]),
                        None => walk.phase = WalkPhase::Traverse,
                    }
                }
                // Phase 3: traverse the general ring and the level ring,
                // greedily reducing the ring distance to the key in either
                // direction, with a final successor fix-up to land on the
                // key's successor.
                WalkPhase::Traverse => {
                    let cur_dist = ring_dist(cur, key, space);
                    let greedy = [
                        self.succ_link(cur),
                        self.pred_link(cur),
                        self.level_next_link(cur),
                        self.level_prev_link(cur),
                    ]
                    .into_iter()
                    .flatten()
                    .filter(|&n| n != cur)
                    .min_by_key(|&n| ring_dist(n, key, space))
                    .filter(|&n| ring_dist(n, key, space) < cur_dist);
                    // No strict ring progress left: the key sits between
                    // this node and its successor — the successor is the
                    // storing node.
                    let next = greedy.or_else(|| {
                        self.succ_link(cur)
                            .filter(|&s| in_interval_oc(key, cur, s, space))
                    });
                    return match next {
                        Some(n) => StepDecision::Forward(vec![(HopPhase::TraverseCycle, n)]),
                        None => StepDecision::Forward(Vec::new()),
                    };
                }
            }
        }
    }

    fn budget_before_terminal(&self) -> bool {
        // The termination test is a pure local-interval check, so it is
        // evaluated before the budget (a lookup that has already arrived
        // never counts as exhausted).
        false
    }

    fn node_join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random(rng)
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    fn stabilize_network(&mut self) {
        // Viceroy repairs links eagerly on every membership change; there
        // is nothing left for periodic stabilization to do.
    }

    fn stabilize_one(&mut self, _node: NodeToken) {}

    fn aux_bytes(&self) -> usize {
        // The per-level membership index outside the node arena.
        self.by_level
            .iter()
            .map(|s| dht_core::store::approx_btree_bytes(s.len(), std::mem::size_of::<u64>()))
            .sum()
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::LookupOutcome;
    use dht_core::rng::stream;

    #[test]
    fn with_nodes_levels_in_range() {
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 1000, 1);
        assert_eq!(net.node_count(), 1000);
        let max = ViceroyNetwork::level_range_for(1000);
        assert_eq!(max, 10);
        for id in net.ids() {
            let l = net.node(id).unwrap().level;
            assert!(l >= 1 && l <= max, "level {l} out of [1, {max}]");
        }
    }

    #[test]
    fn all_lookups_resolve() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 500, 2);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(3, "vic");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.successor_of_point(key));
        }
    }

    #[test]
    fn paths_are_logarithmic_but_longer_than_constant_dht() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 1024, 4);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(5, "viclen");
        let mut total = 0usize;
        let trials = 1500;
        for i in 0..trials {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
            total += t.path_len();
        }
        let mean = total as f64 / trials as f64;
        // log2(1024) = 10: Viceroy takes a multiple of that, but must stay
        // O(log n).
        assert!(mean > 8.0, "Viceroy paths should be long: {mean}");
        assert!(mean < 50.0, "Viceroy paths must stay O(log n): {mean}");
    }

    #[test]
    fn three_phases_all_appear() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 800, 6);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(7, "vicphase");
        let mut asc = 0usize;
        let mut desc = 0usize;
        let mut trav = 0usize;
        for i in 0..500 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            asc += t.hops_in_phase(HopPhase::Ascending);
            desc += t.hops_in_phase(HopPhase::Descending);
            trav += t.hops_in_phase(HopPhase::TraverseCycle);
        }
        assert!(asc > 0, "ascending hops expected");
        assert!(desc > 0, "descending hops expected");
        assert!(trav > 0, "traverse hops expected");
        // §4.1: more than half of Viceroy's cost is the traverse phase.
        let total = asc + desc + trav;
        assert!(
            trav * 10 >= total * 3,
            "traverse share should be large: {trav}/{total}"
        );
    }

    #[test]
    fn churn_never_times_out() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 256, 8);
        let mut rng = stream(9, "vicchurn");
        for round in 0..50 {
            let _ = net.join_random(&mut rng);
            let ids: Vec<u64> = net.ids().collect();
            let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
            net.leave(victim);
            let ids: Vec<u64> = net.ids().collect();
            let src = ids[round % ids.len()];
            let t = net.route(src, rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "round {round}");
            assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn shrinking_network_shortens_paths() {
        // §4.3: with p = 0.5 departures, Viceroy's path length approaches
        // that of a half-size network.
        let mean_path = |count: usize, seed: u64| -> f64 {
            let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), count, seed);
            let ids: Vec<u64> = net.ids().collect();
            let mut rng = stream(seed, "vicshrink");
            let mut total = 0usize;
            for i in 0..800 {
                total += net.route(ids[i % ids.len()], rng.gen()).path_len();
            }
            total as f64 / 800.0
        };
        let big = mean_path(2048, 10);
        let small = mean_path(512, 11);
        assert!(
            small < big,
            "smaller network must have shorter paths: {small} vs {big}"
        );
    }

    #[test]
    fn lone_node_owns_everything() {
        let mut net = ViceroyNetwork::new(ViceroyConfig::new(), 12);
        let mut rng = stream(13, "lone");
        let id = net.join_random(&mut rng).unwrap();
        let t = net.route_to_point(id, 12345);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.path_len(), 0);
    }

    #[test]
    fn link_resolution_sanity() {
        let mut net = ViceroyNetwork::new(ViceroyConfig { bits: 8 }, 14);
        net.insert_raw(10, 1);
        net.insert_raw(50, 2);
        net.insert_raw(100, 2);
        net.insert_raw(200, 3);
        assert_eq!(net.succ_link(10), Some(50));
        assert_eq!(net.pred_link(10), Some(200), "wraps");
        assert_eq!(net.level_next_link(50), Some(100));
        assert_eq!(net.level_next_link(100), Some(50), "level ring wraps");
        assert_eq!(net.down_left_link(10), Some(50), "nearest level-2 to 10");
        assert_eq!(net.up_link(200), Some(100), "nearest level-2 to 200");
        assert_eq!(net.up_link(10), None, "level 1 has no up link");
        assert_eq!(net.down_left_link(200), None, "no level-4 nodes");
    }

    #[test]
    fn trait_roundtrip() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> =
            Box::new(ViceroyNetwork::with_nodes(ViceroyConfig::new(), 200, 1));
        assert_eq!(net.name(), "Viceroy");
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[7], 4242);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(4242));
    }

    #[test]
    fn key_counts_sum_matches() {
        use dht_core::overlay::key_counts;
        use dht_core::workload;
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 150, 2);
        let keys = workload::key_population(4_000, &mut stream(3, "vk"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn churn_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 64, 4);
        let mut rng = stream(5, "vt");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
