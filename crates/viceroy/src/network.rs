//! The simulated Viceroy butterfly: membership, level assignment, link
//! resolution, and the three-phase lookup.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use dht_core::hash::{reduce, splitmix64, IdAllocator};
use dht_core::lookup::{HopPhase, LookupOutcome, LookupTrace};
use dht_core::ring::{in_interval_oc, ring_dist};
use rand::{Rng, RngCore};

/// Configuration of a Viceroy deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViceroyConfig {
    /// Fixed-point precision of the `[0,1)` identifier circle: identifiers
    /// live on a `2^bits` ring. 48 bits makes collisions negligible at any
    /// simulated scale while leaving headroom for ring arithmetic.
    pub bits: u32,
}

impl ViceroyConfig {
    /// Default precision.
    #[must_use]
    pub fn new() -> Self {
        Self { bits: 48 }
    }

    /// Ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }
}

impl Default for ViceroyConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One Viceroy node: a fixed-point identifier in `[0,1)` and a butterfly
/// level. The identifier is fixed for the node's lifetime; the level was
/// drawn uniformly from `[1, max(1, ⌈log₂ n₀⌉)]` at join time, with `n₀`
/// the then-current network-size estimate (§2.4: "the level is randomly
/// selected from a range of [1, log n₀]").
#[derive(Debug, Clone)]
pub struct ViceroyNode {
    /// Ring identifier (fixed-point fraction of the circle).
    pub id: u64,
    /// Butterfly level, 1-based.
    pub level: u32,
    /// Lookup messages received since the last reset.
    pub query_load: u64,
}

/// A simulated Viceroy network.
///
/// Links are resolved lazily from the live membership — equivalent to the
/// eager everyone-gets-repaired protocol the paper ascribes to Viceroy,
/// which is why Viceroy shows zero timeouts in every churn experiment.
#[derive(Debug, Clone)]
pub struct ViceroyNetwork {
    config: ViceroyConfig,
    nodes: BTreeMap<u64, ViceroyNode>,
    /// `by_level[l]` holds identifiers of the nodes at level `l+1`.
    by_level: Vec<BTreeSet<u64>>,
    alloc: IdAllocator,
}

impl ViceroyNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(config: ViceroyConfig, seed: u64) -> Self {
        Self {
            config,
            nodes: BTreeMap::new(),
            by_level: Vec::new(),
            alloc: IdAllocator::new(seed),
        }
    }

    /// Builds a network of `count` nodes; levels are drawn uniformly from
    /// `[1, max(1, ⌈log₂ count⌉)]`.
    #[must_use]
    pub fn with_nodes(config: ViceroyConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        let mut rng = dht_core::rng::stream(seed, "viceroy-levels");
        let max_level = Self::level_range_for(count);
        while net.nodes.len() < count {
            let id = net.alloc.next_in(config.space());
            if !net.nodes.contains_key(&id) {
                let level = rng.gen_range(1..=max_level);
                net.insert_raw(id, level);
            }
        }
        net
    }

    /// The level range `[1, max(1, ⌈log₂ n⌉)]` for a network-size estimate.
    #[must_use]
    pub fn level_range_for(n_estimate: usize) -> u32 {
        let n = n_estimate.max(2) as f64;
        (n.log2().ceil() as u32).max(1)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> ViceroyConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.keys().copied()
    }

    /// Read access to one node.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&ViceroyNode> {
        self.nodes.get(&id)
    }

    /// Maps a raw key onto the identifier circle.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// Ground truth: the key's successor — the storing node (§2.4:
    /// "Viceroy stores keys in the keys' successors").
    #[must_use]
    pub fn successor_of_point(&self, x: u64) -> Option<u64> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(x..)
            .next()
            .or_else(|| self.nodes.range(..).next())
            .map(|(&id, _)| id)
    }

    fn insert_raw(&mut self, id: u64, level: u32) {
        let prev = self.nodes.insert(
            id,
            ViceroyNode {
                id,
                level,
                query_load: 0,
            },
        );
        assert!(prev.is_none(), "identifier {id} already occupied");
        if self.by_level.len() < level as usize {
            self.by_level.resize(level as usize, BTreeSet::new());
        }
        self.by_level[(level - 1) as usize].insert(id);
    }

    fn remove_raw(&mut self, id: u64) -> Option<ViceroyNode> {
        let node = self.nodes.remove(&id)?;
        self.by_level[(node.level - 1) as usize].remove(&id);
        Some(node)
    }

    /// A node joins with a fresh identifier; its level is drawn from the
    /// current size estimate. All affected links are repaired immediately
    /// (Viceroy's expensive-but-thorough join).
    pub fn join_random(&mut self, rng: &mut dyn RngCore) -> Option<u64> {
        if self.nodes.len() as u64 >= self.config.space() {
            return None;
        }
        let max_level = Self::level_range_for(self.nodes.len() + 1);
        loop {
            let id = self.alloc.next_in(self.config.space());
            if !self.nodes.contains_key(&id) {
                let level = 1 + (rng.next_u64() % u64::from(max_level)) as u32;
                self.insert_raw(id, level);
                return Some(id);
            }
        }
    }

    /// Graceful departure; every node that referenced the leaver is
    /// repaired before it goes (hence zero timeouts, §4.3).
    pub fn leave(&mut self, id: u64) -> bool {
        self.remove_raw(id).is_some()
    }

    // ------------------------------------------------------------------
    // Link resolution (always-correct, see crate docs)
    // ------------------------------------------------------------------

    /// General-ring successor link of node `id`.
    #[must_use]
    pub fn succ_link(&self, id: u64) -> Option<u64> {
        if self.nodes.len() <= 1 {
            return None;
        }
        self.nodes
            .range(id + 1..)
            .next()
            .or_else(|| self.nodes.range(..).next())
            .map(|(&s, _)| s)
    }

    /// General-ring predecessor link of node `id`.
    #[must_use]
    pub fn pred_link(&self, id: u64) -> Option<u64> {
        if self.nodes.len() <= 1 {
            return None;
        }
        self.nodes
            .range(..id)
            .next_back()
            .or_else(|| self.nodes.range(..).next_back())
            .map(|(&p, _)| p)
    }

    /// The node of `level` nearest (in ring distance, either direction) to
    /// ring point `x` — how Viceroy resolves its butterfly links, so that
    /// landing slack is centred rather than one-sided.
    fn nearest_at_level(&self, level: u32, x: u64) -> Option<u64> {
        let set = self.by_level.get((level - 1) as usize)?;
        if set.is_empty() {
            return None;
        }
        let space = self.config.space();
        let after = set
            .range(x..)
            .next()
            .or_else(|| set.range(..).next())
            .copied()?;
        let before = set
            .range(..x)
            .next_back()
            .or_else(|| set.range(..).next_back())
            .copied()?;
        if ring_dist(after, x, space) <= ring_dist(before, x, space) {
            Some(after)
        } else {
            Some(before)
        }
    }

    /// Level-ring "next" link: the next node of the same level clockwise.
    #[must_use]
    pub fn level_next_link(&self, id: u64) -> Option<u64> {
        let level = self.nodes.get(&id)?.level;
        let set = &self.by_level[(level - 1) as usize];
        if set.len() <= 1 {
            return None;
        }
        set.range(id + 1..)
            .next()
            .or_else(|| set.range(..).next())
            .copied()
    }

    /// Level-ring "previous" link: the previous node of the same level.
    #[must_use]
    pub fn level_prev_link(&self, id: u64) -> Option<u64> {
        let level = self.nodes.get(&id)?.level;
        let set = &self.by_level[(level - 1) as usize];
        if set.len() <= 1 {
            return None;
        }
        set.range(..id)
            .next_back()
            .or_else(|| set.range(..).next_back())
            .copied()
    }

    /// Down-left butterfly link: the level `l+1` node nearest clockwise
    /// from the node's own position.
    #[must_use]
    pub fn down_left_link(&self, id: u64) -> Option<u64> {
        let level = self.nodes.get(&id)?.level;
        self.nearest_at_level(level + 1, id)
    }

    /// Down-right butterfly link: the level `l+1` node nearest clockwise
    /// from `id + 2^{-l}` (a jump of one butterfly span).
    #[must_use]
    pub fn down_right_link(&self, id: u64) -> Option<u64> {
        let level = self.nodes.get(&id)?.level;
        let space = self.config.space();
        let jump = space >> level.min(self.config.bits);
        self.nearest_at_level(level + 1, (id + jump) % space)
    }

    /// Up butterfly link: the level `l-1` node nearest clockwise. `None`
    /// at level 1.
    #[must_use]
    pub fn up_link(&self, id: u64) -> Option<u64> {
        let level = self.nodes.get(&id)?.level;
        if level <= 1 {
            return None;
        }
        self.nearest_at_level(level - 1, id)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    fn hop_budget(&self) -> usize {
        8 * (usize::BITS - self.nodes.len().leading_zeros()) as usize + 256
    }

    /// One lookup from `src` for ring key `key`: ascend to level 1,
    /// descend the butterfly, then traverse ring and level-ring pointers
    /// to the key's successor.
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        assert!(self.is_live(src), "lookup source {src} is not live");
        let space = self.config.space();
        let mut cur = src;
        let mut hops = Vec::new();
        self.count_query(cur);

        let done = |net: &Self, cur: u64| -> bool {
            match net.pred_link(cur) {
                Some(pred) => in_interval_oc(key, pred, cur, space),
                None => true, // lone node owns everything
            }
        };

        // Phase 1: ascend to a level-1 node via up links.
        while !done(self, cur) && hops.len() < self.hop_budget() {
            match self.up_link(cur) {
                Some(up) => {
                    hops.push(HopPhase::Ascending);
                    cur = up;
                    self.count_query(cur);
                }
                None => break,
            }
        }

        // Phase 2: descend along down links until a node with no down
        // links is reached, taking at each level the down link whose
        // landing point is ring-closest to the key (the butterfly's
        // choose-left-or-right step, robust to sparse-level landing
        // slack).
        while !done(self, cur) && hops.len() < self.hop_budget() {
            let next = [self.down_left_link(cur), self.down_right_link(cur)]
                .into_iter()
                .flatten()
                .filter(|&n| n != cur)
                .min_by_key(|&n| ring_dist(n, key, space));
            match next {
                Some(n) => {
                    hops.push(HopPhase::Descending);
                    cur = n;
                    self.count_query(cur);
                }
                None => break,
            }
        }

        // Phase 3: traverse the general ring and the level ring, greedily
        // reducing the ring distance to the key in either direction, with
        // a final successor fix-up to land on the key's successor.
        let outcome = loop {
            if done(self, cur) {
                break match self.successor_of_point(key) {
                    Some(owner) if owner == cur => LookupOutcome::Found,
                    Some(_) => LookupOutcome::WrongOwner,
                    None => LookupOutcome::Stuck,
                };
            }
            if hops.len() >= self.hop_budget() {
                break LookupOutcome::HopBudgetExhausted;
            }
            let cur_dist = ring_dist(cur, key, space);
            let greedy = [
                self.succ_link(cur),
                self.pred_link(cur),
                self.level_next_link(cur),
                self.level_prev_link(cur),
            ]
            .into_iter()
            .flatten()
            .filter(|&n| n != cur)
            .min_by_key(|&n| ring_dist(n, key, space))
            .filter(|&n| ring_dist(n, key, space) < cur_dist);
            // No strict ring progress left: the key sits between this node
            // and its successor — the successor is the storing node.
            let next = greedy.or_else(|| {
                self.succ_link(cur)
                    .filter(|&s| in_interval_oc(key, cur, s, space))
            });
            match next {
                Some(n) => {
                    hops.push(HopPhase::TraverseCycle);
                    cur = n;
                    self.count_query(cur);
                }
                None => {
                    break match self.successor_of_point(key) {
                        Some(owner) if owner == cur => LookupOutcome::Found,
                        _ => LookupOutcome::Stuck,
                    }
                }
            }
        };

        LookupTrace {
            hops,
            timeouts: 0, // Viceroy repairs every reference before departure
            outcome,
            terminal: cur,
        }
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }

    pub(crate) fn count_query(&mut self, id: u64) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.query_load += 1;
        }
    }

    /// Per-node query loads in ring order.
    #[must_use]
    pub fn query_loads(&self) -> Vec<u64> {
        self.nodes.values().map(|n| n.query_load).collect()
    }

    /// Zeroes all query-load counters.
    pub fn reset_query_loads(&mut self) {
        for n in self.nodes.values_mut() {
            n.query_load = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::rng::stream;

    #[test]
    fn with_nodes_levels_in_range() {
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 1000, 1);
        assert_eq!(net.node_count(), 1000);
        let max = ViceroyNetwork::level_range_for(1000);
        assert_eq!(max, 10);
        for id in net.ids() {
            let l = net.node(id).unwrap().level;
            assert!(l >= 1 && l <= max, "level {l} out of [1, {max}]");
        }
    }

    #[test]
    fn all_lookups_resolve() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 500, 2);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(3, "vic");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.successor_of_point(key));
        }
    }

    #[test]
    fn paths_are_logarithmic_but_longer_than_constant_dht() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 1024, 4);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(5, "viclen");
        let mut total = 0usize;
        let trials = 1500;
        for i in 0..trials {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
            total += t.path_len();
        }
        let mean = total as f64 / trials as f64;
        // log2(1024) = 10: Viceroy takes a multiple of that, but must stay
        // O(log n).
        assert!(mean > 8.0, "Viceroy paths should be long: {mean}");
        assert!(mean < 50.0, "Viceroy paths must stay O(log n): {mean}");
    }

    #[test]
    fn three_phases_all_appear() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 800, 6);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(7, "vicphase");
        let mut asc = 0usize;
        let mut desc = 0usize;
        let mut trav = 0usize;
        for i in 0..500 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            asc += t.hops_in_phase(HopPhase::Ascending);
            desc += t.hops_in_phase(HopPhase::Descending);
            trav += t.hops_in_phase(HopPhase::TraverseCycle);
        }
        assert!(asc > 0, "ascending hops expected");
        assert!(desc > 0, "descending hops expected");
        assert!(trav > 0, "traverse hops expected");
        // §4.1: more than half of Viceroy's cost is the traverse phase.
        let total = asc + desc + trav;
        assert!(
            trav * 10 >= total * 3,
            "traverse share should be large: {trav}/{total}"
        );
    }

    #[test]
    fn churn_never_times_out() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 256, 8);
        let mut rng = stream(9, "vicchurn");
        for round in 0..50 {
            let _ = net.join_random(&mut rng);
            let ids: Vec<u64> = net.ids().collect();
            let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
            net.leave(victim);
            let ids: Vec<u64> = net.ids().collect();
            let src = ids[round % ids.len()];
            let t = net.route(src, rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found, "round {round}");
            assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn shrinking_network_shortens_paths() {
        // §4.3: with p = 0.5 departures, Viceroy's path length approaches
        // that of a half-size network.
        let mean_path = |count: usize, seed: u64| -> f64 {
            let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), count, seed);
            let ids: Vec<u64> = net.ids().collect();
            let mut rng = stream(seed, "vicshrink");
            let mut total = 0usize;
            for i in 0..800 {
                total += net.route(ids[i % ids.len()], rng.gen()).path_len();
            }
            total as f64 / 800.0
        };
        let big = mean_path(2048, 10);
        let small = mean_path(512, 11);
        assert!(
            small < big,
            "smaller network must have shorter paths: {small} vs {big}"
        );
    }

    #[test]
    fn lone_node_owns_everything() {
        let mut net = ViceroyNetwork::new(ViceroyConfig::new(), 12);
        let mut rng = stream(13, "lone");
        let id = net.join_random(&mut rng).unwrap();
        let t = net.route_to_point(id, 12345);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.path_len(), 0);
    }

    #[test]
    fn link_resolution_sanity() {
        let mut net = ViceroyNetwork::new(ViceroyConfig { bits: 8 }, 14);
        net.insert_raw(10, 1);
        net.insert_raw(50, 2);
        net.insert_raw(100, 2);
        net.insert_raw(200, 3);
        assert_eq!(net.succ_link(10), Some(50));
        assert_eq!(net.pred_link(10), Some(200), "wraps");
        assert_eq!(net.level_next_link(50), Some(100));
        assert_eq!(net.level_next_link(100), Some(50), "level ring wraps");
        assert_eq!(net.down_left_link(10), Some(50), "nearest level-2 to 10");
        assert_eq!(net.up_link(200), Some(100), "nearest level-2 to 200");
        assert_eq!(net.up_link(10), None, "level 1 has no up link");
        assert_eq!(net.down_left_link(200), None, "no level-4 nodes");
    }
}
