//! [`dht_core::Overlay`] adapter for the Viceroy baseline.

use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

use crate::network::ViceroyNetwork;

impl Overlay for ViceroyNetwork {
    fn name(&self) -> String {
        "Viceroy".to_string()
    }

    fn len(&self) -> usize {
        self.node_count()
    }

    fn degree_bound(&self) -> Option<usize> {
        Some(7) // succ, pred, level next/prev, down-left, down-right, up
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        self.ids().collect()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        if self.node_count() == 0 {
            return None;
        }
        let tokens = self.node_tokens();
        Some(tokens[(rng.next_u64() % tokens.len() as u64) as usize])
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        self.route(src, raw_key)
    }

    fn join(&mut self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random(rng)
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        ViceroyNetwork::leave(self, node)
    }

    fn stabilize(&mut self) {
        // Viceroy repairs links eagerly on every membership change; there
        // is nothing left for periodic stabilization to do.
    }

    fn stabilize_node(&mut self, _node: NodeToken) {}

    fn query_loads(&self) -> Vec<u64> {
        ViceroyNetwork::query_loads(self)
    }

    fn reset_query_loads(&mut self) {
        ViceroyNetwork::reset_query_loads(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ViceroyConfig;
    use dht_core::overlay::key_counts;
    use dht_core::rng::stream;
    use dht_core::workload;

    #[test]
    fn trait_roundtrip() {
        let mut net: Box<dyn Overlay> =
            Box::new(ViceroyNetwork::with_nodes(ViceroyConfig::new(), 200, 1));
        assert_eq!(net.name(), "Viceroy");
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[7], 4242);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(4242));
    }

    #[test]
    fn key_counts_sum_matches() {
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 150, 2);
        let keys = workload::key_population(4_000, &mut stream(3, "vk"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn churn_through_trait() {
        let mut net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), 64, 4);
        let mut rng = stream(5, "vt");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
