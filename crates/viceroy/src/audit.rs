//! Conformance audit: checks level assignments, the per-level identifier
//! index, and butterfly link sanity.
//!
//! Viceroy's links are resolved lazily from the live membership (the
//! simulator's equivalent of the paper's eager everyone-gets-repaired
//! protocol), so *every* invariant here holds at any instant: the audit
//! checks the same set at [`AuditScope::Online`] and [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::ViceroyNetwork;

impl StateAudit for ViceroyNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let levels = self.level_sets();

        for id in self.ids() {
            report.note_checked(1);
            let node = self.node(id).expect("live id");
            report.check_eq(id, "viceroy/node-id", &node.id, &id);

            // Levels are 1-based (§2.4 draws from [1, log n₀]).
            let level = node.level;
            report.check(id, "viceroy/level-positive", level >= 1, || {
                format!("level {level} < 1")
            });

            // The node appears in the level index exactly at its own level.
            let indexed_at: Vec<u32> = (0..levels.len())
                .filter(|&l| levels[l].contains(&id))
                .map(|l| l as u32 + 1)
                .collect();
            report.check(id, "viceroy/level-index", indexed_at == [level], || {
                format!("level {level} but indexed at levels {indexed_at:?}")
            });

            // Butterfly links must land on live nodes of the right level.
            let check_link = |report: &mut AuditReport, name, link: Option<u64>, want: u32| {
                if let Some(peer) = link {
                    match self.node(peer) {
                        Some(p) => report.check(id, "viceroy/link-sanity", p.level == want, || {
                            format!("{name} link {peer} at level {}, expected {want}", p.level)
                        }),
                        None => report.record(
                            id,
                            "viceroy/link-sanity",
                            format!("{name} link {peer} is not live"),
                        ),
                    }
                }
            };
            check_link(&mut report, "up", self.up_link(id), level.saturating_sub(1));
            check_link(&mut report, "down-left", self.down_left_link(id), level + 1);
            check_link(
                &mut report,
                "down-right",
                self.down_right_link(id),
                level + 1,
            );
            check_link(&mut report, "level-next", self.level_next_link(id), level);
            check_link(&mut report, "level-prev", self.level_prev_link(id), level);
            report.check(
                id,
                "viceroy/link-sanity",
                level > 1 || self.up_link(id).is_none(),
                || "level-1 node has an up link".to_string(),
            );
        }

        // The index must hold live nodes only (the per-node pass above
        // already proves every live node is indexed exactly once).
        for (l, set) in levels.iter().enumerate() {
            for &id in set {
                report.check(id, "viceroy/level-index", self.is_live(id), || {
                    format!("dead node indexed at level {}", l + 1)
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ViceroyConfig;
    use dht_core::rng::stream;

    fn net(n: usize) -> ViceroyNetwork {
        ViceroyNetwork::with_nodes(ViceroyConfig::new(), n, 9)
    }

    #[test]
    fn fresh_network_is_fully_clean() {
        let net = net(90);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 90);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn invariants_survive_churn_without_stabilization() {
        let mut net = net(64);
        let mut rng = stream(4, "viceroy-audit-churn");
        for step in 0..30 {
            if step % 3 == 0 {
                let victim = net.ids().nth(step % net.node_count()).unwrap();
                net.leave(victim);
            } else {
                net.join_random(&mut rng);
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn corrupted_level_is_caught_by_name() {
        let mut net = net(90);
        // Pick a node that can move up a level without leaving the index's
        // populated range, then bump its stored level without re-indexing:
        // the partition check must flag it.
        let max = net.level_sets().len() as u32;
        let id = net
            .ids()
            .find(|&i| net.node(i).unwrap().level < max)
            .unwrap();
        net.node_mut(id).unwrap().level += 1;
        let report = net.audit(AuditScope::Online);
        assert!(
            report
                .violated_invariants()
                .contains(&"viceroy/level-index"),
            "{report}"
        );
    }
}
