//! [`dht_core::Overlay`] adapter for the Koorde baseline.

use dht_core::lookup::LookupTrace;
use dht_core::overlay::{NodeToken, Overlay};
use rand::RngCore;

use crate::network::KoordeNetwork;

impl Overlay for KoordeNetwork {
    fn name(&self) -> String {
        "Koorde".to_string()
    }

    fn len(&self) -> usize {
        self.node_count()
    }

    fn degree_bound(&self) -> Option<usize> {
        Some(self.config().successor_list + self.config().debruijn_backups + 1)
    }

    fn node_tokens(&self) -> Vec<NodeToken> {
        self.ids().collect()
    }

    fn random_node(&self, rng: &mut dyn RngCore) -> Option<NodeToken> {
        if self.node_count() == 0 {
            return None;
        }
        let tokens = self.node_tokens();
        Some(tokens[(rng.next_u64() % tokens.len() as u64) as usize])
    }

    fn key_id(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_of(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn lookup(&mut self, src: NodeToken, raw_key: u64) -> LookupTrace {
        self.route(src, raw_key)
    }

    fn join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random()
    }

    fn leave(&mut self, node: NodeToken) -> bool {
        KoordeNetwork::leave(self, node)
    }

    fn fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_node(&mut self, node: NodeToken) {
        if self.is_live(node) {
            self.refresh_node(node);
        }
    }

    fn query_loads(&self) -> Vec<u64> {
        KoordeNetwork::query_loads(self)
    }

    fn reset_query_loads(&mut self) {
        KoordeNetwork::reset_query_loads(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::KoordeConfig;
    use dht_core::overlay::key_counts;
    use dht_core::rng::stream;
    use dht_core::workload;

    #[test]
    fn trait_roundtrip() {
        let mut net: Box<dyn Overlay> =
            Box::new(KoordeNetwork::with_nodes(KoordeConfig::new(11), 150, 1));
        assert_eq!(net.name(), "Koorde");
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[3], 888);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(888));
    }

    #[test]
    fn key_counts_sum_matches() {
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 120, 2);
        let keys = workload::key_population(3_000, &mut stream(3, "kk"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 3_000);
    }

    #[test]
    fn churn_through_trait() {
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 64, 4);
        let mut rng = stream(5, "kt");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
