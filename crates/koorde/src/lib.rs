//! # Koorde baseline
//!
//! Koorde (Kaashoek & Karger, IPTPS 2003) embeds a **de Bruijn graph** on
//! the Chord identifier circle: node `m` keeps its ring successor(s) and a
//! pointer `d` to the node immediately preceding `2m` (its "first de Bruijn
//! node"). A lookup walks down the de Bruijn graph by simulating the path
//! through the *complete* graph: an imaginary node `i` shifts in one bit of
//! the key per de Bruijn hop, and real hops pass through the immediate
//! predecessor of each imaginary node, with successor hops to fix up the
//! gaps a sparse ring introduces.
//!
//! Per the Cycloid paper's §4 setup, the simulated Koorde maintains seven
//! neighbours: one de Bruijn node, three successors, and the three
//! immediate predecessors of the de Bruijn node (its backups). A lookup
//! **fails** when the de Bruijn pointer and all of its backups are dead —
//! the effect behind the paper's Fig. 11/Table 4 failure counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use koorde::{KoordeConfig, KoordeNetwork};
//!
//! let mut ring = KoordeNetwork::with_nodes(KoordeConfig::new(11), 500, 42);
//! let src = ring.ids().next().unwrap();
//! let trace = ring.route(src, 0xfeed);
//! assert!(trace.outcome.is_success());
//! // Seven neighbours per node: 1 de Bruijn + 3 successors + 3 backups.
//! assert!(ring.node(src).unwrap().degree() <= 7);
//! ```

mod audit;
pub mod network;
pub mod node;
mod repair;

pub use network::{ImaginaryStart, KoordeConfig, KoordeNetwork};
pub use node::KoordeNode;
