//! Per-node Koorde state.

use dht_core::inline::InlineVec;

/// Fixed-capacity ring list (successor list / de Bruijn backups). The
/// paper's seven-entry setup uses three of each; four inline slots keep
/// both lists inside the membership slab.
pub type RingList = InlineVec<u64, 4>;

/// Routing state of one Koorde node (the paper's seven-entry setup:
/// "one de Bruijn node, three successors and three immediate predecessors
/// of the de Bruijn node", §4).
#[derive(Debug, Clone)]
pub struct KoordeNode {
    /// This node's ring identifier.
    pub id: u64,
    /// Immediate predecessor on the ring.
    pub predecessor: u64,
    /// Successor list, nearest first.
    pub successors: RingList,
    /// First de Bruijn node: the node immediately preceding ring point
    /// `2 * id`.
    pub debruijn: u64,
    /// Immediate predecessors of the de Bruijn node, nearest first — the
    /// backups taken when `debruijn` has departed.
    pub debruijn_preds: RingList,
}

impl KoordeNode {
    /// Fresh state; pointers initially self-referential.
    #[must_use]
    pub fn new(id: u64, succ_list_len: usize, backup_len: usize) -> Self {
        Self {
            id,
            predecessor: id,
            successors: RingList::repeat(id, succ_list_len),
            debruijn: id,
            debruijn_preds: RingList::repeat(id, backup_len),
        }
    }

    /// The primary successor.
    #[must_use]
    pub fn successor(&self) -> u64 {
        self.successors[0]
    }

    /// Distinct non-self contacts (actual degree, bounded by 7 in the
    /// paper's configuration).
    #[must_use]
    pub fn degree(&self) -> usize {
        let mut all: Vec<u64> = self
            .successors
            .iter()
            .chain(self.debruijn_preds.iter())
            .copied()
            .chain([self.debruijn])
            .collect();
        all.sort_unstable();
        all.dedup();
        all.retain(|&x| x != self.id);
        all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_node_state() {
        let n = KoordeNode::new(9, 3, 3);
        assert_eq!(n.successor(), 9);
        assert_eq!(n.degree(), 0);
    }

    #[test]
    fn degree_is_bounded_by_seven() {
        let mut n = KoordeNode::new(0, 3, 3);
        n.successors = vec![1, 2, 3].into();
        n.debruijn = 10;
        n.debruijn_preds = vec![9, 8, 7].into();
        assert_eq!(n.degree(), 7);
    }
}
