//! The simulated Koorde ring: membership, de Bruijn pointer resolution,
//! the imaginary-node routing walk, join/leave, and stabilization.

use dht_core::hash::{reduce, splitmix64};
use dht_core::lookup::{HopPhase, LookupOutcome, LookupTrace};
use dht_core::overlay::NodeToken;
use dht_core::ring::{in_interval_co, in_interval_oc};
use dht_core::sim::{walk_from, Membership, SimOverlay, StepDecision};
use rand::RngCore;

use crate::node::KoordeNode;

/// How a lookup picks its starting imaginary node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImaginaryStart {
    /// `i = m`, `kshift = k`: the textbook walk, which always performs
    /// `bits` de Bruijn hops. The Cycloid paper's Koorde paths are "close
    /// to d" (= `bits`), matching this variant.
    Basic,
    /// The Koorde paper's optimization: start at the imaginary node in
    /// `(m, successor]` whose low bits already match the key's high bits,
    /// skipping the matched de Bruijn hops (`O(log n)` hops in sparse
    /// rings). Used by the ablation bench.
    BestFit,
}

/// Configuration of a Koorde deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KoordeConfig {
    /// Identifier bits: the ring has `2^bits` positions and the complete
    /// de Bruijn graph has degree 2.
    pub bits: u32,
    /// Successor-list length (3 in the paper's setup).
    pub successor_list: usize,
    /// Number of de Bruijn-predecessor backups (3 in the paper's setup).
    pub debruijn_backups: usize,
    /// Imaginary-node start strategy.
    pub start: ImaginaryStart,
}

impl KoordeConfig {
    /// The paper's seven-entry setup on a `2^bits` ring.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "Koorde bits must be in [1, 63]");
        Self {
            bits,
            successor_list: 3,
            debruijn_backups: 3,
            start: ImaginaryStart::Basic,
        }
    }

    /// Same, with the best-fit imaginary start.
    #[must_use]
    pub fn with_best_fit(bits: u32) -> Self {
        Self {
            start: ImaginaryStart::BestFit,
            ..Self::new(bits)
        }
    }

    /// Ring size `2^bits`.
    #[must_use]
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }
}

/// The state an in-flight Koorde lookup threads from hop to hop: the
/// target ring key plus the Kaashoek–Karger imaginary-node cursor.
#[derive(Debug, Clone, Copy)]
pub struct KoordeWalk {
    /// Target identifier on the ring.
    pub key: u64,
    /// Current imaginary node.
    pub i: u64,
    /// Key bits still to be shifted into `i`, pre-shifted so the next
    /// bit to consume is the top bit.
    pub kshift: u64,
}

/// A simulated Koorde network.
#[derive(Debug, Clone)]
pub struct KoordeNetwork {
    config: KoordeConfig,
    members: Membership<KoordeNode>,
    /// Lookups that failed because a de Bruijn pointer and all backups
    /// were dead (§4.3's failure count).
    failures: u64,
}

impl KoordeNetwork {
    /// Creates an empty ring.
    #[must_use]
    pub fn new(config: KoordeConfig, seed: u64) -> Self {
        Self {
            config,
            members: Membership::new(seed),
            failures: 0,
        }
    }

    /// Builds a stabilized ring of `count` uniformly placed nodes.
    #[must_use]
    pub fn with_nodes(config: KoordeConfig, count: usize, seed: u64) -> Self {
        let mut net = Self::new(config, seed);
        assert!(
            count as u64 <= config.space(),
            "{count} nodes exceed the 2^{} ring",
            config.bits
        );
        while net.members.len() < count {
            let id = net.members.next_in(config.space());
            if !net.members.contains(id) {
                net.insert_raw(id);
            }
        }
        net.stabilize_all();
        net
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> KoordeConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// `true` iff `id` is live.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.members.contains(id)
    }

    /// Live node identifiers in ring order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.token_iter()
    }

    /// Shared read access to one node.
    #[must_use]
    pub fn node(&self, id: u64) -> Option<&KoordeNode> {
        self.members.get(id)
    }

    /// Exclusive access to one node — for the corruption injector and
    /// the audit tests, which damage state the protocol itself never
    /// produces.
    pub(crate) fn node_mut(&mut self, id: u64) -> Option<&mut KoordeNode> {
        self.members.get_mut(id)
    }

    /// Total failed lookups so far (de Bruijn pointer and all backups
    /// dead).
    #[must_use]
    pub fn failure_count(&self) -> u64 {
        self.failures
    }

    /// Maps a raw key onto the ring.
    #[must_use]
    pub fn key_of(&self, raw_key: u64) -> u64 {
        reduce(splitmix64(raw_key), self.config.space())
    }

    /// Ground truth: live successor of ring point `x`.
    #[must_use]
    pub fn successor_of_point(&self, x: u64) -> Option<u64> {
        self.members.successor_of(x)
    }

    /// Ground truth: live node at or immediately preceding ring point `x`
    /// ("the node immediately precedes `2m`": a node exactly at `x` is its
    /// own de Bruijn image).
    #[must_use]
    pub fn at_or_before_point(&self, x: u64) -> Option<u64> {
        self.members.at_or_before(x)
    }

    /// Ground truth: live node strictly preceding ring point `x`.
    #[must_use]
    pub fn before_point(&self, x: u64) -> Option<u64> {
        self.members.predecessor_of(x)
    }

    fn insert_raw(&mut self, id: u64) {
        let node = KoordeNode::new(id, self.config.successor_list, self.config.debruijn_backups);
        self.members.insert(id, node);
    }

    /// Recomputes every pointer of one node from the live membership.
    pub fn refresh_node(&mut self, id: u64) {
        let space = self.config.space();
        self.refresh_ring_pointers(id);
        let db_point = (2 * id) % space;
        let debruijn = self.at_or_before_point(db_point).expect("non-empty ring");
        let mut preds = Vec::with_capacity(self.config.debruijn_backups);
        let mut cursor = debruijn;
        for _ in 0..self.config.debruijn_backups {
            let p = self.before_point(cursor).expect("non-empty ring");
            preds.push(p);
            cursor = p;
        }
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.debruijn = debruijn;
        node.debruijn_preds = preds.into();
    }

    /// Refreshes only the ring pointers (predecessor + successor list).
    fn refresh_ring_pointers(&mut self, id: u64) {
        let space = self.config.space();
        let r = self.config.successor_list;
        let pred = self.before_point(id).expect("refresh on empty ring");
        let mut succs = Vec::with_capacity(r);
        let mut cursor = id;
        for _ in 0..r {
            let s = self
                .successor_of_point((cursor + 1) % space)
                .expect("non-empty ring");
            succs.push(s);
            cursor = s;
        }
        let node = self.members.get_mut(id).expect("refresh of dead node");
        node.predecessor = pred;
        node.successors = succs.into();
    }

    /// Full stabilization: every node refreshes ring and de Bruijn
    /// pointers ("stabilization updates the first de Bruijn node of each
    /// node and the de Bruijn node's predecessors in time", §4.4).
    pub fn stabilize_all(&mut self) {
        let ids: Vec<u64> = self.ids().collect();
        for id in ids {
            self.refresh_node(id);
        }
    }

    /// Ring neighbourhood that join/leave notifications repair.
    fn ring_neighbors_of(&self, id: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if self.members.is_empty() {
            return out;
        }
        // `id + 1`: at join time the node itself is already in the map, and
        // its *successor* is the neighbour that must learn about it.
        if let Some(s) = self.successor_of_point((id + 1) % self.config.space()) {
            out.push(s);
        }
        let mut cursor = id;
        for _ in 0..self.config.successor_list {
            match self.before_point(cursor) {
                Some(p) if !out.contains(&p) => {
                    out.push(p);
                    cursor = p;
                }
                Some(p) => cursor = p,
                None => break,
            }
        }
        out
    }

    /// Protocol join: the newcomer builds its own state and notifies its
    /// ring neighbourhood; de Bruijn pointers elsewhere stay stale.
    pub fn join_id(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            return false;
        }
        self.insert_raw(id);
        self.refresh_node(id);
        for nb in self.ring_neighbors_of(id) {
            if nb != id {
                self.refresh_ring_pointers(nb);
            }
        }
        true
    }

    /// Join with a freshly hashed identifier.
    pub fn join_random(&mut self) -> Option<u64> {
        if self.members.len() as u64 >= self.config.space() {
            return None;
        }
        loop {
            let id = self.members.next_in(self.config.space());
            if self.join_id(id) {
                return Some(id);
            }
        }
    }

    /// Graceful departure (§4.3): "when a node leaves, it notifies its
    /// successors and predecessor... The nodes who take the leaving node
    /// as their first de Bruijn node or their first de Bruijn node's
    /// predecessor will not be notified" — those go stale until
    /// stabilization.
    pub fn leave(&mut self, id: u64) -> bool {
        if self.members.remove(id).is_none() {
            return false;
        }
        if self.members.is_empty() {
            return true;
        }
        for nb in self.ring_neighbors_of(id) {
            self.refresh_ring_pointers(nb);
        }
        true
    }

    /// Ungraceful failure: the node vanishes without the leave
    /// notifications, so even ring successors and predecessors stay stale
    /// until stabilization.
    pub fn fail_node(&mut self, id: u64) -> bool {
        self.members.remove(id).is_some()
    }

    /// Picks the starting imaginary node and pre-shifted key for a lookup
    /// from `m` (whose live successor is `succ`) towards `key`.
    fn imaginary_start(&self, m: u64, succ: u64, key: u64) -> (u64, u64) {
        let bits = self.config.bits;
        let space = self.config.space();
        match self.config.start {
            ImaginaryStart::Basic => (m, key),
            ImaginaryStart::BestFit => {
                // Largest s such that some i0 in (m, succ] has its low s
                // bits equal to the key's top s bits; the walk then needs
                // only bits - s de Bruijn hops.
                for s in (1..=bits).rev() {
                    let p = key >> (bits - s);
                    let modulus = 1u64 << s;
                    let base = (m + 1) % space;
                    let offset = (p + modulus - (base % modulus)) % modulus;
                    let cand = (base + offset) % space;
                    if in_interval_co(cand, m, succ, space) {
                        let kshift = (key << s) % space;
                        return (cand, kshift);
                    }
                }
                (m, key)
            }
        }
    }

    /// One lookup from `src` for ring key `key`: the Kaashoek–Karger
    /// imaginary-node walk. De Bruijn hops are tagged
    /// [`HopPhase::DeBruijn`], ring fix-ups [`HopPhase::Successor`]
    /// (Fig. 7(c), Fig. 14's breakdown). A dead contact costs a timeout;
    /// a de Bruijn pointer whose backups are all dead fails the lookup.
    pub fn route_to_point(&mut self, src: u64, key: u64) -> LookupTrace {
        assert!(self.is_live(src), "lookup source {src} is not live");
        let succ = self.members.get(src).expect("source is live").successor();
        let (i, kshift) = self.imaginary_start(src, succ, key);
        walk_from(self, src, KoordeWalk { key, i, kshift }, true)
    }

    /// Lookup by raw (pre-hash) key.
    pub fn route(&mut self, src: u64, raw_key: u64) -> LookupTrace {
        let key = self.key_of(raw_key);
        self.route_to_point(src, key)
    }
}

impl SimOverlay for KoordeNetwork {
    type State = KoordeNode;
    type Walk = KoordeWalk;

    fn membership(&self) -> &Membership<KoordeNode> {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership<KoordeNode> {
        &mut self.members
    }

    fn label(&self) -> String {
        "Koorde".to_string()
    }

    fn degree_limit(&self) -> Option<usize> {
        Some(self.config.successor_list + self.config.debruijn_backups + 1)
    }

    /// One message per distinct successor/de-Bruijn entry actually held.
    fn maintenance_msgs(&self, node: NodeToken) -> u64 {
        self.members
            .get(node)
            .map_or(1, |s| (s.degree() as u64).max(1))
    }

    fn map_key(&self, raw_key: u64) -> u64 {
        self.key_of(raw_key)
    }

    fn owner_token(&self, raw_key: u64) -> Option<NodeToken> {
        self.successor_of_point(self.key_of(raw_key))
    }

    fn hop_budget(&self) -> usize {
        8 * self.config.bits as usize + 128
    }

    fn begin_walk(&self, src: NodeToken, raw_key: u64) -> KoordeWalk {
        let key = self.key_of(raw_key);
        let succ = self.members.get(src).expect("source is live").successor();
        let (i, kshift) = self.imaginary_start(src, succ, key);
        KoordeWalk { key, i, kshift }
    }

    fn walk_owner(&self, walk: &KoordeWalk) -> Option<NodeToken> {
        self.successor_of_point(walk.key)
    }

    fn next_hop(&self, cur: NodeToken, walk: &mut KoordeWalk) -> StepDecision {
        let space = self.config.space();
        let node = self.members.get(cur).expect("current node is live");
        if in_interval_oc(walk.key, node.predecessor, cur, space) {
            return StepDecision::Terminate;
        }
        let take_debruijn = !in_interval_oc(walk.key, cur, node.successor(), space)
            && in_interval_co(walk.i, cur, node.successor(), space);
        if take_debruijn {
            // Walk down the de Bruijn edge (backups after the pointer);
            // the bit shift into the imaginary node happens in `on_hop`.
            StepDecision::Forward(
                std::iter::once(node.debruijn)
                    .chain(node.debruijn_preds.iter().copied())
                    .map(|cand| (HopPhase::DeBruijn, cand))
                    .collect(),
            )
        } else {
            // Ring fix-up (or final approach) through the successor list.
            StepDecision::Forward(
                node.successors
                    .iter()
                    .map(|&cand| (HopPhase::Successor, cand))
                    .collect(),
            )
        }
    }

    fn on_hop(
        &self,
        walk: &mut KoordeWalk,
        _from: NodeToken,
        phase: HopPhase,
        _to: NodeToken,
        _timed_out: &[NodeToken],
    ) {
        if phase != HopPhase::DeBruijn {
            return;
        }
        // Shift one key bit into the imaginary node.
        let space = self.config.space();
        let top = (walk.kshift >> (self.config.bits - 1)) & 1;
        walk.i = ((walk.i << 1) | top) % space;
        walk.kshift = (walk.kshift << 1) % space;
    }

    fn repair_on_use(
        &mut self,
        from: NodeToken,
        phase: HopPhase,
        to: NodeToken,
        timed_out: &[NodeToken],
    ) {
        // Repair-on-use: once a backup answered for a dead de Bruijn
        // pointer, adopt it as the new pointer so each stale pointer
        // times out at most once (the accounting the paper's Koorde
        // timeout counts reflect; see EXPERIMENTS.md). Applied at
        // effect-apply time, after the walk (or the whole batch, under
        // the parallel executor) has routed.
        if phase == HopPhase::DeBruijn && !timed_out.is_empty() {
            if let Some(n) = self.members.get_mut(from) {
                n.debruijn = to;
            }
        }
    }

    fn on_exhausted(&self, _cur: NodeToken, _walk: &KoordeWalk) -> LookupOutcome {
        // De Bruijn pointer and all backups dead (§4.3): the lookup fails.
        LookupOutcome::Stuck
    }

    fn record_exhausted(&mut self, _terminal: NodeToken) {
        self.failures += 1;
    }

    fn node_join(&mut self, _rng: &mut dyn RngCore) -> Option<NodeToken> {
        self.join_random()
    }

    fn node_leave(&mut self, node: NodeToken) -> bool {
        self.leave(node)
    }

    fn node_fail(&mut self, node: NodeToken) -> bool {
        self.fail_node(node)
    }

    fn stabilize_network(&mut self) {
        self.stabilize_all();
    }

    fn stabilize_one(&mut self, node: NodeToken) {
        if self.is_live(node) {
            self.refresh_node(node);
        }
    }

    fn audit_network(&self, scope: dht_core::audit::AuditScope) -> dht_core::audit::AuditReport {
        dht_core::audit::StateAudit::audit(self, scope)
    }

    fn corrupt_network(
        &mut self,
        plan: &dht_core::corrupt::CorruptionPlan,
    ) -> dht_core::corrupt::CorruptionReport {
        self.corrupt(plan)
    }

    fn repair_step(&mut self, node: NodeToken) -> u64 {
        self.repair_one(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::rng::stream;
    use rand::Rng;

    #[test]
    fn debruijn_pointer_is_pred_of_double() {
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 500, 1);
        for id in net.ids() {
            let n = net.node(id).unwrap();
            let expected = net.at_or_before_point((2 * id) % 2048).unwrap();
            assert_eq!(n.debruijn, expected);
        }
    }

    #[test]
    fn all_lookups_resolve_in_stable_ring() {
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 300, 2);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(3, "koorde");
        for i in 0..2000 {
            let src = ids[i % ids.len()];
            let raw: u64 = rng.gen();
            let key = net.key_of(raw);
            let t = net.route(src, raw);
            assert_eq!(t.outcome, LookupOutcome::Found, "lookup {i}");
            assert_eq!(t.timeouts, 0);
            assert_eq!(Some(t.terminal), net.successor_of_point(key));
        }
        assert_eq!(net.failure_count(), 0);
    }

    #[test]
    fn dense_ring_path_close_to_bits() {
        // §4.1: in a dense network Koorde's path length is "close to d"
        // (the ring bit-width), with successor hops around 30% of it.
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 2048, 4);
        assert_eq!(net.node_count(), 2048, "dense: every slot occupied");
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(5, "dense");
        let mut total = 0usize;
        let mut db = 0usize;
        let trials = 2000;
        for i in 0..trials {
            let t = net.route(ids[i % ids.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
            total += t.path_len();
            db += t.hops_in_phase(HopPhase::DeBruijn);
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (8.0..=18.0).contains(&mean),
            "dense Koorde(2^11) mean path {mean} should be near 11"
        );
        let succ_share = 1.0 - db as f64 / total as f64;
        assert!(
            succ_share < 0.5,
            "successor share {succ_share} should be a minority when dense"
        );
    }

    #[test]
    fn sparse_ring_takes_more_successor_hops() {
        // Fig. 13/14: Koorde's lookup efficiency degrades with sparsity —
        // the successor share of the path grows.
        let share = |count: usize| -> f64 {
            let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), count, 6);
            let ids: Vec<u64> = net.ids().collect();
            let mut rng = stream(7, "sparse");
            let mut total = 0usize;
            let mut succ = 0usize;
            for i in 0..1500 {
                let t = net.route(ids[i % ids.len()], rng.gen());
                assert_eq!(t.outcome, LookupOutcome::Found);
                total += t.path_len();
                succ += t.hops_in_phase(HopPhase::Successor);
            }
            succ as f64 / total as f64
        };
        let dense = share(2048);
        let sparse = share(409); // 80% sparsity
        assert!(
            sparse > dense,
            "successor share must grow with sparsity: dense {dense}, sparse {sparse}"
        );
    }

    #[test]
    fn best_fit_start_shortens_paths() {
        let mean_path = |config: KoordeConfig| -> f64 {
            let mut net = KoordeNetwork::with_nodes(config, 512, 8);
            let ids: Vec<u64> = net.ids().collect();
            let mut rng = stream(9, "fit");
            let mut total = 0usize;
            for i in 0..1500 {
                let t = net.route(ids[i % ids.len()], rng.gen());
                assert_eq!(t.outcome, LookupOutcome::Found);
                total += t.path_len();
            }
            total as f64 / 1500.0
        };
        let basic = mean_path(KoordeConfig::new(14));
        let fitted = mean_path(KoordeConfig::with_best_fit(14));
        assert!(
            fitted < basic,
            "best-fit start {fitted} must beat basic {basic}"
        );
    }

    #[test]
    fn moderate_departures_keep_lookups_correct() {
        // §4.3: "when the failed node percentage is as low as 0.2, all the
        // queries can be solved successfully".
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 2048, 10);
        let mut rng = stream(11, "kfail");
        let ids: Vec<u64> = net.ids().collect();
        for &id in &ids {
            if rng.gen_bool(0.2) {
                net.leave(id);
            }
        }
        let live: Vec<u64> = net.ids().collect();
        let mut failures = 0usize;
        for i in 0..1000 {
            let t = net.route(live[i % live.len()], rng.gen());
            if !t.outcome.is_success() {
                failures += 1;
            }
        }
        // All-four-backups-dead events are possible but must stay rare at
        // p = 0.2 (the paper observed none in its run).
        assert!(failures <= 30, "too many failures at p=0.2: {failures}");
    }

    #[test]
    fn heavy_departures_cause_failures() {
        // §4.3: failures appear when p >= 0.3-0.5 (de Bruijn pointer and
        // all backups dead).
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 2048, 12);
        let mut rng = stream(13, "kheavy");
        let ids: Vec<u64> = net.ids().collect();
        for &id in &ids {
            if rng.gen_bool(0.5) {
                net.leave(id);
            }
        }
        let live: Vec<u64> = net.ids().collect();
        let mut failures = 0usize;
        for i in 0..2000 {
            let t = net.route(live[i % live.len()], rng.gen());
            if !t.outcome.is_success() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "p=0.5 must produce some lookup failures (got none)"
        );
        assert_eq!(net.failure_count() as usize, failures);
    }

    #[test]
    fn stabilization_restores_correctness() {
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 2048, 14);
        let mut rng = stream(15, "kstab");
        let ids: Vec<u64> = net.ids().collect();
        for &id in &ids {
            if rng.gen_bool(0.5) {
                net.leave(id);
            }
        }
        net.stabilize_all();
        let live: Vec<u64> = net.ids().collect();
        for i in 0..500 {
            let t = net.route(live[i % live.len()], rng.gen());
            assert_eq!(t.outcome, LookupOutcome::Found);
            assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = KoordeNetwork::new(KoordeConfig::new(8), 16);
        net.join_id(99);
        let t = net.route_to_point(99, 5);
        assert_eq!(t.outcome, LookupOutcome::Found);
        assert_eq!(t.path_len(), 0);
    }

    #[test]
    fn degree_bounded_by_seven() {
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 700, 17);
        for id in net.ids() {
            let deg = net.node(id).unwrap().degree();
            assert!(deg <= 7, "node {id} degree {deg} > 7");
        }
    }

    #[test]
    fn trait_roundtrip() {
        use dht_core::overlay::Overlay;
        let mut net: Box<dyn Overlay> =
            Box::new(KoordeNetwork::with_nodes(KoordeConfig::new(11), 150, 1));
        assert_eq!(net.name(), "Koorde");
        assert_eq!(net.degree_bound(), Some(7));
        let tokens = net.node_tokens();
        let t = net.lookup(tokens[3], 888);
        assert!(t.outcome.is_success());
        assert_eq!(Some(t.terminal), net.owner_of(888));
    }

    #[test]
    fn key_counts_sum_matches() {
        use dht_core::overlay::key_counts;
        use dht_core::workload;
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 120, 2);
        let keys = workload::key_population(3_000, &mut stream(3, "kk"));
        let counts = key_counts(&net, &keys);
        assert_eq!(counts.iter().sum::<u64>(), 3_000);
    }

    #[test]
    fn churn_through_trait() {
        use dht_core::overlay::Overlay;
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 64, 4);
        let mut rng = stream(5, "kt");
        let n = Overlay::join(&mut net, &mut rng).unwrap();
        assert!(Overlay::leave(&mut net, n));
        assert_eq!(net.len(), 64);
    }
}
