//! Corruption and self-stabilizing repair of Koorde routing state.
//!
//! Maps the shared strategy catalogue ([`CorruptionStrategy`]) onto
//! Koorde's seven-entry state — predecessor, successor list, de Bruijn
//! pointer and its backup predecessors — and implements one node's
//! repair step as an audited recompute from live membership
//! ([`KoordeNetwork::refresh_node`] plus a before/after entry diff).
//! Repair is an exact no-op on healthy nodes and consumes no RNG draws.

use dht_core::corrupt::{CorruptionPlan, CorruptionReport, CorruptionStrategy};

use crate::network::KoordeNetwork;
use crate::node::KoordeNode;

const SALT_PRED: u64 = 1;
const SALT_DEBRUIJN: u64 = 2;
const SALT_SUCC: u64 = 0x100;
const SALT_BACKUP: u64 = 0x200;
const SALT_ATTACKER: u64 = 0xa77a;

/// Entries on which two states differ.
fn diff_count(a: &KoordeNode, b: &KoordeNode) -> u64 {
    let mut n = u64::from(a.predecessor != b.predecessor);
    n += u64::from(a.debruijn != b.debruijn);
    n += a
        .successors
        .iter()
        .zip(&b.successors)
        .filter(|(x, y)| x != y)
        .count() as u64;
    n += a
        .debruijn_preds
        .iter()
        .zip(&b.debruijn_preds)
        .filter(|(x, y)| x != y)
        .count() as u64;
    n
}

impl KoordeNetwork {
    /// Applies a seeded corruption plan (see [`dht_core::corrupt`]) to
    /// the ring's routing state. Membership and query loads stay
    /// untouched.
    pub fn corrupt(&mut self, plan: &CorruptionPlan) -> CorruptionReport {
        let live: Vec<u64> = self.ids().collect();
        let victims = plan.victims(&live);
        let attacker = plan.pick(SALT_ATTACKER, 0, &live);
        let space = self.config().space();
        let mut report = CorruptionReport::default();
        for &id in &victims {
            let before = self.node(id).expect("victim is live").clone();
            let mut next = before.clone();
            match plan.strategy {
                CorruptionStrategy::RandomizeLinks => {
                    if let Some(p) = plan.pick(id, SALT_PRED, &live) {
                        next.predecessor = p;
                    }
                    if let Some(d) = plan.pick(id, SALT_DEBRUIJN, &live) {
                        next.debruijn = d;
                    }
                    for (i, s) in next.successors.as_mut_slice().iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_SUCC + i as u64, &live) {
                            *s = v;
                        }
                    }
                    for (i, p) in next.debruijn_preds.as_mut_slice().iter_mut().enumerate() {
                        if let Some(v) = plan.pick(id, SALT_BACKUP + i as u64, &live) {
                            *p = v;
                        }
                    }
                }
                CorruptionStrategy::GhostLinks => {
                    let is_live = |v: u64| live.binary_search(&v).is_ok();
                    if let Some(g) = plan.ghost(id, SALT_PRED, space, is_live) {
                        next.predecessor = g;
                    }
                    if let Some(g) = plan.ghost(id, SALT_DEBRUIJN, space, is_live) {
                        next.debruijn = g;
                    }
                    for (i, s) in next.successors.as_mut_slice().iter_mut().enumerate() {
                        if let Some(g) = plan.ghost(id, SALT_SUCC + i as u64, space, is_live) {
                            *s = g;
                        }
                    }
                    for (i, p) in next.debruijn_preds.as_mut_slice().iter_mut().enumerate() {
                        if let Some(g) = plan.ghost(id, SALT_BACKUP + i as u64, space, is_live) {
                            *p = g;
                        }
                    }
                }
                CorruptionStrategy::CrossWireLeafSets => {
                    // Cross the two ring neighborhoods: the successor
                    // list against the de Bruijn backups, and the
                    // predecessor against the de Bruijn pointer.
                    std::mem::swap(&mut next.successors, &mut next.debruijn_preds);
                    std::mem::swap(&mut next.predecessor, &mut next.debruijn);
                }
                CorruptionStrategy::ZeroLinks => {
                    // The "knows nobody" reset state of a fresh node.
                    next.predecessor = next.id;
                    next.debruijn = next.id;
                    for s in next.successors.as_mut_slice() {
                        *s = next.id;
                    }
                    for p in next.debruijn_preds.as_mut_slice() {
                        *p = next.id;
                    }
                }
                CorruptionStrategy::EclipseRegion => {
                    if let Some(attacker) = attacker {
                        next.predecessor = attacker;
                        next.debruijn = attacker;
                        for s in next.successors.as_mut_slice() {
                            *s = attacker;
                        }
                        for p in next.debruijn_preds.as_mut_slice() {
                            *p = attacker;
                        }
                    }
                }
            }
            let mutated = diff_count(&before, &next);
            *self.node_mut(id).expect("victim is live") = next;
            report.note(mutated);
        }
        report
    }

    /// One node's repair step: recompute ring pointers, de Bruijn
    /// pointer, and backups from live membership; returns entries
    /// rewritten (0 on a healthy node). Ignores dead tokens.
    pub fn repair_one(&mut self, id: u64) -> u64 {
        if !self.is_live(id) {
            return 0;
        }
        let before = self.node(id).expect("live node has state").clone();
        self.refresh_node(id);
        diff_count(&before, self.node(id).expect("still live"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::KoordeConfig;
    use dht_core::audit::{AuditScope, StateAudit};

    fn net(n: usize) -> KoordeNetwork {
        KoordeNetwork::with_nodes(KoordeConfig::new(11), n, 42)
    }

    fn repair_sweep(net: &mut KoordeNetwork) -> u64 {
        let ids: Vec<u64> = net.ids().collect();
        ids.into_iter().map(|id| net.repair_one(id)).sum()
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_ring() {
        let mut n = net(80);
        assert!(n.audit(AuditScope::Full).is_clean());
        assert_eq!(repair_sweep(&mut n), 0);
    }

    #[test]
    fn every_strategy_is_detected_and_repaired() {
        for strategy in CorruptionStrategy::ALL {
            let mut n = net(80);
            let plan = CorruptionPlan::new(strategy, 0.5, 9);
            let report = n.corrupt(&plan);
            assert_eq!(report.targeted_nodes, 40, "{strategy:?}");
            assert!(report.corrupted_nodes > 0, "{strategy:?} did no damage");
            assert!(
                !n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} evaded the audit"
            );
            repair_sweep(&mut n);
            assert!(
                n.audit(AuditScope::Full).is_clean(),
                "{strategy:?} not repaired: {}",
                n.audit(AuditScope::Full)
            );
            assert_eq!(
                repair_sweep(&mut n),
                0,
                "{strategy:?} repair not idempotent"
            );
        }
    }
}
