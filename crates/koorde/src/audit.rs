//! Conformance audit: checks every node's ring pointers and de Bruijn
//! state against the live membership.
//!
//! Ring pointers (predecessor + successor list) are repaired eagerly by
//! the graceful join/leave protocol and are checked at
//! [`AuditScope::Online`]. The de Bruijn pointer and its predecessor
//! backups are repaired by stabilization (§4.4) *and* opportunistically
//! during lookups (a querier that times out on a de Bruijn hop adopts the
//! backup it used), so they are only checked at [`AuditScope::Full`].

use dht_core::audit::{AuditReport, AuditScope, StateAudit};
use dht_core::sim::SimOverlay;

use crate::network::KoordeNetwork;

impl StateAudit for KoordeNetwork {
    fn audit(&self, scope: AuditScope) -> AuditReport {
        let mut report = AuditReport::new(self.label(), scope);
        let config = self.config();
        let space = config.space();
        let r = config.successor_list;
        for id in self.ids() {
            report.note_checked(1);
            let node = self.node(id).expect("live id");
            report.check_eq(id, "koorde/node-id", &node.id, &id);

            // The paper's seven-entry bound on *outgoing* contacts: one de
            // Bruijn node, `r` successors, and the de Bruijn backups (§4).
            let bound = r + config.debruijn_backups + 1;
            report.check(
                id,
                "koorde/state-size",
                node.degree() <= bound
                    && node.successors.len() == r
                    && node.debruijn_preds.len() == config.debruijn_backups,
                || {
                    format!(
                        "degree {} (bound {bound}), {} successors, {} backups",
                        node.degree(),
                        node.successors.len(),
                        node.debruijn_preds.len()
                    )
                },
            );

            // Ring pointers: repaired eagerly on every graceful join/leave.
            let pred = self.before_point(id).expect("non-empty ring");
            report.check_eq(id, "koorde/predecessor", &node.predecessor, &pred);
            let mut expected = crate::node::RingList::new();
            let mut cursor = id;
            for _ in 0..r {
                let s = self
                    .successor_of_point((cursor + 1) % space)
                    .expect("non-empty ring");
                expected.push(s);
                cursor = s;
            }
            report.check_eq(id, "koorde/successor-list", &node.successors, &expected);

            // De Bruijn pointer `predecessor(2 * id)` plus backups: lazily
            // stabilized and rewritten by repair-on-use mid-lookup.
            if scope == AuditScope::Full {
                let db = self
                    .at_or_before_point((2 * id) % space)
                    .expect("non-empty ring");
                report.check_eq(id, "koorde/debruijn-pointer", &node.debruijn, &db);
                let mut backups = crate::node::RingList::new();
                let mut cursor = db;
                for _ in 0..config.debruijn_backups {
                    let p = self.before_point(cursor).expect("non-empty ring");
                    backups.push(p);
                    cursor = p;
                }
                report.check_eq(
                    id,
                    "koorde/debruijn-backups",
                    &node.debruijn_preds,
                    &backups,
                );
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::KoordeConfig;

    fn net(n: usize) -> KoordeNetwork {
        KoordeNetwork::with_nodes(KoordeConfig::new(10), n, 13)
    }

    #[test]
    fn stabilized_network_is_fully_clean() {
        let net = net(90);
        let report = net.audit(AuditScope::Full);
        assert_eq!(report.checked_nodes(), 90);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn ring_pointers_survive_graceful_churn_without_stabilization() {
        let mut net = net(64);
        for step in 0..30 {
            if step % 3 == 0 {
                let victim = net.ids().nth(step % net.node_count()).unwrap();
                net.leave(victim);
            } else {
                net.join_random();
            }
            let report = net.audit(AuditScope::Online);
            assert!(report.is_clean(), "after step {step}: {report}");
        }
    }

    #[test]
    fn corrupted_debruijn_pointer_is_caught_by_name() {
        let mut net = net(90);
        let id = net.ids().next().unwrap();
        let other = net.ids().nth(40).unwrap();
        let wrong = net.node(id).unwrap().debruijn;
        let wrong = if wrong == other { id } else { other };
        net.node_mut(id).unwrap().debruijn = wrong;
        let report = net.audit(AuditScope::Full);
        assert!(
            report
                .violated_invariants()
                .contains(&"koorde/debruijn-pointer"),
            "{report}"
        );
        // De Bruijn state is lazily stabilized: online audits ignore it.
        assert!(net.audit(AuditScope::Online).is_clean());
    }

    #[test]
    fn corrupted_predecessor_is_caught_online() {
        let mut net = net(90);
        let id = net.ids().next().unwrap();
        net.node_mut(id).unwrap().predecessor = id;
        let report = net.audit(AuditScope::Online);
        assert!(
            report.violated_invariants().contains(&"koorde/predecessor"),
            "{report}"
        );
    }
}
