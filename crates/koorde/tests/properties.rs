//! Property-based tests of the Koorde de Bruijn invariants.

use dht_core::lookup::LookupOutcome;
use dht_core::rng::stream;
use koorde::{KoordeConfig, KoordeNetwork};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn debruijn_pointer_is_at_or_before_double(seed in any::<u64>(), count in 2usize..150) {
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(10), count, seed);
        let space = 1u64 << 10;
        for id in net.ids() {
            let n = net.node(id).unwrap();
            prop_assert_eq!(Some(n.debruijn), net.at_or_before_point((2 * id) % space));
            // Backups are the chain of immediate predecessors of d.
            let mut cursor = n.debruijn;
            for &b in &n.debruijn_preds {
                prop_assert_eq!(Some(b), net.before_point(cursor));
                cursor = b;
            }
        }
    }

    #[test]
    fn stable_lookups_converge_at_successor(seed in any::<u64>(), count in 2usize..150) {
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), count, seed);
        let ids: Vec<u64> = net.ids().collect();
        let mut rng = stream(seed, "koorde-prop");
        for i in 0..15 {
            let raw: u64 = rng.gen();
            let k = net.key_of(raw);
            let t = net.route(ids[i % ids.len()], raw);
            prop_assert_eq!(t.outcome, LookupOutcome::Found);
            prop_assert_eq!(Some(t.terminal), net.successor_of_point(k));
            prop_assert_eq!(t.timeouts, 0);
        }
    }

    #[test]
    fn best_fit_never_slower_on_average(seed in any::<u64>()) {
        // At equal seed and workload, best-fit de Bruijn starts must not
        // lengthen the mean path.
        let mean = |config: KoordeConfig| {
            let mut net = KoordeNetwork::with_nodes(config, 256, seed);
            let ids: Vec<u64> = net.ids().collect();
            let mut rng = stream(seed, "fit-prop");
            let mut total = 0usize;
            for i in 0..300 {
                total += net.route(ids[i % ids.len()], rng.gen()).path_len();
            }
            total as f64 / 300.0
        };
        let basic = mean(KoordeConfig::new(12));
        let fitted = mean(KoordeConfig::with_best_fit(12));
        prop_assert!(fitted <= basic + 0.5, "best-fit {fitted} vs basic {basic}");
    }

    #[test]
    fn no_wrong_owner_ever(seed in any::<u64>(), leaves in 0usize..60) {
        // Even when lookups fail (dead de Bruijn chain), Koorde must never
        // claim a wrong owner.
        let mut net = KoordeNetwork::with_nodes(KoordeConfig::new(11), 150, seed);
        let mut rng = stream(seed, "kwrong");
        for _ in 0..leaves {
            if net.node_count() > 4 {
                let ids: Vec<u64> = net.ids().collect();
                let victim = ids[(rng.gen::<u64>() % ids.len() as u64) as usize];
                net.leave(victim);
            }
        }
        let ids: Vec<u64> = net.ids().collect();
        for i in 0..25 {
            let t = net.route(ids[i % ids.len()], rng.gen());
            prop_assert!(
                matches!(t.outcome, LookupOutcome::Found | LookupOutcome::Stuck),
                "unexpected outcome {:?}",
                t.outcome
            );
        }
    }
}
