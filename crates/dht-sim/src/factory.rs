//! Overlay construction with the paper's sizing rules.
//!
//! The §4 experiments compare networks of equal *node count* `n`:
//!
//! * Cycloid uses the smallest dimension `d` whose identifier space
//!   `d * 2^d` holds `n` nodes (the paper's sizes `n = d * 2^d` make this
//!   exact);
//! * Chord and Koorde use a `2^⌈log₂ n⌉` ring;
//! * Viceroy draws real identifiers, with levels from `[1, ⌈log₂ n⌉]`.

use can::{CanConfig, CanNetwork};
use chord::{ChordConfig, ChordNetwork};
use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::overlay::Overlay;
use koorde::{KoordeConfig, KoordeNetwork};
use pastry::{PastryConfig, PastryNetwork};
use viceroy::{ViceroyConfig, ViceroyNetwork};

/// The overlays under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlayKind {
    /// Cycloid with the seven-entry routing state (leaf radius 1).
    Cycloid7,
    /// Cycloid with the eleven-entry routing state (leaf radius 2).
    Cycloid11,
    /// Viceroy butterfly.
    Viceroy,
    /// Koorde with one de Bruijn node, three successors, three backups.
    Koorde,
    /// Koorde with the best-fit imaginary-start optimization (ablation).
    KoordeBestFit,
    /// Chord reference with `O(log n)` fingers.
    Chord,
    /// Pastry-style prefix-routing hypercube DHT (extension baseline).
    Pastry,
    /// CAN 2-dimensional torus (extension baseline).
    Can,
}

impl OverlayKind {
    /// Display name matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OverlayKind::Cycloid7 => "Cycloid(7)",
            OverlayKind::Cycloid11 => "Cycloid(11)",
            OverlayKind::Viceroy => "Viceroy",
            OverlayKind::Koorde => "Koorde",
            OverlayKind::KoordeBestFit => "Koorde(best-fit)",
            OverlayKind::Chord => "Chord",
            OverlayKind::Pastry => "Pastry",
            OverlayKind::Can => "CAN(d=2)",
        }
    }
}

/// The five systems every figure of the paper plots.
pub const PAPER_KINDS: [OverlayKind; 5] = [
    OverlayKind::Cycloid7,
    OverlayKind::Cycloid11,
    OverlayKind::Viceroy,
    OverlayKind::Koorde,
    OverlayKind::Chord,
];

/// All kinds, including ablation variants and extension baselines.
pub const ALL_KINDS: [OverlayKind; 8] = [
    OverlayKind::Cycloid7,
    OverlayKind::Cycloid11,
    OverlayKind::Viceroy,
    OverlayKind::Koorde,
    OverlayKind::KoordeBestFit,
    OverlayKind::Chord,
    OverlayKind::Pastry,
    OverlayKind::Can,
];

/// The paper's systems plus the extension baselines of Table 1 (Pastry's
/// hypercube prefix routing, CAN's mesh).
pub const EXTENDED_KINDS: [OverlayKind; 7] = [
    OverlayKind::Cycloid7,
    OverlayKind::Cycloid11,
    OverlayKind::Viceroy,
    OverlayKind::Koorde,
    OverlayKind::Chord,
    OverlayKind::Pastry,
    OverlayKind::Can,
];

/// Smallest Cycloid dimension whose identifier space holds `n` nodes.
#[must_use]
pub fn cycloid_dim_for(n: usize) -> u32 {
    let mut d = 1u32;
    while (u64::from(d) << d) < n as u64 {
        d += 1;
    }
    d
}

/// Ring bit-width for Chord/Koorde: `⌈log₂ n⌉`, at least 3.
#[must_use]
pub fn ring_bits_for(n: usize) -> u32 {
    let mut bits = 3u32;
    while (1u64 << bits) < n as u64 {
        bits += 1;
    }
    bits
}

/// Builds a stabilized overlay of `kind` with `n` nodes, deterministically
/// from `seed`. The identifier space is sized to fit `n` (the §4.1 sizing
/// rule); use [`build_overlay_spaced`] when the paper fixes the space
/// independently of the population (§4.2, §4.5).
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn build_overlay(kind: OverlayKind, n: usize, seed: u64) -> Box<dyn Overlay> {
    build_overlay_spaced(kind, n, n, seed)
}

/// Builds a stabilized overlay of `kind` with `n` nodes inside an
/// identifier space of at least `id_space` slots ("an ID space of 2048
/// nodes", §4.2/§4.5): Cycloid picks the smallest dimension whose
/// `d * 2^d` space holds `id_space`, Chord/Koorde a `2^⌈log₂ id_space⌉`
/// ring. Viceroy's real-number space is population-independent.
///
/// # Panics
/// Panics if `n == 0` or `n > id_space` capacity.
#[must_use]
pub fn build_overlay_spaced(
    kind: OverlayKind,
    n: usize,
    id_space: usize,
    seed: u64,
) -> Box<dyn Overlay> {
    assert!(n > 0, "cannot build an empty overlay");
    let id_space = id_space.max(n);
    match kind {
        OverlayKind::Cycloid7 => Box::new(CycloidNetwork::with_nodes(
            CycloidConfig::seven_entry(cycloid_dim_for(id_space)),
            n,
            seed,
        )),
        OverlayKind::Cycloid11 => Box::new(CycloidNetwork::with_nodes(
            CycloidConfig::eleven_entry(cycloid_dim_for(id_space)),
            n,
            seed,
        )),
        OverlayKind::Viceroy => Box::new(ViceroyNetwork::with_nodes(ViceroyConfig::new(), n, seed)),
        OverlayKind::Koorde => Box::new(KoordeNetwork::with_nodes(
            KoordeConfig::new(ring_bits_for(id_space)),
            n,
            seed,
        )),
        OverlayKind::KoordeBestFit => Box::new(KoordeNetwork::with_nodes(
            KoordeConfig::with_best_fit(ring_bits_for(id_space)),
            n,
            seed,
        )),
        OverlayKind::Chord => Box::new(ChordNetwork::with_nodes(
            ChordConfig::new(ring_bits_for(id_space)),
            n,
            seed,
        )),
        OverlayKind::Pastry => {
            // Round the ring up to a whole number of base-4 digits.
            let bits = ring_bits_for(id_space).div_ceil(2) * 2;
            Box::new(PastryNetwork::with_nodes(PastryConfig::new(bits), n, seed))
        }
        OverlayKind::Can => Box::new(CanNetwork::with_nodes(CanConfig::new(2), n, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycloid_dims_match_paper_sizes() {
        // The paper's n = d * 2^d sizes must map back to exactly d.
        for d in 3..=8u32 {
            let n = (u64::from(d) << d) as usize;
            assert_eq!(cycloid_dim_for(n), d, "n = {n}");
        }
    }

    #[test]
    fn ring_bits_cover_n() {
        assert_eq!(ring_bits_for(2048), 11);
        assert_eq!(ring_bits_for(2000), 11);
        assert_eq!(ring_bits_for(24), 5);
        assert_eq!(ring_bits_for(1), 3);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in ALL_KINDS {
            let net = build_overlay(kind, 64, 1);
            assert_eq!(net.len(), 64, "{}", kind.label());
            assert!(!net.name().is_empty());
        }
    }

    #[test]
    fn factory_lookup_smoke() {
        let mut rng = dht_core::rng::stream(2, "factory");
        for kind in ALL_KINDS {
            let mut net = build_overlay(kind, 100, 3);
            let src = net.random_node(&mut rng).unwrap();
            let t = net.lookup(src, 424_242);
            assert!(
                t.outcome.is_success(),
                "{} lookup failed: {:?}",
                kind.label(),
                t.outcome
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ALL_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ALL_KINDS.len());
    }
}
