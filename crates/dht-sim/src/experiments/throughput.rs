//! Lookup-throughput benchmark: sequential vs sharded execution.
//!
//! The ROADMAP's north star is a reproduction that runs "as fast as the
//! hardware allows". This experiment measures it directly: each overlay
//! routes the same workload twice — once with one worker and once with
//! the configured worker pool (`repro --jobs`) — and reports the
//! wall-clock speedup. Because the parallel executor is deterministic
//! (see `dht_core::sim::ParallelExecutor`), the two passes must agree on
//! every statistic; the row records that check alongside the timings.

use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::workload::random_pairs;

use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay, OverlayKind, ALL_KINDS};

/// Parameters of the throughput benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Network size.
    pub nodes: usize,
    /// Lookups per pass.
    pub lookups: usize,
    /// Worker-thread cap for the parallel pass.
    pub jobs: usize,
    /// Master seed.
    pub seed: u64,
}

impl ThroughputParams {
    /// Full-scale parameters: all 8 kinds, 2048 nodes, 50k lookups.
    #[must_use]
    pub fn paper(seed: u64, jobs: usize) -> Self {
        Self {
            kinds: ALL_KINDS.to_vec(),
            nodes: 2048,
            lookups: 50_000,
            jobs: jobs.max(1),
            seed,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64, jobs: usize) -> Self {
        Self {
            nodes: 256,
            lookups: 4_000,
            ..Self::paper(seed, jobs)
        }
    }
}

/// One row: one overlay routed sequentially and sharded.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Overlay display name.
    pub label: String,
    /// Worker-thread cap used for the parallel pass.
    pub jobs: usize,
    /// The one-worker pass.
    pub sequential: LookupAggregate,
    /// The `jobs`-worker pass over the identical network and workload.
    pub parallel: LookupAggregate,
    /// Whether the two passes' per-node query-load tables were equal.
    pub loads_equal: bool,
}

impl ThroughputRow {
    /// Wall-clock speedup of the parallel pass over the sequential one.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential.elapsed_us as f64 / self.parallel.elapsed_us.max(1) as f64
    }

    /// Whether every statistic of the two passes agrees (the executor's
    /// determinism contract: only wall clock may differ).
    #[must_use]
    pub fn results_identical(&self) -> bool {
        let a = &self.sequential;
        let b = &self.parallel;
        self.loads_equal
            && a.path == b.path
            && a.timeouts == b.timeouts
            && a.failures == b.failures
            && a.retries == b.retries
            && a.msg_timeouts == b.msg_timeouts
            && a.latency_ms == b.latency_ms
            && a.timeouts_total == b.timeouts_total
            && a.retries_total == b.retries_total
            && a.msg_timeouts_total == b.msg_timeouts_total
    }
}

/// Runs both passes per overlay. Cells run one at a time (unlike the
/// other experiments' per-cell threads) so the wall-clock comparison is
/// not skewed by sibling cells competing for cores.
#[must_use]
pub fn measure(params: &ThroughputParams) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for (i, &kind) in params.kinds.iter().enumerate() {
        let build_seed = params.seed ^ (i as u64) << 16;
        let mut rng = stream_indexed(params.seed, "throughput", i as u64);
        let mut seq_net = build_overlay(kind, params.nodes, build_seed);
        let reqs = random_pairs(seq_net.as_ref(), params.lookups, &mut rng);
        let sequential = run_requests_jobs(seq_net.as_mut(), &reqs, 1);
        // An identically seeded build yields the identical network, so
        // the parallel pass sees the same tokens and routing tables.
        let mut par_net = build_overlay(kind, params.nodes, build_seed);
        let parallel = run_requests_jobs(par_net.as_mut(), &reqs, params.jobs);
        let loads_equal = seq_net.query_loads() == par_net.query_loads();
        // `kind.label()`, not `name()`: the ablation variants share a
        // display name, which would collide in the metrics registry.
        rows.push(ThroughputRow {
            label: kind.label().to_string(),
            jobs: params.jobs,
            sequential,
            parallel,
            loads_equal,
        });
    }
    rows
}

/// Registers per-overlay throughput gauges, keyed `{overlay}`:
/// lookups/sec for both passes, the speedup, and the equality check.
pub fn register_metrics(rows: &[ThroughputRow], reg: &mut MetricsRegistry) {
    for row in rows {
        reg.counter(&format!("{}.lookups", row.label))
            .add(row.sequential.path.n as u64);
        reg.gauge(&format!("{}.jobs", row.label))
            .set(row.jobs as f64);
        reg.gauge(&format!("{}.seq_lookups_per_sec", row.label))
            .set(row.sequential.lookups_per_sec());
        reg.gauge(&format!("{}.par_lookups_per_sec", row.label))
            .set(row.parallel.lookups_per_sec());
        reg.gauge(&format!("{}.speedup", row.label))
            .set(row.speedup());
        reg.gauge(&format!("{}.results_identical", row.label))
            .set(f64::from(u8::from(row.results_identical())));
        reg.timer(&format!("{}.seq_wall", row.label))
            .record_us(row.sequential.elapsed_us);
        reg.timer(&format!("{}.par_wall", row.label))
            .record_us(row.parallel.elapsed_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_passes_agree_on_every_statistic() {
        let params = ThroughputParams {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
            nodes: 128,
            lookups: 600,
            jobs: 4,
            seed: 11,
        };
        for row in measure(&params) {
            assert!(
                row.results_identical(),
                "{} diverged across jobs",
                row.label
            );
            assert_eq!(row.sequential.path.n, 600);
            assert!(row.speedup() > 0.0);
        }
    }

    #[test]
    fn metrics_export_throughput_gauges() {
        use dht_core::obs::Metric;
        let params = ThroughputParams {
            kinds: vec![OverlayKind::Chord],
            nodes: 64,
            lookups: 200,
            jobs: 2,
            seed: 3,
        };
        let rows = measure(&params);
        let mut reg = MetricsRegistry::new();
        register_metrics(&rows, &mut reg);
        match reg.get("Chord.speedup") {
            Some(Metric::Gauge(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        match reg.get("Chord.results_identical") {
            Some(Metric::Gauge(g)) => assert!((g.get() - 1.0).abs() < f64::EPSILON),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
