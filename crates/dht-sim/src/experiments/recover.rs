//! Self-stabilizing recovery from corrupted routing state (extension).
//!
//! The convergence experiment ([`crate::experiments::converge`]) times
//! stabilization after *membership* shocks; this one times the repair
//! protocol after *state* shocks: a seeded [`CorruptionPlan`] scrambles
//! a fraction of the nodes' routing tables through one of the named
//! [`CorruptionStrategy`]s, then the per-second repair timers
//! (`churn::repair_bucket`) run on the virtual clock until the
//! **full-scope** audit ([`AuditScope::Full`]) comes back clean — the
//! audit is the recovery oracle, exactly as it is the convergence
//! oracle, and the first clean second is the *time to recover*.
//!
//! Alongside time, the sweep accounts recovery *cost*: the repair
//! routines invoked (the maintenance-message proxy) and the
//! routing-state entries they rewrote. After recovery, a lookup batch
//! (sharded across `jobs` workers, bit-identical for every value)
//! confirms the repaired overlay actually routes: zero failures is part
//! of the recovery contract, not just a clean audit.

use crossbeam::thread;
use dht_core::audit::AuditScope;
use dht_core::corrupt::{CorruptionPlan, CorruptionStrategy};
use dht_core::obs::MetricsRegistry;
use dht_core::overlay::Overlay;
use dht_core::rng::stream_indexed;
use dht_core::workload::random_pairs;

use crate::churn::{repair_bucket, StabilizePhase};
use crate::event::{EventQueue, SECOND};
use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay_spaced, OverlayKind};

/// Parameters of the recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoverParams {
    /// Overlays to corrupt (all eight factory kinds by default).
    pub kinds: Vec<OverlayKind>,
    /// Corruption strategies to sweep (the full catalogue by default).
    pub strategies: Vec<CorruptionStrategy>,
    /// Corruption severities to sweep: each is the fraction of nodes
    /// whose routing state the plan scrambles.
    pub severities: Vec<f64>,
    /// Repair periods `T` (seconds) to sweep: each node's repair timer
    /// fires once per period, phase-hashed across the period's seconds.
    pub periods: Vec<u64>,
    /// Network size.
    pub nodes: usize,
    /// Recovery horizon, in multiples of the period: a corruption that
    /// is not audit-clean within `horizon_periods * T` seconds is
    /// reported as unrecovered.
    pub horizon_periods: u64,
    /// Post-recovery lookups verifying the repaired overlay routes.
    pub lookups: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for the post-recovery lookup batch (results
    /// are bit-identical for every value).
    pub jobs: usize,
}

impl RecoverParams {
    /// Paper-scale parameters: 512-node networks, every strategy, 25%
    /// and 50% severities, `T ∈ {10, 30}`.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::ALL_KINDS.to_vec(),
            strategies: CorruptionStrategy::ALL.to_vec(),
            severities: vec![0.25, 0.5],
            periods: vec![10, 30],
            nodes: 512,
            horizon_periods: 8,
            lookups: 1_000,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests and CI.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: crate::factory::ALL_KINDS.to_vec(),
            strategies: CorruptionStrategy::ALL.to_vec(),
            severities: vec![0.25],
            periods: vec![10],
            nodes: 96,
            horizon_periods: 8,
            lookups: 150,
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay under one (strategy, severity, period) cell.
#[derive(Debug, Clone)]
pub struct RecoverRow {
    /// Overlay display name.
    pub label: String,
    /// Corruption strategy applied.
    pub strategy: CorruptionStrategy,
    /// Fraction of nodes the plan targeted.
    pub severity: f64,
    /// Repair period `T`, seconds.
    pub period: u64,
    /// Nodes the plan selected as victims.
    pub targeted: u64,
    /// Victims whose state actually changed.
    pub corrupted: u64,
    /// Routing-state entries the corruption rewrote.
    pub mutated_entries: u64,
    /// Simulated seconds until the full-scope audit came back clean;
    /// `None` if unrecovered within the horizon.
    pub clean_s: Option<u64>,
    /// Repair routines invoked until clean — the recovery's
    /// maintenance-message proxy.
    pub repair_calls: u64,
    /// Routing-state entries the repair routines rewrote.
    pub repaired_entries: u64,
    /// Open full-scope audit violations sampled at every simulated
    /// second of repair, as `(t_us, violations)` — the recovery
    /// trajectory behind [`RecoverRow::clean_s`].
    pub trajectory: Vec<(u64, u64)>,
    /// Post-recovery lookup batch (zero failures is part of the
    /// recovery contract).
    pub post: LookupAggregate,
}

/// Runs per-second repair buckets on the virtual clock until the
/// full-scope audit is clean. Returns `(seconds to clean, repair calls,
/// entries repaired)`; seconds is `Some(0)` if the overlay was already
/// clean and `None` if it is still dirty after `max_secs` (calls and
/// entries then cover the whole horizon).
#[must_use]
pub fn repair_to_clean(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    max_secs: u64,
) -> (Option<u64>, u64, u64) {
    let (clean_s, calls, entries, _) = repair_to_clean_traced(overlay, phase, period, max_secs);
    (clean_s, calls, entries)
}

/// [`repair_to_clean`], additionally recording the recovery
/// *trajectory*: the full-scope audit's open-violation count at `t = 0`
/// and after every simulated second's repair bucket, as
/// `(t_us, violations)` points in ascending virtual time. The last
/// point is 0 exactly when the overlay recovered.
#[must_use]
pub fn repair_to_clean_traced(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    max_secs: u64,
) -> (Option<u64>, u64, u64, Vec<(u64, u64)>) {
    let period = period.max(1);
    let mut calls = 0u64;
    let mut entries = 0u64;
    let violations =
        |overlay: &mut dyn Overlay| overlay.audit_state(AuditScope::Full).violations().len() as u64;
    let start = violations(overlay);
    let mut trajectory = vec![(0, start)];
    if start == 0 {
        return (Some(0), calls, entries, trajectory);
    }
    let mut queue: EventQueue<u64> = EventQueue::new();
    queue.schedule(SECOND, 1);
    while let Some((now, sec)) = queue.pop() {
        let bucket = (sec - 1) % period;
        let (c, e) = repair_bucket(overlay, phase, period, bucket);
        calls += c;
        entries += e;
        let open = violations(overlay);
        trajectory.push((now, open));
        if open == 0 {
            return (Some(now / SECOND), calls, entries, trajectory);
        }
        if sec >= max_secs {
            return (None, calls, entries, trajectory);
        }
        queue.schedule_in(SECOND, sec + 1);
    }
    (None, calls, entries, trajectory)
}

/// Runs the sweep; rows ordered by period, then strategy, then
/// severity, then kind.
#[must_use]
pub fn measure(params: &RecoverParams) -> Vec<RecoverRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &period in &params.periods {
        for &strategy in &params.strategies {
            for &severity in &params.severities {
                for &kind in &params.kinds {
                    cells.push((idx, kind, strategy, severity, period));
                    idx += 1;
                }
            }
        }
    }
    let mut rows: Vec<Option<RecoverRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, strategy, severity, period) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| run_cell(params, kind, strategy, severity, period, i as u64)),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

fn run_cell(
    params: &RecoverParams,
    kind: OverlayKind,
    strategy: CorruptionStrategy,
    severity: f64,
    period: u64,
    cell: u64,
) -> RecoverRow {
    let horizon = params.horizon_periods.max(1) * period.max(1);
    // Build inside a strictly larger identifier space: `build_overlay`'s
    // exact-fit sizing can saturate a power-of-two ring (512 nodes fill
    // a 2^9 Chord/Koorde space completely), and a saturated space has no
    // dead token for the ghost strategy to point a link at — corruption
    // would silently degenerate to a no-op for exactly those cells.
    let id_space = params.nodes + params.nodes / 2;
    let mut net = build_overlay_spaced(kind, params.nodes, id_space, params.seed ^ (cell << 40));
    let plan = CorruptionPlan::new(strategy, severity, params.seed ^ cell);
    let report = net.corrupt_state(&plan);
    let (clean_s, repair_calls, repaired_entries, trajectory) =
        repair_to_clean_traced(net.as_mut(), StabilizePhase::Hashed, period, horizon);
    let mut rng = stream_indexed(params.seed, "recover", cell);
    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
    let post = run_requests_jobs(net.as_mut(), &reqs, params.jobs.max(1));
    RecoverRow {
        // `kind.label()` and not `net.name()`: the Koorde ablation shares
        // the display name "Koorde", and metric keys must be unique.
        label: kind.label().to_string(),
        strategy,
        severity,
        period,
        targeted: report.targeted_nodes as u64,
        corrupted: report.corrupted_nodes as u64,
        mutated_entries: report.mutated_entries,
        clean_s,
        repair_calls,
        repaired_entries,
        trajectory,
        post,
    }
}

/// Registers every row's recovery metrics, keyed
/// `{overlay}/{strategy}/s={severity}/T={period}`. Unrecovered cells
/// export `-1` so the gauge is always present.
pub fn register_metrics(rows: &[RecoverRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!(
            "{}/{}/s={}/T={}",
            row.label,
            row.strategy.label(),
            row.severity,
            row.period
        );
        reg.counter(&format!("{prefix}.targeted")).add(row.targeted);
        reg.counter(&format!("{prefix}.corrupted"))
            .add(row.corrupted);
        reg.counter(&format!("{prefix}.mutated_entries"))
            .add(row.mutated_entries);
        reg.gauge(&format!("{prefix}.clean_s"))
            .set(row.clean_s.map_or(-1.0, |s| s as f64));
        reg.counter(&format!("{prefix}.repair_calls"))
            .add(row.repair_calls);
        reg.counter(&format!("{prefix}.repaired_entries"))
            .add(row.repaired_entries);
        reg.counter(&format!("{prefix}.post_failures"))
            .add(row.post.failures as u64);
        reg.gauge(&format!("{prefix}.post_path_mean"))
            .set(row.post.path.mean);
        let series = reg.series(&format!("{prefix}.violations"));
        for &(t_us, open) in &row.trajectory {
            series.push(t_us, open as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_recovers_and_routes() {
        let mut params = RecoverParams::quick(3);
        params.kinds = vec![OverlayKind::Cycloid7, OverlayKind::Can];
        params.strategies = vec![
            CorruptionStrategy::RandomizeLinks,
            CorruptionStrategy::EclipseRegion,
        ];
        params.nodes = 64;
        params.lookups = 80;
        let rows = measure(&params);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.targeted >= 16, "{}: 25% of 64 targeted", row.label);
            assert!(row.corrupted > 0, "{}: corruption did no damage", row.label);
            let s = row
                .clean_s
                .unwrap_or_else(|| panic!("{} {:?} unrecovered", row.label, row.strategy));
            assert!(
                s > 0,
                "{}: corrupted state cannot be clean at t=0",
                row.label
            );
            assert!(row.repair_calls > 0);
            assert_eq!(
                row.post.failures, 0,
                "{}: repaired overlay must route",
                row.label
            );
        }
    }

    #[test]
    fn repair_to_clean_is_zero_on_a_clean_overlay() {
        let mut net = crate::factory::build_overlay(OverlayKind::Cycloid7, 64, 1);
        let (secs, calls, entries) = repair_to_clean(net.as_mut(), StabilizePhase::Hashed, 30, 60);
        assert_eq!(secs, Some(0));
        assert_eq!(calls, 0);
        assert_eq!(entries, 0);
    }

    #[test]
    fn recover_is_deterministic_across_jobs() {
        let run = |jobs: usize| {
            let mut params = RecoverParams::quick(7);
            params.kinds = vec![OverlayKind::Koorde];
            params.strategies = vec![CorruptionStrategy::GhostLinks];
            params.nodes = 64;
            params.lookups = 80;
            params.jobs = jobs;
            measure(&params)
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.clean_s, y.clean_s);
            assert_eq!(x.repair_calls, y.repair_calls);
            assert_eq!(x.repaired_entries, y.repaired_entries);
            assert_eq!(x.mutated_entries, y.mutated_entries);
            assert_eq!(x.post.path.mean, y.post.path.mean);
            assert_eq!(x.post.failures, y.post.failures);
        }
    }
}
