//! Extension experiment (beyond the paper's figures): **ungraceful**
//! failures.
//!
//! §3.4 assumes "nodes must notify others before leaving" and §5 names
//! unannounced departures as the common weakness of constant-degree DHTs.
//! This experiment quantifies that weakness: a fraction `p` of the nodes
//! vanish *without* notifications (so even leaf sets and ring successors
//! go stale), and we measure how many lookups still reach the correct
//! owner — before and after one stabilization round.
//!
//! Note that our Viceroy models the paper's idealized always-repaired
//! variant (zero-staleness by construction), so its "before" numbers are
//! an upper bound rather than a measurement of a real Viceroy under
//! crashes.

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::{stream, stream_indexed};
use dht_core::workload::random_pairs;
use rand::Rng;

use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay, OverlayKind};

/// Parameters of the ungraceful-failure experiment.
#[derive(Debug, Clone)]
pub struct UngracefulParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Starting network size.
    pub nodes: usize,
    /// Crash probabilities to sweep.
    pub probabilities: Vec<f64>,
    /// Lookups per phase (before and after stabilization).
    pub lookups: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl UngracefulParams {
    /// Default scale: mirrors Fig. 11's setup with crashes instead of
    /// graceful departures.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            nodes: 2048,
            probabilities: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            lookups: 10_000,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![
                OverlayKind::Cycloid7,
                OverlayKind::Koorde,
                OverlayKind::Chord,
            ],
            nodes: 512,
            probabilities: vec![0.2, 0.4],
            lookups: 800,
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay at one crash probability.
#[derive(Debug, Clone)]
pub struct UngracefulRow {
    /// Crash probability.
    pub p: f64,
    /// Survivors.
    pub survivors: usize,
    /// Lookup statistics immediately after the crash wave (stale leaf
    /// sets / rings).
    pub before_stabilize: LookupAggregate,
    /// Lookup statistics after one full stabilization round.
    pub after_stabilize: LookupAggregate,
}

/// Runs the sweep; rows ordered by probability then kind.
#[must_use]
pub fn measure(params: &UngracefulParams) -> Vec<UngracefulRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &p in &params.probabilities {
        for &kind in &params.kinds {
            cells.push((idx, kind, p));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<UngracefulRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, p) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut net = build_overlay(kind, params.nodes, params.seed ^ (i as u64) << 56);
                    let mut crash_rng = stream(params.seed, &format!("crash-{p}"));
                    for token in net.node_tokens() {
                        if crash_rng.gen_bool(p) {
                            net.fail(token);
                        }
                    }
                    let survivors = net.len();
                    let mut rng = stream_indexed(params.seed, "ungraceful", i as u64);
                    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
                    let before_stabilize = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    net.stabilize();
                    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
                    let after_stabilize = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    UngracefulRow {
                        p,
                        survivors,
                        before_stabilize,
                        after_stabilize,
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers both phases' lookup metrics plus a survivor-count gauge,
/// keyed `{overlay}/p={p}/{before|after}`.
pub fn register_metrics(rows: &[UngracefulRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let base = format!("{}/p={}", row.before_stabilize.label, row.p);
        super::register_lookup_metrics(reg, &format!("{base}/before"), &row.before_stabilize);
        super::register_lookup_metrics(reg, &format!("{base}/after"), &row.after_stabilize);
        reg.gauge(&format!("{base}.survivors"))
            .set(row.survivors as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilization_restores_every_overlay() {
        let rows = measure(&UngracefulParams::quick(3));
        for row in &rows {
            assert_eq!(
                row.after_stabilize.failures, 0,
                "{} at p={} must fully recover after stabilization",
                row.after_stabilize.label, row.p
            );
            assert_eq!(row.after_stabilize.timeouts.max, 0.0);
        }
    }

    #[test]
    fn crashes_hurt_more_than_graceful_departures() {
        // The §5 weakness: without leave notifications, some lookups go
        // wrong before stabilization at heavy crash rates.
        let rows = measure(&UngracefulParams::quick(5));
        let total_failures: usize = rows
            .iter()
            .filter(|r| r.p >= 0.4)
            .map(|r| r.before_stabilize.failures)
            .sum();
        assert!(
            total_failures > 0,
            "heavy unannounced crashes must break some lookups pre-stabilization"
        );
    }

    #[test]
    fn survivors_match_crash_rate() {
        let rows = measure(&UngracefulParams::quick(7));
        for row in &rows {
            let expected = 512.0 * (1.0 - row.p);
            assert!((row.survivors as f64 - expected).abs() < 70.0);
        }
    }
}
