//! Loss-rate sweep: lookup success, retries, and latency under message
//! loss.
//!
//! The paper's churn evaluation (§4.3–4.4) counts only *node*-level
//! failures; this extension subjects every overlay to a deterministic
//! unreliable network (see [`dht_core::net`]): each per-hop contact is
//! lost with probability `loss`, retried under an exponential-backoff
//! [`RetryPolicy`], delayed by a seeded RTT draw, and occasionally
//! duplicated. The sweep compares all overlay kinds at loss rates from
//! 0 to 20%, reporting success rate, retry percentiles, and simulated
//! end-to-end latency.

use crossbeam::thread;
use dht_core::audit::{AuditReport, AuditScope};
use dht_core::net::{DelayModel, FaultPlan, NetConditions, RetryPolicy};
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::workload::random_pairs;

use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay, OverlayKind, ALL_KINDS};

/// Parameters of the fault-tolerance sweep.
#[derive(Debug, Clone)]
pub struct FaultToleranceParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Network size.
    pub nodes: usize,
    /// Per-message loss probabilities to sweep.
    pub losses: Vec<f64>,
    /// Lookups per cell.
    pub lookups: usize,
    /// Retry policy applied at every per-hop contact.
    pub retry: RetryPolicy,
    /// Per-message RTT model (µs).
    pub delay: DelayModel,
    /// Per-delivery duplication probability.
    pub duplicate: f64,
    /// Audit routing state after every cell: faults must never mutate it.
    pub audit: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl FaultToleranceParams {
    /// Full-scale parameters: all 8 kinds, 1024 nodes, loss up to 20%.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: ALL_KINDS.to_vec(),
            nodes: 1024,
            losses: vec![0.0, 0.01, 0.02, 0.05, 0.10, 0.20],
            lookups: 2_000,
            retry: RetryPolicy::standard(),
            delay: DelayModel::Uniform(20_000, 80_000),
            duplicate: 0.01,
            audit: false,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests — same 8 × 6 grid, smaller cells.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            nodes: 128,
            lookups: 200,
            audit: true,
            ..Self::paper(seed)
        }
    }
}

/// One cell: one overlay at one loss rate.
#[derive(Debug, Clone)]
pub struct FaultToleranceRow {
    /// Overlay display name.
    pub label: String,
    /// Per-message loss probability of this cell.
    pub loss: f64,
    /// Aggregated lookup statistics (path, retries, latency, failures).
    pub agg: LookupAggregate,
    /// Post-run routing-state audit, when requested — must stay clean:
    /// message faults never touch routing tables.
    pub audit: Option<AuditReport>,
}

impl FaultToleranceRow {
    /// Fraction of lookups that resolved at the key's owner.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.agg.path.n == 0 {
            return 1.0;
        }
        1.0 - self.agg.failures as f64 / self.agg.path.n as f64
    }
}

/// Runs the sweep; rows ordered by loss rate then kind.
#[must_use]
pub fn measure(params: &FaultToleranceParams) -> Vec<FaultToleranceRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &loss in &params.losses {
        for &kind in &params.kinds {
            cells.push((idx, kind, loss));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<FaultToleranceRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, loss) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    // Same seed across the loss sweep for one kind: every
                    // cell of a row sees the same network and workload, so
                    // differences are attributable to loss alone.
                    let kind_seed = params.seed ^ u64::from(kind as u8) << 40;
                    let mut net = build_overlay(kind, params.nodes, kind_seed);
                    let mut rng = stream_indexed(kind_seed, "fault-load", 0);
                    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
                    let plan = FaultPlan {
                        seed: params.seed ^ (i as u64),
                        loss,
                        delay: params.delay,
                        duplicate: params.duplicate,
                    };
                    net.set_net_conditions(NetConditions::new(plan, params.retry));
                    let agg = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    let audit = params.audit.then(|| net.audit_state(AuditScope::Full));
                    FaultToleranceRow {
                        label: net.name(),
                        loss,
                        agg,
                        audit,
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's lookup metrics plus a success-rate gauge, keyed
/// `{overlay}/loss={p}`.
pub fn register_metrics(rows: &[FaultToleranceRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/loss={}", row.label, row.loss);
        super::register_lookup_metrics(reg, &prefix, &row.agg);
        reg.gauge(&format!("{prefix}.success_rate"))
            .set(row.success_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> FaultToleranceParams {
        FaultToleranceParams {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Chord],
            nodes: 64,
            losses: vec![0.0, 0.10],
            lookups: 100,
            audit: true,
            ..FaultToleranceParams::paper(seed)
        }
    }

    #[test]
    fn sweep_fills_the_grid_and_stays_audit_clean() {
        let rows = measure(&tiny(2004));
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.agg.path.n, 100);
            let audit = row.audit.as_ref().expect("audit requested");
            assert!(audit.is_clean(), "{}: {audit}", row.label);
        }
    }

    #[test]
    fn zero_loss_cells_are_free_and_lossy_cells_are_billed() {
        let rows = measure(&tiny(7));
        for row in &rows {
            if row.loss == 0.0 {
                assert_eq!(row.agg.retries.max, 0.0, "{}", row.label);
                assert_eq!((row.success_rate() - 1.0).abs(), 0.0, "{}", row.label);
            } else {
                assert!(row.agg.retries.mean > 0.0, "{}", row.label);
            }
            assert!(row.agg.latency_ms.mean > 0.0, "delay model always bills");
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = measure(&tiny(11));
        let b = measure(&tiny(11));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.agg.path, y.agg.path);
            assert_eq!(x.agg.retries, y.agg.retries);
            assert_eq!(x.agg.latency_ms, y.agg.latency_ms);
        }
    }
}
