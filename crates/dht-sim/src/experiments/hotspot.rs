//! Extension experiment: hot spots under skewed (Zipf) key popularity.
//!
//! §2 lists among the structured DHTs' disadvantages that "hot-spots are
//! generated for too frequently accessed files". This experiment
//! quantifies it: the same lookup volume is issued once with uniformly
//! random keys and once with Zipf(1.0)-popular keys from a fixed
//! catalogue, and the per-node query-load distributions are compared.
//! The skew concentrates load both on the hot keys' owners and on the
//! routing paths converging towards them.

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::stats::Summary;
use dht_core::workload::{random_pairs, zipf_pairs, ZipfKeys};

use crate::factory::{build_overlay, OverlayKind};

/// Parameters of the hot-spot experiment.
#[derive(Debug, Clone)]
pub struct HotspotParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Network size.
    pub nodes: usize,
    /// Catalogue size (distinct objects).
    pub catalogue: usize,
    /// Zipf exponent for the skewed run.
    pub exponent: f64,
    /// Lookups per run.
    pub lookups: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl HotspotParams {
    /// Default scale.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            nodes: 2048,
            catalogue: 10_000,
            exponent: 1.0,
            lookups: 50_000,
            seed,
            jobs: 1,
        }
    }

    /// Reduced scale for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Chord],
            nodes: 256,
            catalogue: 2_000,
            exponent: 1.0,
            lookups: 5_000,
            seed,
            jobs: 1,
        }
    }
}

/// One row: query-load distributions under both workloads for one overlay.
#[derive(Debug, Clone)]
pub struct HotspotRow {
    /// Overlay display name.
    pub label: String,
    /// Per-node query load with uniformly random keys.
    pub uniform: Summary,
    /// Per-node query load with Zipf-popular keys.
    pub zipf: Summary,
}

impl HotspotRow {
    /// How much the skewed workload inflates the hottest nodes:
    /// `zipf.max / uniform.max`.
    #[must_use]
    pub fn amplification(&self) -> f64 {
        if self.uniform.max == 0.0 {
            0.0
        } else {
            self.zipf.max / self.uniform.max
        }
    }
}

/// Runs both workloads for each overlay.
#[must_use]
pub fn measure(params: &HotspotParams) -> Vec<HotspotRow> {
    let mut rows: Vec<Option<HotspotRow>> = vec![None; params.kinds.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &kind) in params.kinds.iter().enumerate() {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut net = build_overlay(kind, params.nodes, params.seed ^ (i as u64) << 12);
                    let mut rng = stream_indexed(params.seed, "hotspot", i as u64);
                    // Uniform pass.
                    net.reset_query_loads();
                    let reqs: Vec<_> = random_pairs(net.as_ref(), params.lookups, &mut rng)
                        .iter()
                        .map(|r| (r.src, r.raw_key))
                        .collect();
                    let _ = net.lookup_batch(&reqs, params.jobs);
                    let uniform = Summary::of_counts(&net.query_loads());
                    // Zipf pass over a fixed catalogue.
                    net.reset_query_loads();
                    let catalogue = ZipfKeys::new(params.catalogue, params.exponent, &mut rng);
                    let reqs: Vec<_> =
                        zipf_pairs(net.as_ref(), &catalogue, params.lookups, &mut rng)
                            .iter()
                            .map(|r| (r.src, r.raw_key))
                            .collect();
                    let _ = net.lookup_batch(&reqs, params.jobs);
                    let zipf = Summary::of_counts(&net.query_loads());
                    HotspotRow {
                        label: net.name(),
                        uniform,
                        zipf,
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers both workloads' query-load distributions and the hot-spot
/// amplification factor, keyed `{overlay}.{uniform|zipf}`.
pub fn register_metrics(rows: &[HotspotRow], reg: &mut MetricsRegistry) {
    for row in rows {
        super::register_summary_gauges(reg, &format!("{}.uniform", row.label), &row.uniform);
        super::register_summary_gauges(reg, &format!("{}.zipf", row.label), &row.zipf);
        reg.gauge(&format!("{}.amplification", row.label))
            .set(row.amplification());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skew_inflates_the_hottest_node() {
        let rows = measure(&HotspotParams::quick(3));
        for r in &rows {
            assert!(
                r.zipf.max > r.uniform.max,
                "{}: zipf max {} should exceed uniform max {}",
                r.label,
                r.zipf.max,
                r.uniform.max
            );
            assert!(r.amplification() > 1.0);
            // Means stay comparable: the volume is the same, only its
            // distribution changes.
            assert!((r.zipf.mean - r.uniform.mean).abs() < r.uniform.mean * 0.5);
        }
    }
}
