//! Figures 8 and 9: key distribution over the nodes.
//!
//! §4.2: "we simulated different DHT networks of 2000 nodes each. We
//! varied the total number of keys to be distributed from 10^4 to 10^5 in
//! increments of 10^4... Assume the network ID space is of 2048 nodes."
//! Fig. 9 repeats the measurement with only 1000 participants (a sparse
//! population of the same 2048-slot space).

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::overlay::key_counts;
use dht_core::rng::stream;
use dht_core::stats::Summary;
use dht_core::workload::key_population;

use crate::factory::{build_overlay_spaced, OverlayKind};

/// Parameters of a key-distribution experiment.
#[derive(Debug, Clone)]
pub struct KeyDistributionParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Number of participating nodes (2000 for Fig. 8, 1000 for Fig. 9).
    pub nodes: usize,
    /// Identifier-space capacity ("the network ID space is of 2048
    /// nodes", §4.2).
    pub id_space: usize,
    /// Key-population sizes to sweep.
    pub key_counts: Vec<usize>,
    /// Master seed.
    pub seed: u64,
}

impl KeyDistributionParams {
    /// Fig. 8 paper parameters (dense population: 2000 of 2048 slots).
    #[must_use]
    pub fn fig8(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            nodes: 2000,
            id_space: 2048,
            key_counts: (1..=10).map(|i| i * 10_000).collect(),
            seed,
        }
    }

    /// Fig. 9 paper parameters (sparse population: 1000 of 2048 slots).
    #[must_use]
    pub fn fig9(seed: u64) -> Self {
        Self {
            nodes: 1000,
            ..Self::fig8(seed)
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![
                OverlayKind::Cycloid7,
                OverlayKind::Viceroy,
                OverlayKind::Koorde,
            ],
            nodes: 200,
            id_space: 512,
            key_counts: vec![5_000, 10_000],
            seed,
        }
    }
}

/// One row: one overlay at one key-population size.
#[derive(Debug, Clone)]
pub struct KeyDistributionRow {
    /// Overlay display name.
    pub label: String,
    /// Number of keys distributed.
    pub keys: usize,
    /// Distribution of keys-per-node (the paper plots mean, 1st and 99th
    /// percentiles).
    pub per_node: Summary,
}

/// Runs the sweep; rows ordered by key count then kind.
#[must_use]
pub fn measure(params: &KeyDistributionParams) -> Vec<KeyDistributionRow> {
    // One overlay per kind (the same network serves every key count).
    let mut rows = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &kind) in params.kinds.iter().enumerate() {
            let params = &params;
            handles.push(scope.spawn(move |_| {
                let net = build_overlay_spaced(
                    kind,
                    params.nodes,
                    params.id_space,
                    params.seed ^ (i as u64) << 16,
                );
                let mut out = Vec::new();
                for &count in &params.key_counts {
                    let keys = key_population(count, &mut stream(params.seed, "keys"));
                    let counts = key_counts(net.as_ref(), &keys);
                    out.push(KeyDistributionRow {
                        label: net.name(),
                        keys: count,
                        per_node: Summary::of_counts(&counts),
                    });
                }
                out
            }));
        }
        let per_kind: Vec<Vec<KeyDistributionRow>> = handles
            .into_iter()
            .map(|h| h.join().expect("measurement thread panicked"))
            .collect();
        for count_idx in 0..params.key_counts.len() {
            for kind_rows in &per_kind {
                rows.push(kind_rows[count_idx].clone());
            }
        }
    })
    .expect("thread scope failed");
    rows
}

/// Registers every row's keys-per-node distribution, keyed
/// `{overlay}/keys={count}.keys_per_node`.
pub fn register_metrics(rows: &[KeyDistributionRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/keys={}.keys_per_node", row.label, row.keys);
        super::register_summary_gauges(reg, &prefix, &row.per_node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes() {
        let rows = measure(&KeyDistributionParams::quick(7));
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(row.per_node.n, 200);
            let total_keys = row.per_node.mean * 200.0;
            assert!((total_keys - row.keys as f64).abs() < 1.0, "keys conserved");
        }
    }

    #[test]
    fn viceroy_is_less_balanced_than_cycloid() {
        // Fig. 8's shape: Viceroy's 99th percentile is far above Cycloid's.
        let rows = measure(&KeyDistributionParams::quick(11));
        let cyc = rows
            .iter()
            .find(|r| r.label == "Cycloid(7)" && r.keys == 10_000)
            .unwrap();
        let vic = rows
            .iter()
            .find(|r| r.label == "Viceroy" && r.keys == 10_000)
            .unwrap();
        assert!(
            vic.per_node.p99 > cyc.per_node.p99,
            "Viceroy p99 {} should exceed Cycloid p99 {}",
            vic.per_node.p99,
            cyc.per_node.p99
        );
    }
}
