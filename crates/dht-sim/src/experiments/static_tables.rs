//! Tables 1–3: the paper's static characterization tables, regenerated
//! from the implementations themselves rather than transcribed.

use cycloid::{CycloidConfig, CycloidId, CycloidNetwork};
use dht_core::obs::MetricsRegistry;

/// One row of Table 1 (architectural comparison of representative DHTs).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System name.
    pub system: &'static str,
    /// Base network / graph emulated.
    pub base: &'static str,
    /// Lookup complexity.
    pub lookup: &'static str,
    /// Routing-table size.
    pub table_size: String,
}

/// Regenerates Table 1. The constant-degree rows report the degree bound
/// measured from the live implementations; the `O(...)` rows are the
/// asymptotic entries the paper lists.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    use crate::factory::{build_overlay, OverlayKind};
    let degree = |kind: OverlayKind| {
        build_overlay(kind, 64, 1)
            .degree_bound()
            .map_or("O(log n)".to_string(), |d| d.to_string())
    };
    vec![
        Table1Row {
            system: "Chord",
            base: "Cycle",
            lookup: "O(log n)",
            table_size: degree(OverlayKind::Chord),
        },
        Table1Row {
            system: "CAN",
            base: "Mesh",
            lookup: "O(d n^(1/d))",
            table_size: "O(d)".to_string(),
        },
        Table1Row {
            system: "Pastry/Tapestry",
            base: "Hypercube",
            lookup: "O(log n)",
            table_size: "O(|L|)+O(|M|)+O(log n)".to_string(),
        },
        Table1Row {
            system: "Viceroy",
            base: "Butterfly",
            lookup: "O(log n)",
            table_size: degree(OverlayKind::Viceroy),
        },
        Table1Row {
            system: "Koorde",
            base: "de Bruijn",
            lookup: "O(log n)",
            table_size: degree(OverlayKind::Koorde),
        },
        Table1Row {
            system: "Cycloid",
            base: "CCC",
            lookup: "O(d)",
            table_size: degree(OverlayKind::Cycloid7),
        },
    ]
}

/// One entry of Table 2 (routing state of node (4, 10110110) in a complete
/// eight-dimensional Cycloid).
#[derive(Debug, Clone)]
pub struct Table2Entry {
    /// Entry name as the paper lists it.
    pub entry: &'static str,
    /// The resolved neighbour, formatted `(k, binary)`.
    pub value: String,
}

/// Regenerates Table 2 from a live complete 8-dimensional network.
#[must_use]
pub fn table2() -> Vec<Table2Entry> {
    let net = CycloidNetwork::complete(CycloidConfig::seven_entry(8));
    let node = CycloidId::new(4, 0b1011_0110);
    let state = net.node(node).expect("node exists in complete network");
    let fmt = |id: CycloidId| format!("({},{:08b})", id.cyclic, id.cubical);
    let fmt_opt = |id: Option<CycloidId>| id.map_or("-".to_string(), fmt);
    vec![
        Table2Entry {
            entry: "node",
            value: fmt(node),
        },
        Table2Entry {
            entry: "cubical neighbor",
            value: fmt_opt(state.cubical_neighbor),
        },
        Table2Entry {
            entry: "cyclic neighbor (larger)",
            value: fmt_opt(state.cyclic_larger),
        },
        Table2Entry {
            entry: "cyclic neighbor (smaller)",
            value: fmt_opt(state.cyclic_smaller),
        },
        Table2Entry {
            entry: "inside leaf set (pred)",
            value: fmt(state.inside_left[0]),
        },
        Table2Entry {
            entry: "inside leaf set (succ)",
            value: fmt(state.inside_right[0]),
        },
        Table2Entry {
            entry: "outside leaf set (preceding primary)",
            value: fmt(state.outside_left[0]),
        },
        Table2Entry {
            entry: "outside leaf set (succeeding primary)",
            value: fmt(state.outside_right[0]),
        },
    ]
}

/// One row of Table 3 (node identification and key assignment).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Property name.
    pub property: &'static str,
    /// Cycloid's value.
    pub cycloid: &'static str,
    /// Viceroy's value.
    pub viceroy: &'static str,
    /// Koorde's value.
    pub koorde: &'static str,
}

/// Regenerates Table 3 (a characterization table; values are definitional).
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    vec![
        Table3Row {
            property: "Base network",
            cycloid: "CCC",
            viceroy: "Butterfly",
            koorde: "de Bruijn",
        },
        Table3Row {
            property: "ID space",
            cycloid: "([0,d), [0,d*2^d))",
            viceroy: "([0,3 log n), [0,1))",
            koorde: "[0,2^d)",
        },
        Table3Row {
            property: "Node identity",
            cycloid: "(k, a_{d-1}..a_0), k static",
            viceroy: "(level, id), level dynamic",
            koorde: "id",
        },
        Table3Row {
            property: "Key placement",
            cycloid: "Numerically closest node",
            viceroy: "Successor",
            koorde: "Successor",
        },
    ]
}

/// Registers Table 1's measured degree bounds: one
/// `table1.{system}.degree` gauge per system whose routing-table size the
/// live implementation bounds by a constant (the `O(...)` rows have no
/// numeric value to export).
pub fn register_metrics(reg: &mut MetricsRegistry) {
    for row in table1() {
        if let Ok(d) = row.table_size.parse::<f64>() {
            reg.gauge(&format!("table1.{}.degree", row.system)).set(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constant_degree_entries() {
        let rows = table1();
        let by_name = |n: &str| rows.iter().find(|r| r.system == n).unwrap().clone();
        assert_eq!(by_name("Cycloid").table_size, "7");
        assert_eq!(by_name("Koorde").table_size, "7");
        assert_eq!(by_name("Viceroy").table_size, "7");
        assert_eq!(by_name("Chord").table_size, "O(log n)");
        assert_eq!(by_name("Cycloid").lookup, "O(d)");
    }

    #[test]
    fn table2_matches_paper() {
        let entries = table2();
        let by = |n: &str| entries.iter().find(|e| e.entry == n).unwrap().value.clone();
        // Paper Table 2: cubical neighbour (3, 1010xxxx) — check the fixed
        // prefix; cyclic neighbours (3, 10110111) and (3, 10110101);
        // inside leaf set (3, 10110110) and (5, 10110110); outside leaf
        // set (7, 10110101) and (7, 10110111).
        assert!(by("cubical neighbor").starts_with("(3,1010"));
        assert_eq!(by("cyclic neighbor (larger)"), "(3,10110111)");
        assert_eq!(by("cyclic neighbor (smaller)"), "(3,10110101)");
        assert_eq!(by("inside leaf set (pred)"), "(3,10110110)");
        assert_eq!(by("inside leaf set (succ)"), "(5,10110110)");
        assert_eq!(by("outside leaf set (preceding primary)"), "(7,10110101)");
        assert_eq!(by("outside leaf set (succeeding primary)"), "(7,10110111)");
    }

    #[test]
    fn table3_has_four_properties() {
        assert_eq!(table3().len(), 4);
    }
}
