//! Large-population scale sweep (extension).
//!
//! The paper evaluates networks of at most 2048 nodes (§4.1); this
//! experiment pushes the same eight overlays to 10⁴–10⁶ nodes to measure
//! what the compact membership store ([`dht_core::store::CompactStore`])
//! buys at scale:
//!
//! * **bytes/node** — per-overlay memory footprint via
//!   [`Overlay::state_bytes`](dht_core::overlay::Overlay::state_bytes) / [`Overlay::bytes_per_node`](dht_core::overlay::Overlay::bytes_per_node) (the dense
//!   token array, the inline routing slots, and each overlay's auxiliary
//!   indexes), deterministic for a given build;
//! * **lookups/sec** — wall-clock routing throughput of a uniform random
//!   workload through [`run_requests_jobs`];
//! * **join latency** — wall-clock cost of one graceful join followed by
//!   the joined node's own stabilization routine (the incremental
//!   per-node scheduling unit the churn engine fires from its bucket
//!   index, instead of a full O(n) round).
//!
//! Wall-clock figures are exported through the metrics registry
//! (`BENCH_scale.json`) and stderr progress lines only; the stdout table
//! carries just the run-invariant columns so `repro scale --jobs 1` and
//! `--jobs 4` produce byte-identical stdout (the CI determinism check).

use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::stats::Summary;
use dht_core::workload::random_pairs;

use crate::experiments::{register_lookup_metrics, run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay_spaced, OverlayKind, ALL_KINDS};

/// Parameters of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Overlays to measure (all eight factory kinds by default).
    pub kinds: Vec<OverlayKind>,
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Lookups per cell.
    pub lookups: usize,
    /// Timed graceful joins per cell (the identifier space is sized to
    /// hold `n + joins` so every join has room).
    pub joins: usize,
    /// Worker-thread cap for the lookup batch.
    pub jobs: usize,
    /// Master seed.
    pub seed: u64,
}

impl ScaleParams {
    /// Full-scale parameters: n ∈ {10k, 100k, 1M} across all 8 kinds.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: ALL_KINDS.to_vec(),
            sizes: vec![10_000, 100_000, 1_000_000],
            lookups: 5_000,
            joins: 64,
            jobs: 1,
            seed,
        }
    }

    /// Reduced workload for smoke tests and CI: the 10k point only.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            sizes: vec![10_000],
            lookups: 1_000,
            joins: 16,
            ..Self::paper(seed)
        }
    }
}

/// One row: one overlay at one population.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Overlay display label (unique per kind, including ablations).
    pub label: String,
    /// Population when measured.
    pub n: usize,
    /// Wall-clock build time, µs.
    pub build_us: u64,
    /// Total routing-state bytes ([`Overlay::state_bytes`](dht_core::overlay::Overlay::state_bytes)).
    pub state_bytes: usize,
    /// [`Overlay::bytes_per_node`](dht_core::overlay::Overlay::bytes_per_node) at population `n`.
    pub bytes_per_node: f64,
    /// Wall-clock µs of each timed join+stabilize.
    pub join_us: Summary,
    /// The lookup batch (path lengths, failures, wall clock).
    pub agg: LookupAggregate,
}

impl ScaleRow {
    /// Measured lookup throughput, lookups per wall-clock second.
    #[must_use]
    pub fn lookups_per_sec(&self) -> f64 {
        self.agg.lookups_per_sec()
    }
}

/// Runs the sweep; rows ordered by size then kind. Cells run strictly
/// one at a time and each overlay is dropped before the next is built,
/// so peak memory is a single million-node network, and wall-clock
/// throughput is never skewed by sibling cells.
#[must_use]
pub fn measure(params: &ScaleParams) -> Vec<ScaleRow> {
    measure_with(params, |_| {})
}

/// [`measure`] with a per-row callback (the `repro` binary streams
/// wall-clock summaries to stderr as cells finish).
#[must_use]
pub fn measure_with(params: &ScaleParams, mut on_row: impl FnMut(&ScaleRow)) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    let mut cell = 0u64;
    for &n in &params.sizes {
        for &kind in &params.kinds {
            let mut rng = stream_indexed(params.seed, "scale", cell);
            let build_seed = params.seed ^ (cell << 32);
            let started = std::time::Instant::now();
            let mut net = build_overlay_spaced(kind, n, n + params.joins, build_seed);
            let build_us = started.elapsed().as_micros() as u64;

            // Timed joins: one graceful join plus the joined node's own
            // stabilization routine per sample — the per-node repair
            // unit, not a full round.
            let mut join_us = Vec::with_capacity(params.joins);
            for _ in 0..params.joins {
                let started = std::time::Instant::now();
                if let Some(token) = net.join(&mut rng) {
                    net.stabilize_node(token);
                    join_us.push(started.elapsed().as_micros() as u64);
                }
            }

            let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
            let agg = run_requests_jobs(net.as_mut(), &reqs, params.jobs.max(1));

            let state_bytes = net.state_bytes();
            let row = ScaleRow {
                label: kind.label().to_string(),
                n: net.len(),
                build_us,
                state_bytes,
                bytes_per_node: net.bytes_per_node(),
                join_us: Summary::of_counts(&join_us),
                agg,
            };
            on_row(&row);
            rows.push(row);
            cell += 1;
        }
    }
    rows
}

/// Registers every row's scale metrics, keyed `{overlay}/n={size}`: the
/// deterministic memory gauges, the wall-clock build timer and join
/// latency gauges, the throughput gauge, and the shared lookup-batch
/// export.
pub fn register_metrics(rows: &[ScaleRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/n={}", row.label, row.n);
        reg.counter(&format!("{prefix}.nodes")).add(row.n as u64);
        reg.gauge(&format!("{prefix}.state_bytes"))
            .set(row.state_bytes as f64);
        reg.gauge(&format!("{prefix}.bytes_per_node"))
            .set(row.bytes_per_node);
        reg.timer(&format!("{prefix}.build_wall"))
            .record_us(row.build_us);
        // The "wall" infix marks these as wall-clock measurements so the
        // bench-diff regression gate knows to skip them.
        reg.gauge(&format!("{prefix}.join_wall_us_mean"))
            .set(row.join_us.mean);
        reg.gauge(&format!("{prefix}.join_wall_us_p99"))
            .set(row.join_us.p99);
        register_lookup_metrics(reg, &prefix, &row.agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ScaleParams {
        ScaleParams {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Chord],
            sizes: vec![128, 512],
            lookups: 200,
            joins: 8,
            jobs: 1,
            seed: 5,
        }
    }

    #[test]
    fn sweep_measures_every_cell() {
        let rows = measure(&tiny_params());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.n >= 128, "{}: population grew by the joins", row.label);
            assert!(row.state_bytes > 0, "{}: bytes accounted", row.label);
            assert!(row.bytes_per_node > 0.0);
            assert_eq!(row.agg.path.n, 200);
            assert_eq!(row.agg.failures, 0, "{}: stabilized overlay", row.label);
            assert_eq!(row.join_us.n, 8, "{}: every join succeeded", row.label);
            assert!(row.lookups_per_sec() > 0.0);
        }
    }

    #[test]
    fn deterministic_columns_are_jobs_invariant() {
        // Everything the stdout table prints must be identical across
        // worker counts (the CI diff contract).
        let mut p1 = tiny_params();
        p1.sizes = vec![256];
        let mut p4 = p1.clone();
        p4.jobs = 4;
        let (a, b) = (measure(&p1), measure(&p4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.n, y.n);
            assert_eq!(x.state_bytes, y.state_bytes);
            assert_eq!(x.bytes_per_node, y.bytes_per_node);
            assert_eq!(x.agg.path, y.agg.path);
            assert_eq!(x.agg.failures, y.agg.failures);
        }
    }

    #[test]
    fn metrics_export_scale_gauges() {
        use dht_core::obs::Metric;
        let mut params = tiny_params();
        params.kinds = vec![OverlayKind::Koorde];
        params.sizes = vec![128];
        let rows = measure(&params);
        let mut reg = MetricsRegistry::new();
        register_metrics(&rows, &mut reg);
        let n = rows[0].n;
        match reg.get(&format!("Koorde/n={n}.bytes_per_node")) {
            Some(Metric::Gauge(g)) => assert!(g.get() > 0.0),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(reg.get(&format!("Koorde/n={n}.lookups_per_sec")).is_some());
        assert!(reg.get(&format!("Koorde/n={n}.join_wall_us_mean")).is_some());
    }
}
