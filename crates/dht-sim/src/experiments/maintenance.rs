//! Extension experiment: maintenance burden, the fifth of the primary DHT
//! measures the paper lists (§4: "degree, hop count, load balance, fault
//! tolerance, and **maintenance overhead**") but never quantifies.
//!
//! We measure each node's **in-degree**: how many other nodes hold a
//! pointer to it. When the node departs, exactly those pointers dangle —
//! so the in-degree distribution is the repair bill a departure presents,
//! whether it is paid eagerly (Viceroy notifies everyone: §4.3's "a
//! leaving node would induce O(log n) hops and require O(1) nodes to
//! change their states... a large amount of overhead") or lazily
//! (Cycloid/Koorde/Chord leave it to stabilization and absorb timeouts).

use chord::{ChordConfig, ChordNetwork};
use cycloid::{CycloidConfig, CycloidNetwork};
use dht_core::obs::MetricsRegistry;
use dht_core::stats::Summary;
use koorde::{KoordeConfig, KoordeNetwork};
use pastry::{PastryConfig, PastryNetwork};
use std::collections::HashMap;
use viceroy::{ViceroyConfig, ViceroyNetwork};

use crate::factory::{cycloid_dim_for, ring_bits_for};

/// Parameters of the maintenance experiment.
#[derive(Debug, Clone)]
pub struct MaintenanceParams {
    /// Network size.
    pub nodes: usize,
    /// Master seed.
    pub seed: u64,
}

impl MaintenanceParams {
    /// Default scale.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self { nodes: 2048, seed }
    }

    /// Reduced scale for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self { nodes: 256, seed }
    }
}

/// One row: in-degree statistics for one overlay.
#[derive(Debug, Clone)]
pub struct MaintenanceRow {
    /// Overlay display name.
    pub label: String,
    /// Network size measured.
    pub n: usize,
    /// Out-degree distribution (the routing-state size per node).
    pub out_degree: Summary,
    /// In-degree distribution (pointers dangling if the node departs).
    pub in_degree: Summary,
}

fn summarize(label: &str, n: usize, edges: &[(u64, u64)]) -> MaintenanceRow {
    let mut out: HashMap<u64, u64> = HashMap::new();
    let mut inc: HashMap<u64, u64> = HashMap::new();
    for &(from, to) in edges {
        if from != to {
            *out.entry(from).or_default() += 1;
            *inc.entry(to).or_default() += 1;
        }
    }
    let collect = |m: &HashMap<u64, u64>, nodes: &[u64]| -> Vec<u64> {
        nodes
            .iter()
            .map(|t| m.get(t).copied().unwrap_or(0))
            .collect()
    };
    let nodes: Vec<u64> = {
        let mut all: Vec<u64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        all.sort_unstable();
        all.dedup();
        all
    };
    MaintenanceRow {
        label: label.to_string(),
        n,
        out_degree: Summary::of_counts(&collect(&out, &nodes)),
        in_degree: Summary::of_counts(&collect(&inc, &nodes)),
    }
}

/// Measures in/out-degree distributions for every overlay at the given
/// size. Edges are deduplicated per (holder, target) pair.
#[must_use]
pub fn measure(params: &MaintenanceParams) -> Vec<MaintenanceRow> {
    let n = params.nodes;
    let seed = params.seed;
    let mut rows = Vec::new();

    // Cycloid(7): each node's known contacts.
    {
        let net =
            CycloidNetwork::with_nodes(CycloidConfig::seven_entry(cycloid_dim_for(n)), n, seed);
        let dim = net.dim();
        let mut edges = Vec::new();
        for id in net.ids() {
            for c in net.node(id).unwrap().known_contacts() {
                edges.push((id.linear(dim), c.linear(dim)));
            }
        }
        rows.push(summarize("Cycloid(7)", n, &edges));
    }

    // Viceroy: the seven lazily resolved links per node.
    {
        let net = ViceroyNetwork::with_nodes(ViceroyConfig::new(), n, seed);
        let mut edges = Vec::new();
        for id in net.ids() {
            let links = [
                net.succ_link(id),
                net.pred_link(id),
                net.level_next_link(id),
                net.level_prev_link(id),
                net.up_link(id),
                net.down_left_link(id),
                net.down_right_link(id),
            ];
            let mut seen = Vec::new();
            for l in links.into_iter().flatten() {
                if !seen.contains(&l) {
                    seen.push(l);
                    edges.push((id, l));
                }
            }
        }
        rows.push(summarize("Viceroy", n, &edges));
    }

    // Koorde: successors + de Bruijn pointer + backups.
    {
        let net = KoordeNetwork::with_nodes(KoordeConfig::new(ring_bits_for(n)), n, seed);
        let mut edges = Vec::new();
        for id in net.ids() {
            let node = net.node(id).unwrap();
            let mut seen = Vec::new();
            for c in node
                .successors
                .iter()
                .copied()
                .chain([node.debruijn, node.predecessor])
                .chain(node.debruijn_preds.iter().copied())
            {
                if !seen.contains(&c) {
                    seen.push(c);
                    edges.push((id, c));
                }
            }
        }
        rows.push(summarize("Koorde", n, &edges));
    }

    // Chord: fingers + successors + predecessor.
    {
        let net = ChordNetwork::with_nodes(ChordConfig::new(ring_bits_for(n)), n, seed);
        let mut edges = Vec::new();
        for id in net.ids() {
            let node = net.node(id).unwrap();
            let mut seen = Vec::new();
            for c in node
                .fingers
                .iter()
                .chain(&node.successors)
                .copied()
                .chain([node.predecessor])
            {
                if !seen.contains(&c) {
                    seen.push(c);
                    edges.push((id, c));
                }
            }
        }
        rows.push(summarize("Chord", n, &edges));
    }

    // Pastry: routing table + leaf set.
    {
        let bits = ring_bits_for(n).div_ceil(2) * 2;
        let net = PastryNetwork::with_nodes(PastryConfig::new(bits), n, seed);
        let mut edges = Vec::new();
        for id in net.ids() {
            let node = net.node(id).unwrap();
            let mut seen = Vec::new();
            for c in node.table.iter().flatten().copied().chain(node.leafs()) {
                if !seen.contains(&c) {
                    seen.push(c);
                    edges.push((id, c));
                }
            }
        }
        rows.push(summarize("Pastry", n, &edges));
    }

    rows
}

/// Registers every row's in/out-degree distributions, keyed
/// `{overlay}/n={n}.{in_degree|out_degree}`.
pub fn register_metrics(rows: &[MaintenanceRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/n={}", row.label, row.n);
        crate::experiments::register_summary_gauges(
            reg,
            &format!("{prefix}.out_degree"),
            &row.out_degree,
        );
        crate::experiments::register_summary_gauges(
            reg,
            &format!("{prefix}.in_degree"),
            &row.in_degree,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_degree_dhts_have_constant_out_degree() {
        let rows = measure(&MaintenanceParams::quick(3));
        let by = |l: &str| rows.iter().find(|r| r.label == l).unwrap().clone();
        assert!(by("Cycloid(7)").out_degree.max <= 7.0);
        assert!(by("Koorde").out_degree.max <= 8.0); // 7 + predecessor
        assert!(by("Viceroy").out_degree.max <= 7.0);
        // Chord/Pastry grow with n.
        assert!(by("Chord").out_degree.mean > 8.0);
        assert!(by("Pastry").out_degree.mean > 8.0);
    }

    #[test]
    fn in_degree_mean_equals_out_degree_mean() {
        // Every edge has one holder and one target, so the means agree.
        let rows = measure(&MaintenanceParams::quick(5));
        for r in &rows {
            assert!(
                (r.in_degree.mean - r.out_degree.mean).abs() < 1e-9,
                "{}: {} vs {}",
                r.label,
                r.in_degree.mean,
                r.out_degree.mean
            );
        }
    }

    #[test]
    fn in_degree_tails_tell_the_maintenance_story() {
        // The repair bill a departure presents: the constant-degree DHTs
        // keep even the 99th-percentile fan-in small (Cycloid's tail is
        // its cycle primaries, referenced by the adjacent cycles' outside
        // leaf sets — still O(d)), while Pastry's numerically-closest
        // entry selection concentrates references heavily.
        let rows = measure(&MaintenanceParams::quick(7));
        let by = |l: &str| rows.iter().find(|r| r.label == l).unwrap().clone();
        assert!(by("Cycloid(7)").in_degree.p99 <= 24.0);
        assert!(
            by("Koorde").in_degree.p99 <= 10.0,
            "dense de Bruijn fan-in is flat"
        );
        assert!(
            by("Pastry").in_degree.p99 > 2.0 * by("Cycloid(7)").in_degree.p99,
            "Pastry's fan-in tail dwarfs the constant-degree DHTs'"
        );
    }
}
