//! Stabilization convergence on the virtual clock (extension).
//!
//! The paper asserts that stabilization "handles" churn (§3.3.2, §4.4)
//! but never measures *how long* the network takes to return to a
//! provably consistent state after a membership shock. With the
//! discrete-event kernel ([`dht_core::clock`]) and the online audit
//! ([`dht_core::audit`]) both in place, that question becomes
//! measurable: apply a shock (a mass join, then an ungraceful burst
//! departure), run the per-second stabilization buckets on the virtual
//! clock, and record the first simulated second at which the overlay's
//! **full-scope** audit comes back clean — the *time to stabilize*.
//!
//! The full scope ([`AuditScope::Full`]) is the convergence oracle on
//! purpose: online invariants are kept true by the graceful protocols
//! at every instant (a violation there is a bug, not staleness), so
//! only the full scope — which includes lazily-stabilized state —
//! actually goes dirty after a shock and is then repaired by the
//! stabilizers the experiment is timing.
//!
//! The experiment sweeps the stabilization period `T` (the paper fixes
//! `T = 30 s`) to expose the convergence/maintenance-cost trade-off,
//! and, at the base period, also measures lookup-latency percentiles
//! under churn + message delays with the continuous-time churn engine
//! ([`crate::churn::TimeModel::Continuous`]), where reported latency is
//! virtual-clock elapsed time by construction.

use crossbeam::thread;
use dht_core::audit::AuditScope;
use dht_core::net::{FaultPlan, NetConditions, RetryPolicy};
use dht_core::obs::MetricsRegistry;
use dht_core::overlay::Overlay;
use dht_core::rng::stream_indexed;
use dht_core::stats::percentile_sorted;
use rand::Rng;

use crate::churn::{run_churn, stabilize_bucket, ChurnParams, StabilizePhase, TimeModel};
use crate::event::{EventQueue, SECOND};
use crate::factory::{build_overlay_spaced, OverlayKind};

/// Parameters of the convergence experiment.
#[derive(Debug, Clone)]
pub struct ConvergeParams {
    /// Overlays to measure (all eight factory kinds by default).
    pub kinds: Vec<OverlayKind>,
    /// Starting network size before each shock.
    pub nodes: usize,
    /// Mass join: this fraction of `nodes` new nodes join at once.
    pub join_fraction: f64,
    /// Burst departure: each node vanishes with this probability (2/3
    /// by default), ungracefully ([`Overlay::fail`]), all within one
    /// instant.
    pub leave_fraction: f64,
    /// Stabilization periods `T` (seconds) to sweep.
    pub periods: Vec<u64>,
    /// The period whose cells additionally run the latency-under-load
    /// measurement.
    pub base_period: u64,
    /// Convergence horizon, in multiples of the period: a shock that is
    /// not audit-clean within `horizon_periods * T` seconds is reported
    /// as unconverged.
    pub horizon_periods: u64,
    /// Churn rate for the latency-under-load run (joins and leaves per
    /// second each).
    pub churn_rate: f64,
    /// Measured lookups in the latency-under-load run.
    pub lookups: usize,
    /// Network conditions for the latency-under-load run (message
    /// delays make lookups genuinely span virtual time).
    pub conditions: NetConditions,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap (the continuous engine is single-threaded per
    /// cell; cells themselves fan out across threads).
    pub jobs: usize,
}

impl ConvergeParams {
    /// Paper-scale parameters: 1024-node networks, `T ∈ {10, 30, 60}`.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::ALL_KINDS.to_vec(),
            nodes: 1024,
            join_fraction: 0.5,
            leave_fraction: 2.0 / 3.0,
            periods: vec![10, 30, 60],
            base_period: 30,
            horizon_periods: 6,
            churn_rate: 0.2,
            lookups: 2_000,
            conditions: NetConditions::new(FaultPlan::lossy(11, 0.01), RetryPolicy::standard()),
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests and CI.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: crate::factory::ALL_KINDS.to_vec(),
            nodes: 128,
            join_fraction: 0.5,
            leave_fraction: 2.0 / 3.0,
            periods: vec![10, 30],
            base_period: 10,
            horizon_periods: 6,
            churn_rate: 0.2,
            lookups: 300,
            conditions: NetConditions::new(FaultPlan::lossy(11, 0.01), RetryPolicy::standard()),
            seed,
            jobs: 1,
        }
    }
}

/// Lookup-latency percentiles under churn + delays (continuous engine),
/// measured only at [`ConvergeParams::base_period`].
#[derive(Debug, Clone)]
pub struct LatencyUnderLoad {
    /// Median lookup latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile lookup latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile lookup latency, ms.
    pub p99_ms: f64,
    /// Mean lookup latency, ms.
    pub mean_ms: f64,
    /// Mean stale-entry timeouts per lookup.
    pub timeouts_mean: f64,
    /// Lookups stranded by their holder departing mid-walk.
    pub stranded: usize,
    /// Failed lookups (stranded ones included once measured).
    pub failures: usize,
    /// Virtual time the run spanned, in seconds.
    pub sim_secs: f64,
}

/// One row: one overlay at one stabilization period.
#[derive(Debug, Clone)]
pub struct ConvergeRow {
    /// Overlay display name.
    pub label: String,
    /// Stabilization period `T`, seconds.
    pub period: u64,
    /// Nodes added by the mass join.
    pub join_added: usize,
    /// Simulated seconds until the audit came back clean after the mass
    /// join; `None` if unconverged within the horizon.
    pub join_clean_s: Option<u64>,
    /// Nodes removed by the burst leave.
    pub leave_removed: usize,
    /// Simulated seconds until the audit came back clean after the
    /// burst leave; `None` if unconverged within the horizon.
    pub leave_clean_s: Option<u64>,
    /// Open full-scope audit violations after the mass join, sampled at
    /// every simulated second as `(t_us, violations)` — the convergence
    /// trajectory behind [`ConvergeRow::join_clean_s`].
    pub join_trajectory: Vec<(u64, u64)>,
    /// The burst leave's convergence trajectory.
    pub leave_trajectory: Vec<(u64, u64)>,
    /// Latency percentiles under load (base-period rows only).
    pub load: Option<LatencyUnderLoad>,
}

/// Runs per-second stabilization buckets on the virtual clock until the
/// full-scope audit is clean, and returns the simulated seconds that
/// took — `Some(0)` if the overlay is already clean, `None` if it is
/// still dirty after `max_secs`.
///
/// The audit runs at every second boundary, so convergence time has
/// one-second resolution: the paper's own stabilization granularity.
#[must_use]
pub fn time_to_clean(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    max_secs: u64,
) -> Option<u64> {
    time_to_clean_traced(overlay, phase, period, max_secs).0
}

/// [`time_to_clean`], additionally recording the convergence
/// *trajectory*: the full-scope audit's open-violation count at `t = 0`
/// and after every simulated second's stabilization bucket, as
/// `(t_us, violations)` points in ascending virtual time. The last
/// point is 0 exactly when the shock converged.
#[must_use]
pub fn time_to_clean_traced(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    max_secs: u64,
) -> (Option<u64>, Vec<(u64, u64)>) {
    let period = period.max(1);
    let violations =
        |overlay: &mut dyn Overlay| overlay.audit_state(AuditScope::Full).violations().len() as u64;
    let start = violations(overlay);
    let mut trajectory = vec![(0, start)];
    if start == 0 {
        return (Some(0), trajectory);
    }
    let mut queue: EventQueue<u64> = EventQueue::new();
    queue.schedule(SECOND, 1);
    while let Some((now, sec)) = queue.pop() {
        let bucket = (sec - 1) % period;
        stabilize_bucket(overlay, phase, period, bucket);
        let open = violations(overlay);
        trajectory.push((now, open));
        if open == 0 {
            return (Some(now / SECOND), trajectory);
        }
        if sec >= max_secs {
            return (None, trajectory);
        }
        queue.schedule_in(SECOND, sec + 1);
    }
    (None, trajectory)
}

/// Runs the sweep; rows ordered by period then kind.
#[must_use]
pub fn measure(params: &ConvergeParams) -> Vec<ConvergeRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &period in &params.periods {
        for &kind in &params.kinds {
            cells.push((idx, kind, period));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<ConvergeRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, period) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| run_cell(params, kind, period, i as u64)),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

fn run_cell(params: &ConvergeParams, kind: OverlayKind, period: u64, cell: u64) -> ConvergeRow {
    let horizon = params.horizon_periods.max(1) * period.max(1);
    let mut rng = stream_indexed(params.seed, "converge", cell);
    // Size the identifier space for the post-join population up front:
    // `build_overlay`'s exact-fit sizing would leave no room to join
    // into.
    let to_add = (params.nodes as f64 * params.join_fraction).round() as usize;
    let id_space = params.nodes + to_add;
    let mut net = build_overlay_spaced(kind, params.nodes, id_space, params.seed ^ (cell << 40));

    // Shock 1: mass join. Joins repair only what the join protocol
    // repairs; everything else waits for stabilization.
    let mut join_added = 0usize;
    for _ in 0..to_add {
        if net.join(&mut rng).is_some() {
            join_added += 1;
        }
    }
    let (join_clean_s, join_trajectory) =
        time_to_clean_traced(net.as_mut(), StabilizePhase::Hashed, period, horizon);

    // Shock 2: burst departure. Each node vanishes *ungracefully* with
    // probability `leave_fraction`, all in one instant, keeping a
    // minimum population alive. Graceful leaves repair their own
    // pointers by protocol; the fail path is what stabilization exists
    // for (§3.4 defers it, §5 flags it as the hard case).
    let mut leave_removed = 0usize;
    for token in net.node_tokens() {
        if net.len() <= 8 {
            break;
        }
        if rng.gen_bool(params.leave_fraction) && net.fail(token) {
            leave_removed += 1;
        }
    }
    let (leave_clean_s, leave_trajectory) =
        time_to_clean_traced(net.as_mut(), StabilizePhase::Hashed, period, horizon);

    // Latency under load, at the base period only: a fresh overlay
    // under continuous-time churn with message delays.
    let load = (period == params.base_period).then(|| {
        let mut fresh =
            build_overlay_spaced(kind, params.nodes, id_space, params.seed ^ (cell << 40) ^ 1);
        let mut load_rng = stream_indexed(params.seed, "converge-load", cell);
        let churn_params = ChurnParams {
            lookup_rate: 1.0,
            churn_rate: params.churn_rate,
            stabilization_period_secs: period,
            lookups: params.lookups,
            warmup_lookups: params.lookups / 50,
            conditions: params.conditions,
            time: TimeModel::Continuous,
            ..ChurnParams::default()
        };
        let out = run_churn(fresh.as_mut(), churn_params, &mut load_rng);
        let mut ms: Vec<f64> = out
            .latency_us
            .iter()
            .map(|&us| us as f64 / 1_000.0)
            .collect();
        ms.sort_by(f64::total_cmp);
        let mean = if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        let timeouts_mean = if out.timeouts.is_empty() {
            0.0
        } else {
            out.timeouts.iter().sum::<u64>() as f64 / out.timeouts.len() as f64
        };
        LatencyUnderLoad {
            p50_ms: percentile_sorted(&ms, 0.50),
            p95_ms: percentile_sorted(&ms, 0.95),
            p99_ms: percentile_sorted(&ms, 0.99),
            mean_ms: mean,
            timeouts_mean,
            stranded: out.stranded,
            failures: out.failures,
            sim_secs: out.sim_end_us as f64 / SECOND as f64,
        }
    });

    ConvergeRow {
        // `kind.label()` and not `net.name()`: the Koorde ablation shares
        // the display name "Koorde", and metric keys must be unique.
        label: kind.label().to_string(),
        period,
        join_added,
        join_clean_s,
        leave_removed,
        leave_clean_s,
        join_trajectory,
        leave_trajectory,
        load,
    }
}

/// Registers every row's convergence metrics, keyed `{overlay}/T={period}`.
/// Unconverged shocks export `-1` so the gauge is always present.
pub fn register_metrics(rows: &[ConvergeRow], reg: &mut MetricsRegistry) {
    let clean = |v: Option<u64>| v.map_or(-1.0, |s| s as f64);
    for row in rows {
        let prefix = format!("{}/T={}", row.label, row.period);
        reg.counter(&format!("{prefix}.join_added"))
            .add(row.join_added as u64);
        reg.counter(&format!("{prefix}.leave_removed"))
            .add(row.leave_removed as u64);
        reg.gauge(&format!("{prefix}.join_clean_s"))
            .set(clean(row.join_clean_s));
        reg.gauge(&format!("{prefix}.leave_clean_s"))
            .set(clean(row.leave_clean_s));
        for (name, trajectory) in [
            ("join_violations", &row.join_trajectory),
            ("leave_violations", &row.leave_trajectory),
        ] {
            let series = reg.series(&format!("{prefix}.{name}"));
            for &(t_us, open) in trajectory {
                series.push(t_us, open as f64);
            }
        }
        if let Some(load) = &row.load {
            reg.gauge(&format!("{prefix}.load.latency_p50_ms"))
                .set(load.p50_ms);
            reg.gauge(&format!("{prefix}.load.latency_p95_ms"))
                .set(load.p95_ms);
            reg.gauge(&format!("{prefix}.load.latency_p99_ms"))
                .set(load.p99_ms);
            reg.gauge(&format!("{prefix}.load.latency_mean_ms"))
                .set(load.mean_ms);
            reg.gauge(&format!("{prefix}.load.timeouts_mean"))
                .set(load.timeouts_mean);
            reg.counter(&format!("{prefix}.load.stranded"))
                .add(load.stranded as u64);
            reg.counter(&format!("{prefix}.load.failures"))
                .add(load.failures as u64);
            reg.gauge(&format!("{prefix}.load.sim_secs"))
                .set(load.sim_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::build_overlay;

    #[test]
    fn stabilization_converges_after_both_shocks() {
        let mut params = ConvergeParams::quick(3);
        params.kinds = vec![OverlayKind::Cycloid7, OverlayKind::Chord];
        params.periods = vec![10];
        params.base_period = 10;
        params.nodes = 64;
        params.lookups = 100;
        let rows = measure(&params);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.join_added > 0);
            assert!(row.leave_removed > 0);
            let j = row
                .join_clean_s
                .unwrap_or_else(|| panic!("{} join shock unconverged", row.label));
            let l = row
                .leave_clean_s
                .unwrap_or_else(|| panic!("{} leave shock unconverged", row.label));
            assert!(j <= 60 && l <= 60, "{}: within the horizon", row.label);
            let load = row.load.as_ref().expect("base-period row measures load");
            assert!(load.p50_ms > 0.0, "delays make latency nonzero");
            assert!(load.p99_ms >= load.p95_ms && load.p95_ms >= load.p50_ms);
            assert!(load.sim_secs > 0.0);
        }
    }

    #[test]
    fn time_to_clean_is_zero_on_a_clean_overlay() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        assert_eq!(
            time_to_clean(net.as_mut(), StabilizePhase::Hashed, 30, 60),
            Some(0)
        );
    }

    #[test]
    fn converge_is_deterministic() {
        let run = || {
            let mut params = ConvergeParams::quick(7);
            params.kinds = vec![OverlayKind::Koorde];
            params.periods = vec![10];
            params.base_period = 10;
            params.nodes = 64;
            params.lookups = 100;
            measure(&params)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.join_clean_s, y.join_clean_s);
            assert_eq!(x.leave_clean_s, y.leave_clean_s);
            let (lx, ly) = (x.load.as_ref().unwrap(), y.load.as_ref().unwrap());
            assert_eq!(lx.p50_ms, ly.p50_ms);
            assert_eq!(lx.p99_ms, ly.p99_ms);
            assert_eq!(lx.stranded, ly.stranded);
        }
    }
}
