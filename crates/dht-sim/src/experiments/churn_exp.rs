//! Figure 12 and Table 5: lookups during continuous node joins and leaves.
//!
//! §4.4: lookups arrive at one per second (Poisson); joins and voluntary
//! leaves each arrive at rate `R` ranging from 0.05 to 0.40 per second;
//! every node stabilizes once per 30 s at a uniformly distributed offset;
//! the network starts with 2048 nodes.

use crossbeam::thread;
use dht_core::net::NetConditions;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::stats::Summary;

use crate::churn::{run_churn, ChurnOutcome, ChurnParams};
use crate::factory::{build_overlay, OverlayKind};

/// Parameters of the churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnExpParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Starting network size (2048 in the paper).
    pub nodes: usize,
    /// Churn rates `R` to sweep (node joins *and* leaves per second).
    pub rates: Vec<f64>,
    /// Measured lookups per run (10,000 in the paper's setup).
    pub lookups: usize,
    /// Run the online protocol-invariant audit during every cell (see
    /// [`dht_core::audit`]).
    pub audit: bool,
    /// Network conditions lookups run under, so message loss composes
    /// with churn. Default: an ideal network (the paper's setting).
    pub conditions: NetConditions,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batches (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl ChurnExpParams {
    /// Paper-scale parameters.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            nodes: 2048,
            rates: vec![0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40],
            lookups: 10_000,
            audit: false,
            conditions: NetConditions::ideal(),
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
            nodes: 256,
            rates: vec![0.10, 0.40],
            lookups: 400,
            audit: true,
            conditions: NetConditions::ideal(),
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay at one churn rate.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Overlay display name.
    pub label: String,
    /// Churn rate `R`.
    pub rate: f64,
    /// Path-length distribution (Fig. 12's y-value is the mean).
    pub path: Summary,
    /// Per-lookup timeout distribution (Table 5).
    pub timeouts: Summary,
    /// Failed lookups (the paper observes none in every test case).
    pub failures: usize,
    /// Joins/leaves executed and final size, for the report.
    pub joins: usize,
    /// Leaves executed.
    pub leaves: usize,
    /// Network size at the end of the run.
    pub final_size: usize,
    /// Per-lookup message-retry distribution (all-zero under the ideal
    /// default [`ChurnExpParams::conditions`]).
    pub retries: Summary,
    /// Per-lookup simulated end-to-end latency in milliseconds.
    pub latency_ms: Summary,
    /// Accumulated online audit, when [`ChurnExpParams::audit`] was set.
    pub audit: Option<dht_core::audit::AuditReport>,
    /// Largest network size observed during the run.
    pub peak_size: usize,
    /// Per-node stabilization routines invoked (maintenance proxy).
    pub stabilize_calls: u64,
    /// Full stabilization rounds completed.
    pub stabilize_rounds: u64,
    /// Wall-clock time spent in audit passes, in µs.
    pub audit_us: u64,
}

/// Runs the sweep; rows ordered by rate then kind.
#[must_use]
pub fn measure(params: &ChurnExpParams) -> Vec<ChurnRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &rate in &params.rates {
        for &kind in &params.kinds {
            cells.push((idx, kind, rate));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<ChurnRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, rate) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut net = build_overlay(kind, params.nodes, params.seed ^ (i as u64) << 40);
                    let mut rng = stream_indexed(params.seed, "churn-run", i as u64);
                    let churn_params = ChurnParams {
                        lookup_rate: 1.0,
                        churn_rate: rate,
                        stabilization_period_secs: 30,
                        lookups: params.lookups,
                        warmup_lookups: params.lookups / 50,
                        audit: params.audit,
                        conditions: params.conditions,
                        sink: dht_core::obs::SinkHandle::disabled(),
                        jobs: params.jobs,
                        ..ChurnParams::default()
                    };
                    let out: ChurnOutcome = run_churn(net.as_mut(), churn_params, &mut rng);
                    let latency_ms: Vec<f64> = out
                        .latency_us
                        .iter()
                        .map(|&us| us as f64 / 1_000.0)
                        .collect();
                    ChurnRow {
                        label: net.name(),
                        rate,
                        path: Summary::of_lens(&out.path_lens),
                        timeouts: Summary::of_counts(&out.timeouts),
                        failures: out.failures,
                        joins: out.joins,
                        leaves: out.leaves,
                        final_size: out.final_size,
                        retries: Summary::of_counts(&out.retries),
                        latency_ms: Summary::of(&latency_ms),
                        audit: out.audit,
                        peak_size: out.peak_size,
                        stabilize_calls: out.stabilize_calls,
                        stabilize_rounds: out.stabilize_rounds,
                        audit_us: out.audit_us,
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's lookup and maintenance metrics, keyed
/// `{overlay}/R={rate}`: membership-event and stabilization counters, the
/// peak/final size gauges, and the accumulated audit wall-clock timer.
pub fn register_metrics(rows: &[ChurnRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/R={}", row.label, row.rate);
        reg.counter(&format!("{prefix}.lookups"))
            .add(row.path.n as u64);
        reg.counter(&format!("{prefix}.failures"))
            .add(row.failures as u64);
        reg.counter(&format!("{prefix}.joins"))
            .add(row.joins as u64);
        reg.counter(&format!("{prefix}.leaves"))
            .add(row.leaves as u64);
        reg.counter(&format!("{prefix}.stabilize_calls"))
            .add(row.stabilize_calls);
        reg.counter(&format!("{prefix}.stabilize_rounds"))
            .add(row.stabilize_rounds);
        reg.gauge(&format!("{prefix}.peak_size"))
            .set(row.peak_size as f64);
        reg.gauge(&format!("{prefix}.final_size"))
            .set(row.final_size as f64);
        reg.gauge(&format!("{prefix}.mean_path")).set(row.path.mean);
        reg.gauge(&format!("{prefix}.mean_timeouts"))
            .set(row.timeouts.mean);
        reg.timer(&format!("{prefix}.audit_wall"))
            .record_us(row.audit_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sweep_completes_without_failures() {
        // §4.4: "There are no failures in all test cases."
        let rows = measure(&ChurnExpParams::quick(3));
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.failures, 0, "{} at R={}", row.label, row.rate);
            assert_eq!(row.path.n, 400);
            assert!(row.joins > 0 && row.leaves > 0);
            let audit = row.audit.as_ref().expect("quick params enable auditing");
            assert!(audit.is_clean(), "{audit}");
        }
    }

    #[test]
    fn stabilization_keeps_timeouts_low() {
        // Table 5's shape: with 30 s stabilization, mean timeouts stay far
        // below the unstabilized Table 4 numbers.
        let rows = measure(&ChurnExpParams::quick(5));
        for row in &rows {
            assert!(
                row.timeouts.mean < 1.0,
                "{} at R={}: mean timeouts {} too high",
                row.label,
                row.rate,
                row.timeouts.mean
            );
        }
    }
}
