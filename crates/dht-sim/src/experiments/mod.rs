//! One driver per table/figure of the paper's evaluation (§4).
//!
//! Every driver returns plain row structs so the `repro` binary, the
//! Criterion benches, and the integration tests can all consume the same
//! data. Each driver has paper-scale defaults and a `quick()` parameter
//! set for fast smoke runs.

pub mod churn_exp;
pub mod converge;
pub mod fault_tolerance;
pub mod hotspot;
pub mod key_distribution;
pub mod maintenance;
pub mod mass_departure;
pub mod path_length;
pub mod profile;
pub mod query_load;
pub mod recover;
pub mod scale;
pub mod sparsity;
pub mod static_tables;
pub mod throughput;
pub mod ungraceful;

use dht_core::lookup::{HopPhase, PhaseBreakdown};
use dht_core::obs::{Histogram, MetricsRegistry};
use dht_core::overlay::Overlay;
use dht_core::stats::Summary;
use dht_core::workload::LookupRequest;

/// Every [`HopPhase`] variant, for phase-indexed accounting.
const ALL_PHASES: [HopPhase; 6] = [
    HopPhase::Ascending,
    HopPhase::Descending,
    HopPhase::TraverseCycle,
    HopPhase::DeBruijn,
    HopPhase::Successor,
    HopPhase::Finger,
];

/// Aggregate statistics of one batch of lookups on one overlay.
#[derive(Debug, Clone)]
pub struct LookupAggregate {
    /// Overlay display name.
    pub label: String,
    /// Node count when the batch started.
    pub n_start: usize,
    /// Path-length distribution.
    pub path: Summary,
    /// Per-lookup timeout distribution.
    pub timeouts: Summary,
    /// Lookups that did not terminate at the key's owner.
    pub failures: usize,
    /// Per-phase hop accounting.
    pub breakdown: PhaseBreakdown,
    /// Per-lookup message-retry distribution (loss-induced re-sends only;
    /// all-zero on an ideal network).
    pub retries: Summary,
    /// Per-lookup message-timeout distribution: live contacts abandoned
    /// after the retry policy's final attempt. Distinct from
    /// [`LookupAggregate::timeouts`], the §4.3 stale-entry count.
    pub msg_timeouts: Summary,
    /// Per-lookup simulated end-to-end latency in milliseconds (RTT draws
    /// plus backoff waits under the active fault plan).
    pub latency_ms: Summary,
    /// Path-length histogram (log₂ buckets) over all lookups.
    pub path_hist: Histogram,
    /// Per-phase hop-count histograms: for every routing phase the batch
    /// used at least once, the distribution of per-lookup hop counts in
    /// that phase. Keyed for export by [`HopPhase::label`].
    pub phase_hists: Vec<(HopPhase, Histogram)>,
    /// Per-lookup simulated latency histogram, in µs.
    pub latency_hist: Histogram,
    /// Total stale-entry timeouts across the batch.
    pub timeouts_total: u64,
    /// Total message retries across the batch.
    pub retries_total: u64,
    /// Total message timeouts across the batch.
    pub msg_timeouts_total: u64,
    /// Wall-clock time the batch took, in µs.
    pub elapsed_us: u64,
}

impl LookupAggregate {
    /// Measured throughput: lookups completed per wall-clock second.
    #[must_use]
    pub fn lookups_per_sec(&self) -> f64 {
        self.path.n as f64 / (self.elapsed_us.max(1) as f64 / 1_000_000.0)
    }
}

/// Runs a batch of lookup requests sequentially and aggregates the
/// traces. Equivalent to [`run_requests_jobs`] with `jobs == 1`.
pub fn run_requests(overlay: &mut dyn Overlay, reqs: &[LookupRequest]) -> LookupAggregate {
    run_requests_jobs(overlay, reqs, 1)
}

/// Runs a batch of lookup requests across up to `jobs` worker threads
/// (via [`Overlay::lookup_batch`]) and aggregates the traces. The
/// aggregate is bit-identical for every `jobs` value; only `elapsed_us`
/// (wall clock) varies.
pub fn run_requests_jobs(
    overlay: &mut dyn Overlay,
    reqs: &[LookupRequest],
    jobs: usize,
) -> LookupAggregate {
    let n_start = overlay.len();
    let mut paths = Vec::with_capacity(reqs.len());
    let mut timeouts = Vec::with_capacity(reqs.len());
    let mut retries = Vec::with_capacity(reqs.len());
    let mut msg_timeouts = Vec::with_capacity(reqs.len());
    let mut latency_ms = Vec::with_capacity(reqs.len());
    let mut failures = 0usize;
    let mut breakdown = PhaseBreakdown::new();
    let mut path_hist = Histogram::new();
    let mut latency_hist = Histogram::new();
    // Per-lookup hop counts for every phase; histograms are built only
    // for phases the batch actually used.
    let mut phase_counts: [Vec<u64>; 6] = Default::default();
    let pairs: Vec<(dht_core::overlay::NodeToken, u64)> =
        reqs.iter().map(|r| (r.src, r.raw_key)).collect();
    let started = std::time::Instant::now();
    let traces = overlay.lookup_batch(&pairs, jobs);
    let elapsed_us = started.elapsed().as_micros() as u64;
    for trace in &traces {
        paths.push(trace.path_len());
        timeouts.push(u64::from(trace.timeouts));
        retries.push(u64::from(trace.net.retries));
        msg_timeouts.push(u64::from(trace.net.msg_timeouts));
        latency_ms.push(trace.net.latency_us as f64 / 1_000.0);
        if !trace.outcome.is_success() {
            failures += 1;
        }
        path_hist.record(trace.path_len() as u64);
        latency_hist.record(trace.net.latency_us);
        for (i, &phase) in ALL_PHASES.iter().enumerate() {
            phase_counts[i].push(trace.hops_in_phase(phase) as u64);
        }
        breakdown.record(trace);
    }
    let mut phase_hists = Vec::new();
    for (i, &phase) in ALL_PHASES.iter().enumerate() {
        if phase_counts[i].iter().any(|&c| c > 0) {
            let mut h = Histogram::new();
            for &c in &phase_counts[i] {
                h.record(c);
            }
            phase_hists.push((phase, h));
        }
    }
    LookupAggregate {
        label: overlay.name(),
        n_start,
        path: Summary::of_lens(&paths),
        timeouts: Summary::of_counts(&timeouts),
        failures,
        breakdown,
        retries: Summary::of_counts(&retries),
        msg_timeouts: Summary::of_counts(&msg_timeouts),
        latency_ms: Summary::of(&latency_ms),
        path_hist,
        phase_hists,
        latency_hist,
        timeouts_total: timeouts.iter().sum(),
        retries_total: retries.iter().sum(),
        msg_timeouts_total: msg_timeouts.iter().sum(),
        elapsed_us,
    }
}

/// Registers one aggregate's metrics under `prefix` — the uniform export
/// every lookup-batch experiment shares: lookup/failure counters, the
/// path-length histogram, per-phase hop histograms keyed by
/// [`HopPhase::label`], fault counters, the latency histogram, the batch
/// wall-clock timer, and the throughput gauge.
pub fn register_lookup_metrics(reg: &mut MetricsRegistry, prefix: &str, agg: &LookupAggregate) {
    reg.counter(&format!("{prefix}.lookups"))
        .add(agg.path.n as u64);
    reg.counter(&format!("{prefix}.failures"))
        .add(agg.failures as u64);
    reg.histogram(&format!("{prefix}.hops"))
        .merge(&agg.path_hist);
    for (phase, hist) in &agg.phase_hists {
        reg.histogram(&format!("{prefix}.hops.{}", phase.label()))
            .merge(hist);
    }
    reg.counter(&format!("{prefix}.stale_timeouts"))
        .add(agg.timeouts_total);
    reg.counter(&format!("{prefix}.retries"))
        .add(agg.retries_total);
    reg.counter(&format!("{prefix}.msg_timeouts"))
        .add(agg.msg_timeouts_total);
    reg.histogram(&format!("{prefix}.latency_us"))
        .merge(&agg.latency_hist);
    reg.timer(&format!("{prefix}.wall"))
        .record_us(agg.elapsed_us);
    reg.gauge(&format!("{prefix}.lookups_per_sec"))
        .set(agg.lookups_per_sec());
}

/// Registers a [`Summary`]'s headline statistics under `prefix`: a
/// `.samples` counter plus `.mean`, `.p01`, `.p99`, and `.max` gauges.
/// Used by the experiments whose rows carry distributions rather than
/// full lookup aggregates (query load, key distribution, degrees).
pub fn register_summary_gauges(reg: &mut MetricsRegistry, prefix: &str, s: &Summary) {
    reg.counter(&format!("{prefix}.samples")).add(s.n as u64);
    reg.gauge(&format!("{prefix}.mean")).set(s.mean);
    reg.gauge(&format!("{prefix}.p01")).set(s.p01);
    reg.gauge(&format!("{prefix}.p99")).set(s.p99);
    reg.gauge(&format!("{prefix}.max")).set(s.max);
}

/// The paper's network sizes: `n = d * 2^d` for `d = 3..=8`
/// (24, 64, 160, 384, 896, 2048 nodes).
#[must_use]
pub fn paper_sizes() -> Vec<(u32, usize)> {
    (3..=8u32)
        .map(|d| (d, (u64::from(d) << d) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_overlay, OverlayKind};
    use dht_core::rng::stream;
    use dht_core::workload::random_pairs;

    #[test]
    fn paper_sizes_match_formula() {
        let sizes = paper_sizes();
        assert_eq!(
            sizes,
            vec![(3, 24), (4, 64), (5, 160), (6, 384), (7, 896), (8, 2048)]
        );
    }

    #[test]
    fn run_requests_aggregates() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        let reqs = random_pairs(net.as_ref(), 200, &mut stream(2, "agg"));
        let agg = run_requests(net.as_mut(), &reqs);
        assert_eq!(agg.label, "Cycloid(7)");
        assert_eq!(agg.n_start, 64);
        assert_eq!(agg.path.n, 200);
        assert_eq!(agg.failures, 0);
        assert_eq!(agg.breakdown.lookups(), 200);
        assert!(agg.path.mean > 0.0);
        assert_eq!(agg.retries.max, 0.0, "ideal network never retries");
        assert_eq!(agg.msg_timeouts.max, 0.0);
        assert_eq!(agg.latency_ms.max, 0.0, "ideal network is instantaneous");
    }

    #[test]
    fn aggregate_histograms_match_summaries() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        let reqs = random_pairs(net.as_ref(), 200, &mut stream(2, "hist"));
        let agg = run_requests(net.as_mut(), &reqs);
        assert_eq!(agg.path_hist.count(), 200);
        assert_eq!(agg.path_hist.max(), Some(agg.path.max as u64));
        assert_eq!(agg.path_hist.min(), Some(agg.path.min as u64));
        assert!((agg.path_hist.mean() - agg.path.mean).abs() < 1e-9);
        assert_eq!(agg.latency_hist.count(), 200);
        assert!(!agg.phase_hists.is_empty(), "Cycloid routes in phases");
        // Per-phase per-lookup counts must sum to the total hop count.
        let phase_sum: u64 = agg.phase_hists.iter().map(|(_, h)| h.sum()).sum();
        assert_eq!(phase_sum, agg.path_hist.sum());
        assert_eq!(agg.timeouts_total, 0);
        assert!(agg.lookups_per_sec() > 0.0);
    }

    #[test]
    fn register_lookup_metrics_exports_uniform_names() {
        use dht_core::obs::Metric;
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        let reqs = random_pairs(net.as_ref(), 100, &mut stream(2, "reg"));
        let agg = run_requests(net.as_mut(), &reqs);
        let mut reg = MetricsRegistry::new();
        register_lookup_metrics(&mut reg, "Cycloid(7)/n=64", &agg);
        match reg.get("Cycloid(7)/n=64.lookups") {
            Some(Metric::Counter(c)) => assert_eq!(c.get(), 100),
            other => panic!("unexpected: {other:?}"),
        }
        match reg.get("Cycloid(7)/n=64.hops") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 100),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(
            reg.iter().any(|(name, _)| name.contains(".hops.")),
            "per-phase histograms registered"
        );
        match reg.get("Cycloid(7)/n=64.wall") {
            Some(Metric::Timer(t)) => assert_eq!(t.spans(), 1),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(reg.get("Cycloid(7)/n=64.lookups_per_sec").is_some());
    }

    #[test]
    fn run_requests_bills_faults_when_enabled() {
        use dht_core::net::{FaultPlan, NetConditions, RetryPolicy};
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        net.set_net_conditions(NetConditions::new(
            FaultPlan::lossy(9, 0.10),
            RetryPolicy::standard(),
        ));
        let reqs = random_pairs(net.as_ref(), 200, &mut stream(2, "agg"));
        let agg = run_requests(net.as_mut(), &reqs);
        assert!(
            agg.retries.max > 0.0,
            "10% loss over 200 lookups must retry"
        );
        assert!(agg.latency_ms.mean > 0.0, "delay model bills every hop");
        assert_eq!(agg.failures, 0, "retry policy rides out 10% loss");
    }
}
