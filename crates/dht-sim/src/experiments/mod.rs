//! One driver per table/figure of the paper's evaluation (§4).
//!
//! Every driver returns plain row structs so the `repro` binary, the
//! Criterion benches, and the integration tests can all consume the same
//! data. Each driver has paper-scale defaults and a `quick()` parameter
//! set for fast smoke runs.

pub mod churn_exp;
pub mod fault_tolerance;
pub mod hotspot;
pub mod key_distribution;
pub mod maintenance;
pub mod mass_departure;
pub mod path_length;
pub mod query_load;
pub mod sparsity;
pub mod static_tables;
pub mod ungraceful;

use dht_core::lookup::PhaseBreakdown;
use dht_core::overlay::Overlay;
use dht_core::stats::Summary;
use dht_core::workload::LookupRequest;

/// Aggregate statistics of one batch of lookups on one overlay.
#[derive(Debug, Clone)]
pub struct LookupAggregate {
    /// Overlay display name.
    pub label: String,
    /// Node count when the batch started.
    pub n_start: usize,
    /// Path-length distribution.
    pub path: Summary,
    /// Per-lookup timeout distribution.
    pub timeouts: Summary,
    /// Lookups that did not terminate at the key's owner.
    pub failures: usize,
    /// Per-phase hop accounting.
    pub breakdown: PhaseBreakdown,
    /// Per-lookup message-retry distribution (loss-induced re-sends only;
    /// all-zero on an ideal network).
    pub retries: Summary,
    /// Per-lookup message-timeout distribution: live contacts abandoned
    /// after the retry policy's final attempt. Distinct from
    /// [`LookupAggregate::timeouts`], the §4.3 stale-entry count.
    pub msg_timeouts: Summary,
    /// Per-lookup simulated end-to-end latency in milliseconds (RTT draws
    /// plus backoff waits under the active fault plan).
    pub latency_ms: Summary,
}

/// Runs a batch of lookup requests and aggregates the traces.
pub fn run_requests(overlay: &mut dyn Overlay, reqs: &[LookupRequest]) -> LookupAggregate {
    let n_start = overlay.len();
    let mut paths = Vec::with_capacity(reqs.len());
    let mut timeouts = Vec::with_capacity(reqs.len());
    let mut retries = Vec::with_capacity(reqs.len());
    let mut msg_timeouts = Vec::with_capacity(reqs.len());
    let mut latency_ms = Vec::with_capacity(reqs.len());
    let mut failures = 0usize;
    let mut breakdown = PhaseBreakdown::new();
    for req in reqs {
        let trace = overlay.lookup(req.src, req.raw_key);
        paths.push(trace.path_len());
        timeouts.push(u64::from(trace.timeouts));
        retries.push(u64::from(trace.net.retries));
        msg_timeouts.push(u64::from(trace.net.msg_timeouts));
        latency_ms.push(trace.net.latency_us as f64 / 1_000.0);
        if !trace.outcome.is_success() {
            failures += 1;
        }
        breakdown.record(&trace);
    }
    LookupAggregate {
        label: overlay.name(),
        n_start,
        path: Summary::of_lens(&paths),
        timeouts: Summary::of_counts(&timeouts),
        failures,
        breakdown,
        retries: Summary::of_counts(&retries),
        msg_timeouts: Summary::of_counts(&msg_timeouts),
        latency_ms: Summary::of(&latency_ms),
    }
}

/// The paper's network sizes: `n = d * 2^d` for `d = 3..=8`
/// (24, 64, 160, 384, 896, 2048 nodes).
#[must_use]
pub fn paper_sizes() -> Vec<(u32, usize)> {
    (3..=8u32)
        .map(|d| (d, (u64::from(d) << d) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_overlay, OverlayKind};
    use dht_core::rng::stream;
    use dht_core::workload::random_pairs;

    #[test]
    fn paper_sizes_match_formula() {
        let sizes = paper_sizes();
        assert_eq!(
            sizes,
            vec![(3, 24), (4, 64), (5, 160), (6, 384), (7, 896), (8, 2048)]
        );
    }

    #[test]
    fn run_requests_aggregates() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        let reqs = random_pairs(net.as_ref(), 200, &mut stream(2, "agg"));
        let agg = run_requests(net.as_mut(), &reqs);
        assert_eq!(agg.label, "Cycloid(7)");
        assert_eq!(agg.n_start, 64);
        assert_eq!(agg.path.n, 200);
        assert_eq!(agg.failures, 0);
        assert_eq!(agg.breakdown.lookups(), 200);
        assert!(agg.path.mean > 0.0);
        assert_eq!(agg.retries.max, 0.0, "ideal network never retries");
        assert_eq!(agg.msg_timeouts.max, 0.0);
        assert_eq!(agg.latency_ms.max, 0.0, "ideal network is instantaneous");
    }

    #[test]
    fn run_requests_bills_faults_when_enabled() {
        use dht_core::net::{FaultPlan, NetConditions, RetryPolicy};
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 1);
        net.set_net_conditions(NetConditions::new(
            FaultPlan::lossy(9, 0.10),
            RetryPolicy::standard(),
        ));
        let reqs = random_pairs(net.as_ref(), 200, &mut stream(2, "agg"));
        let agg = run_requests(net.as_mut(), &reqs);
        assert!(
            agg.retries.max > 0.0,
            "10% loss over 200 lookups must retry"
        );
        assert!(agg.latency_ms.mean > 0.0, "delay model bills every hop");
        assert_eq!(agg.failures, 0, "retry policy rides out 10% loss");
    }
}
