//! Figure 11 and Table 4: massive simultaneous node departures.
//!
//! §4.3: "we simulated a network of 2048 nodes. Once the network becomes
//! stable, each node is made to fail with probability p ranging from 0.1
//! to 0.5. After a failure occurs, we performed 10,000 lookups with random
//! sources and destinations. We recorded the number of timeouts occurred
//! in each lookup, the lookup path length, and whether the lookup found
//! the key's correct storing node." Departures are graceful and no
//! stabilization runs.

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::{stream, stream_indexed};
use dht_core::workload::random_pairs;
use rand::Rng;

use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay, OverlayKind};

/// Parameters of the mass-departure experiment.
#[derive(Debug, Clone)]
pub struct MassDepartureParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Starting network size (2048 in the paper).
    pub nodes: usize,
    /// Departure probabilities to sweep (0.1..=0.5 in the paper).
    pub probabilities: Vec<f64>,
    /// Lookups after the departures (10,000 in the paper).
    pub lookups: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl MassDepartureParams {
    /// Paper-scale parameters.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            nodes: 2048,
            probabilities: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            lookups: 10_000,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![
                OverlayKind::Cycloid7,
                OverlayKind::Viceroy,
                OverlayKind::Koorde,
            ],
            nodes: 512,
            probabilities: vec![0.2, 0.5],
            lookups: 600,
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay at one departure probability.
#[derive(Debug, Clone)]
pub struct MassDepartureRow {
    /// Departure probability.
    pub p: f64,
    /// Nodes remaining after the departures.
    pub survivors: usize,
    /// Aggregated lookup statistics (mean path = Fig. 11; timeout summary
    /// = Table 4; failures = the Koorde failure counts of §4.3).
    pub agg: LookupAggregate,
}

/// Runs the sweep; rows ordered by probability then kind.
#[must_use]
pub fn measure(params: &MassDepartureParams) -> Vec<MassDepartureRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &p in &params.probabilities {
        for &kind in &params.kinds {
            cells.push((idx, kind, p));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<MassDepartureRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, p) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut net = build_overlay(kind, params.nodes, params.seed ^ (i as u64) << 32);
                    // Same departure pattern per probability across kinds:
                    // the decision stream depends on p (via the row index
                    // within the probability group) but not on the overlay.
                    let mut depart_rng = stream(params.seed, &format!("depart-{p}"));
                    for token in net.node_tokens() {
                        if depart_rng.gen_bool(p) {
                            net.leave(token);
                        }
                    }
                    let survivors = net.len();
                    let mut rng = stream_indexed(params.seed, "mass-lookups", i as u64);
                    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
                    let agg = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    MassDepartureRow { p, survivors, agg }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's lookup metrics plus a survivor-count gauge,
/// keyed `{overlay}/p={p}`.
pub fn register_metrics(rows: &[MassDepartureRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/p={}", row.agg.label, row.p);
        super::register_lookup_metrics(reg, &prefix, &row.agg);
        reg.gauge(&format!("{prefix}.survivors"))
            .set(row.survivors as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn departures_shrink_the_network() {
        let rows = measure(&MassDepartureParams::quick(3));
        for row in &rows {
            let expected = 512.0 * (1.0 - row.p);
            assert!(
                (row.survivors as f64 - expected).abs() < 60.0,
                "survivors {} vs expected {expected}",
                row.survivors
            );
        }
    }

    #[test]
    fn cycloid_never_fails_viceroy_never_times_out() {
        // §4.3's two headline claims.
        let rows = measure(&MassDepartureParams::quick(5));
        for row in &rows {
            match row.agg.label.as_str() {
                "Cycloid(7)" => {
                    assert_eq!(row.agg.failures, 0, "Cycloid must resolve all lookups");
                    if row.p >= 0.2 {
                        assert!(
                            row.agg.timeouts.mean > 0.0,
                            "Cycloid must observe timeouts at p={}",
                            row.p
                        );
                    }
                }
                "Viceroy" => {
                    assert_eq!(row.agg.timeouts.max, 0.0, "Viceroy never times out");
                    assert_eq!(row.agg.failures, 0);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn koorde_fails_under_heavy_departures() {
        let rows = measure(&MassDepartureParams::quick(7));
        let heavy = rows
            .iter()
            .find(|r| r.agg.label == "Koorde" && r.p == 0.5)
            .unwrap();
        assert!(
            heavy.agg.failures > 0,
            "Koorde at p=0.5 must lose some lookups"
        );
    }
}
