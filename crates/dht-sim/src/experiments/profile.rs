//! Per-phase cost profile: where does each overlay spend its messages?
//!
//! Every overlay kind runs the standard churn workload (§4.4's setup at
//! the default rate) with the [`PhaseAccountant`] and the virtual-time
//! sampler enabled, yielding a per-kind × per-phase cost breakdown plus
//! the run's telemetry series. This is the observability showcase: the
//! same engines as the paper experiments, with the meters switched on.

use crossbeam::thread;
use dht_core::net::{DelayModel, FaultPlan, NetConditions, RetryPolicy};
use dht_core::obs::{Histogram, MetricsRegistry, Phase, PhaseAccountant, PhaseTable, ALL_PHASES};
use dht_core::rng::stream_indexed;

use crate::churn::{repair_bucket, run_churn, ChurnParams, ChurnSample, StabilizePhase};
use crate::event::SECOND;
use crate::factory::{build_overlay, OverlayKind, ALL_KINDS};

/// Parameters of the profiling run.
#[derive(Debug, Clone)]
pub struct ProfileParams {
    /// Overlays to profile (default: every kind the factory knows).
    pub kinds: Vec<OverlayKind>,
    /// Starting network size.
    pub nodes: usize,
    /// Join rate == leave rate per second (the churn default, 0.05).
    pub churn_rate: f64,
    /// Measured lookups per run.
    pub lookups: usize,
    /// Telemetry sampling cadence in virtual µs.
    pub sample_every_us: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for lookup batches (bit-identical results for
    /// every value; only wall clock varies).
    pub jobs: usize,
}

impl ProfileParams {
    /// Full-scale parameters: all kinds at n = 4096 under default churn.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: ALL_KINDS.to_vec(),
            nodes: 4096,
            churn_rate: 0.05,
            lookups: 10_000,
            sample_every_us: 60 * SECOND,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests — still every kind, so the
    /// breakdown covers the full overlay matrix.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: ALL_KINDS.to_vec(),
            nodes: 128,
            churn_rate: 0.05,
            lookups: 300,
            sample_every_us: 30 * SECOND,
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay's full cost profile.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Overlay display name.
    pub label: String,
    /// Network size at the end of the run.
    pub final_size: usize,
    /// Largest network size observed during the run.
    pub peak_size: usize,
    /// Failed lookups (expected zero).
    pub failures: usize,
    /// Per-phase cost table billed by the run.
    pub phases: PhaseTable,
    /// Virtual-time telemetry snapshots.
    pub samples: Vec<ChurnSample>,
    /// Simulated end-to-end lookup latency, µs.
    pub latency: Histogram,
}

/// Runs the profile; one row per kind, in `params.kinds` order.
#[must_use]
pub fn measure(params: &ProfileParams) -> Vec<ProfileRow> {
    let mut rows: Vec<Option<ProfileRow>> = vec![None; params.kinds.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &kind) in params.kinds.iter().enumerate() {
            let params = &params;
            handles.push((i, scope.spawn(move |_| run_cell(params, kind, i))));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

fn run_cell(params: &ProfileParams, kind: OverlayKind, cell: usize) -> ProfileRow {
    let mut net = build_overlay(kind, params.nodes, params.seed ^ ((cell as u64) << 40));
    let mut rng = stream_indexed(params.seed, "profile", cell as u64);
    let acct = PhaseAccountant::enabled();
    // Delay-only wide-area conditions: round trips land in 20–80 ms but
    // nothing is lost, so every routing decision matches the ideal
    // network while the latency histogram measures something real.
    let conditions = NetConditions::new(
        FaultPlan {
            seed: params.seed ^ ((cell as u64) << 32),
            loss: 0.0,
            delay: DelayModel::Uniform(20_000, 80_000),
            duplicate: 0.0,
        },
        RetryPolicy::standard(),
    );
    let churn = ChurnParams {
        churn_rate: params.churn_rate,
        lookups: params.lookups,
        warmup_lookups: params.lookups / 50,
        audit: true,
        conditions,
        jobs: params.jobs.max(1),
        accountant: acct.clone(),
        sample_every_us: params.sample_every_us,
        ..ChurnParams::default()
    };
    let out = run_churn(net.as_mut(), churn, &mut rng);
    // Churn repairs entries only on use (a lookup tripping over a stale
    // contact), which leaves overlays with lazily-derived links —
    // Viceroy — structurally at zero. One explicit full-network repair
    // sweep closes the profile: every kind's repair routine runs once
    // and bills its pass.
    repair_bucket(net.as_mut(), StabilizePhase::Hashed, 1, 0);
    let mut latency = Histogram::new();
    for &us in &out.latency_us {
        latency.record(us);
    }
    ProfileRow {
        // `kind.label()` and not `net.name()`: the Koorde ablation
        // shares the display name "Koorde", and the profile needs one
        // distinct key per kind for its metrics and series.
        label: kind.label().to_string(),
        final_size: out.final_size,
        peak_size: out.peak_size,
        failures: out.failures,
        phases: acct.snapshot().expect("accountant was enabled"),
        samples: out.samples,
        latency,
    }
}

/// Registers every row's phase counters, latency histogram, and
/// telemetry series, keyed by overlay label.
///
/// Virtual-time phase costs become counters (deterministic, so the
/// bench-regression gate can band them); the audit phase's `time_us` is
/// wall-clock — the one documented exception — so it is exported as a
/// timer, which the gate skips.
pub fn register_metrics(rows: &[ProfileRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let label = &row.label;
        for (phase, costs) in row.phases.iter() {
            let p = phase.label();
            reg.counter(&format!("{label}.phase.{p}.calls"))
                .add(costs.calls);
            reg.counter(&format!("{label}.phase.{p}.msgs"))
                .add(costs.msgs);
            reg.counter(&format!("{label}.phase.{p}.retries"))
                .add(costs.retries);
            reg.counter(&format!("{label}.phase.{p}.timeouts"))
                .add(costs.timeouts);
            reg.counter(&format!("{label}.phase.{p}.repair_entries"))
                .add(costs.repair_entries);
            if phase == Phase::Audit {
                reg.timer(&format!("{label}.phase.{p}.wall"))
                    .record_us(costs.time_us);
            } else {
                reg.counter(&format!("{label}.phase.{p}.time_us"))
                    .add(costs.time_us);
            }
        }
        reg.counter(&format!("{label}.failures"))
            .add(row.failures as u64);
        reg.gauge(&format!("{label}.final_size"))
            .set(row.final_size as f64);
        reg.gauge(&format!("{label}.peak_size"))
            .set(row.peak_size as f64);
        reg.histogram(&format!("{label}.latency_us"))
            .merge(&row.latency);
        if row.samples.is_empty() {
            continue;
        }
        for (idx, phase) in ALL_PHASES.iter().enumerate() {
            let series = reg.series(&format!("{label}.msgs.{}", phase.label()));
            for s in &row.samples {
                series.push(s.t_us, s.phase_msgs[idx] as f64);
            }
        }
        type SampleSignal = fn(&ChurnSample) -> f64;
        let gauges: [(&str, SampleSignal); 5] = [
            ("live_nodes", |s| s.live_nodes as f64),
            ("load_p50", |s| s.load_p50 as f64),
            ("load_p99", |s| s.load_p99 as f64),
            ("audit_violations", |s| s.audit_violations as f64),
            ("bytes_per_node", |s| s.bytes_per_node),
        ];
        for (name, value) in gauges {
            let series = reg.series(&format!("{label}.{name}"));
            for s in &row.samples {
                series.push(s.t_us, value(s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_bills_every_maintenance_phase() {
        let mut params = ProfileParams::quick(7);
        params.nodes = 96;
        params.lookups = 200;
        let rows = measure(&params);
        assert_eq!(rows.len(), ALL_KINDS.len());
        for row in &rows {
            assert_eq!(row.failures, 0, "{}: lookups failed", row.label);
            for phase in [Phase::Lookup, Phase::Stabilize, Phase::Repair] {
                assert!(
                    row.phases.get(phase).msgs > 0,
                    "{}: no {} messages billed",
                    row.label,
                    phase.label()
                );
            }
            assert!(row.phases.get(Phase::Join).msgs > 0, "{}", row.label);
            assert!(row.phases.get(Phase::Leave).msgs > 0, "{}", row.label);
            assert!(row.phases.get(Phase::Audit).msgs > 0, "{}", row.label);
            assert!(!row.samples.is_empty(), "{}: no telemetry", row.label);
        }
    }

    #[test]
    fn metrics_cover_phases_and_series() {
        let mut params = ProfileParams::quick(11);
        params.kinds = vec![OverlayKind::Cycloid7];
        params.nodes = 64;
        params.lookups = 150;
        let rows = measure(&params);
        let mut reg = MetricsRegistry::new();
        register_metrics(&rows, &mut reg);
        let label = &rows[0].label;
        for phase in ALL_PHASES {
            assert!(reg
                .get(&format!("{label}.phase.{}.msgs", phase.label()))
                .is_some());
        }
        assert!(reg.get_series(&format!("{label}.live_nodes")).is_some());
        assert!(reg.get_series(&format!("{label}.msgs.lookup")).is_some());
        assert!(reg
            .histogram(&format!("{label}.latency_us"))
            .quantile(0.5)
            .is_some());
    }
}
