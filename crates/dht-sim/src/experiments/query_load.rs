//! Figure 10: query-load balance.
//!
//! §4.2: "The query load is measured as the number of queries received by
//! a node for lookup requests from different nodes." The paper plots the
//! mean and the 1st/99th percentiles for networks of 64 and 2048 nodes.

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::stats::Summary;
use dht_core::workload::per_node_uniform;

use crate::factory::{build_overlay, OverlayKind};

/// Parameters of a query-load experiment.
#[derive(Debug, Clone)]
pub struct QueryLoadParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Network sizes (the paper uses 64 and 2048).
    pub sizes: Vec<usize>,
    /// Lookups per node (the §4.1 workload issues n/4 per node; `None`
    /// reproduces that, `Some(cap)` bounds it for quick runs).
    pub per_node_cap: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl QueryLoadParams {
    /// Paper-scale parameters.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            sizes: vec![64, 2048],
            per_node_cap: None,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![
                OverlayKind::Cycloid7,
                OverlayKind::Viceroy,
                OverlayKind::Koorde,
            ],
            sizes: vec![64],
            per_node_cap: Some(8),
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay at one size.
#[derive(Debug, Clone)]
pub struct QueryLoadRow {
    /// Overlay display name.
    pub label: String,
    /// Node count.
    pub n: usize,
    /// Distribution of queries received per node.
    pub load: Summary,
}

/// Runs the sweep; rows ordered by size then kind.
#[must_use]
pub fn measure(params: &QueryLoadParams) -> Vec<QueryLoadRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &n in &params.sizes {
        for &kind in &params.kinds {
            cells.push((idx, kind, n));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<QueryLoadRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, n) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let per_node = params
                        .per_node_cap
                        .map_or(n / 4, |cap| (n / 4).min(cap))
                        .max(1);
                    let mut net = build_overlay(kind, n, params.seed ^ (i as u64) << 24);
                    net.reset_query_loads();
                    let mut rng = stream_indexed(params.seed, "query-load", i as u64);
                    let reqs: Vec<_> = per_node_uniform(net.as_ref(), per_node, &mut rng)
                        .iter()
                        .map(|r| (r.src, r.raw_key))
                        .collect();
                    let _ = net.lookup_batch(&reqs, params.jobs);
                    QueryLoadRow {
                        label: net.name(),
                        n,
                        load: Summary::of_counts(&net.query_loads()),
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's per-node query-load distribution, keyed
/// `{overlay}/n={n}.load`.
pub fn register_metrics(rows: &[QueryLoadRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/n={}.load", row.label, row.n);
        super::register_summary_gauges(reg, &prefix, &row.load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_recorded_for_every_node() {
        let rows = measure(&QueryLoadParams::quick(3));
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.load.n, 64);
            assert!(
                row.load.mean >= 1.0,
                "{}: every node issues lookups",
                row.label
            );
        }
    }

    #[test]
    fn cycloid_variance_is_smallest_among_constant_degree() {
        // Fig. 10's shape: Cycloid has the smallest query-load variation
        // among the constant-degree DHTs.
        let rows = measure(&QueryLoadParams {
            per_node_cap: Some(16),
            ..QueryLoadParams::quick(5)
        });
        let spread = |label: &str| {
            let r = rows.iter().find(|r| r.label == label).unwrap();
            (r.load.p99 - r.load.p01) / r.load.mean
        };
        let cyc = spread("Cycloid(7)");
        let vic = spread("Viceroy");
        assert!(
            cyc < vic,
            "Cycloid relative spread {cyc} should be below Viceroy {vic}"
        );
    }
}
