//! Figures 13 and 14: impact of network sparsity in the ID space.
//!
//! §4.5: "We define the degree of sparsity as the percentage of
//! non-existent nodes relative to the network size... We tested a total of
//! 10,000 lookups in different DHT networks with an ID space of 2048
//! nodes." Fig. 14 breaks Koorde's lookup cost into de Bruijn and
//! successor hops as sparsity grows.

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::workload::random_pairs;

use crate::experiments::{run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay_spaced, OverlayKind};

/// Parameters of the sparsity experiment.
#[derive(Debug, Clone)]
pub struct SparsityParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// Identifier-space capacity (2048 in the paper).
    pub id_space: usize,
    /// Sparsity levels: fraction of the space left unoccupied.
    pub sparsities: Vec<f64>,
    /// Lookups per point (10,000 in the paper).
    pub lookups: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl SparsityParams {
    /// Paper-scale parameters.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            id_space: 2048,
            sparsities: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            lookups: 10_000,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            kinds: vec![OverlayKind::Cycloid7, OverlayKind::Koorde],
            id_space: 512,
            sparsities: vec![0.0, 0.5, 0.8],
            lookups: 500,
            seed,
            jobs: 1,
        }
    }
}

/// One row: one overlay at one sparsity level.
#[derive(Debug, Clone)]
pub struct SparsityRow {
    /// Fraction of the identifier space left unoccupied.
    pub sparsity: f64,
    /// Number of participating nodes.
    pub n: usize,
    /// Aggregated lookup statistics (mean path = Fig. 13; the Koorde
    /// breakdown = Fig. 14).
    pub agg: LookupAggregate,
}

/// Runs the sweep; rows ordered by sparsity then kind.
#[must_use]
pub fn measure(params: &SparsityParams) -> Vec<SparsityRow> {
    let mut cells = Vec::new();
    let mut idx = 0usize;
    for &s in &params.sparsities {
        let n = ((params.id_space as f64) * (1.0 - s)).round() as usize;
        for &kind in &params.kinds {
            cells.push((idx, kind, s, n.max(2)));
            idx += 1;
        }
    }
    let mut rows: Vec<Option<SparsityRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(i, kind, s, n) in &cells {
            let params = &params;
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut net = build_overlay_spaced(
                        kind,
                        n,
                        params.id_space,
                        params.seed ^ (i as u64) << 48,
                    );
                    let mut rng = stream_indexed(params.seed, "sparsity", i as u64);
                    let reqs = random_pairs(net.as_ref(), params.lookups, &mut rng);
                    let agg = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    SparsityRow {
                        sparsity: s,
                        n,
                        agg,
                    }
                }),
            ));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's lookup metrics plus a node-count gauge, keyed
/// `{overlay}/sparsity={s}`.
pub fn register_metrics(rows: &[SparsityRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/sparsity={}", row.agg.label, row.sparsity);
        super::register_lookup_metrics(reg, &prefix, &row.agg);
        reg.gauge(&format!("{prefix}.nodes")).set(row.n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::HopPhase;

    #[test]
    fn no_lookup_failures_at_any_sparsity() {
        // §4.5: "There are no lookup failures in each test case."
        let rows = measure(&SparsityParams::quick(3));
        for row in &rows {
            assert_eq!(
                row.agg.failures, 0,
                "{} at sparsity {}",
                row.agg.label, row.sparsity
            );
        }
    }

    #[test]
    fn cycloid_keeps_efficiency_koorde_degrades_relatively() {
        // Fig. 13's shape: Cycloid's path length does not grow with
        // sparsity (it shrinks slightly with network size), while Koorde's
        // successor share grows (Fig. 14).
        let rows = measure(&SparsityParams::quick(5));
        let cyc = |s: f64| {
            rows.iter()
                .find(|r| r.agg.label == "Cycloid(7)" && r.sparsity == s)
                .unwrap()
        };
        // Mid-range sparsity shortens Cycloid paths; even at 80% sparsity
        // the path stays within ~1.5 hops of dense (low-cyclic-index lone
        // primaries stretch the ascending phase slightly — see
        // EXPERIMENTS.md), nothing like Koorde's degradation.
        assert!(
            cyc(0.5).agg.path.mean <= cyc(0.0).agg.path.mean + 0.2,
            "Cycloid at 50% sparsity {} should not exceed dense {}",
            cyc(0.5).agg.path.mean,
            cyc(0.0).agg.path.mean
        );
        assert!(
            cyc(0.8).agg.path.mean <= cyc(0.0).agg.path.mean + 1.6,
            "Cycloid at 80% sparsity {} must stay near dense {}",
            cyc(0.8).agg.path.mean,
            cyc(0.0).agg.path.mean
        );
        let succ_share = |r: &SparsityRow| r.agg.breakdown.share(HopPhase::Successor);
        let k_dense = rows
            .iter()
            .find(|r| r.agg.label == "Koorde" && r.sparsity == 0.0)
            .unwrap();
        let k_sparse = rows
            .iter()
            .find(|r| r.agg.label == "Koorde" && r.sparsity == 0.8)
            .unwrap();
        assert!(
            succ_share(k_sparse) > succ_share(k_dense),
            "Koorde successor share must grow with sparsity"
        );
    }
}
