//! Figures 5, 6 and 7: lookup path length versus network size and
//! dimension, with the per-phase breakdown.
//!
//! §4.1: "we simulated networks with n = d·2^d nodes and varied the
//! dimension d from 3 to 8. Each node made a total of n/4 lookup requests
//! to random destinations."

use crossbeam::thread;
use dht_core::obs::MetricsRegistry;
use dht_core::rng::stream_indexed;
use dht_core::workload::per_node_uniform;

use crate::experiments::{paper_sizes, run_requests_jobs, LookupAggregate};
use crate::factory::{build_overlay, OverlayKind};

/// Parameters for the path-length sweep.
#[derive(Debug, Clone)]
pub struct PathLengthParams {
    /// Overlays to measure.
    pub kinds: Vec<OverlayKind>,
    /// `(dimension, node count)` pairs.
    pub sizes: Vec<(u32, usize)>,
    /// Lookups issued per node, as a fraction of `n` (the paper uses 1/4,
    /// i.e. `n/4` lookups per node... per the text, *per node* n/4 —
    /// interpreted here as each node issuing `max(1, n * factor / n) =
    /// max(1, n·factor)` requests in total terms; `factor = 0.25` issues
    /// `n/4` requests from every node).
    pub per_node_factor: f64,
    /// Hard cap on lookups per node (keeps the d = 8 point tractable; the
    /// paper's 512-per-node workload at n = 2048 is reproduced with
    /// `None`).
    pub per_node_cap: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for each cell's lookup batch (results are
    /// bit-identical for every value; only wall clock varies).
    pub jobs: usize,
}

impl PathLengthParams {
    /// Paper-scale parameters: all five systems, d = 3..=8, n/4 lookups
    /// per node.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            kinds: crate::factory::PAPER_KINDS.to_vec(),
            sizes: paper_sizes(),
            per_node_factor: 0.25,
            per_node_cap: None,
            seed,
            jobs: 1,
        }
    }

    /// Reduced workload for smoke tests and benches.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            per_node_cap: Some(8),
            ..Self::paper(seed)
        }
    }
}

/// One row of Fig. 5/6/7: one overlay at one size.
#[derive(Debug, Clone)]
pub struct PathLengthRow {
    /// Cycloid dimension of this size point.
    pub dimension: u32,
    /// Node count.
    pub n: usize,
    /// Aggregated lookup statistics (mean path = the Fig. 5/6 y-value;
    /// breakdown = the Fig. 7 bars).
    pub agg: LookupAggregate,
}

/// Runs the sweep; rows are ordered by size then by kind. Each
/// (kind, size) cell runs on its own thread.
#[must_use]
pub fn measure(params: &PathLengthParams) -> Vec<PathLengthRow> {
    let mut cells: Vec<(usize, OverlayKind, u32, usize)> = Vec::new();
    let mut index = 0usize;
    for &(d, n) in &params.sizes {
        for &kind in &params.kinds {
            cells.push((index, kind, d, n));
            index += 1;
        }
    }
    let mut rows: Vec<Option<PathLengthRow>> = vec![None; cells.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(idx, kind, d, n) in &cells {
            let params = &params;
            handles.push((
                idx,
                scope.spawn(move |_| {
                    let per_node = ((n as f64 * params.per_node_factor).round() as usize).max(1);
                    let per_node = params
                        .per_node_cap
                        .map_or(per_node, |cap| per_node.min(cap));
                    let mut net = build_overlay(kind, n, params.seed ^ (idx as u64) << 8);
                    let mut rng = stream_indexed(params.seed, "path-length", idx as u64);
                    let reqs = per_node_uniform(net.as_ref(), per_node, &mut rng);
                    let agg = run_requests_jobs(net.as_mut(), &reqs, params.jobs);
                    PathLengthRow {
                        dimension: d,
                        n,
                        agg,
                    }
                }),
            ));
        }
        for (idx, handle) in handles {
            rows[idx] = Some(handle.join().expect("measurement thread panicked"));
        }
    })
    .expect("thread scope failed");
    rows.into_iter()
        .map(|r| r.expect("all cells filled"))
        .collect()
}

/// Registers every row's lookup metrics, keyed `{overlay}/n={n}`.
pub fn register_metrics(rows: &[PathLengthRow], reg: &mut MetricsRegistry) {
    for row in rows {
        let prefix = format!("{}/n={}", row.agg.label, row.n);
        super::register_lookup_metrics(reg, &prefix, &row.agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::lookup::HopPhase;

    fn quick_rows() -> Vec<PathLengthRow> {
        let params = PathLengthParams {
            kinds: vec![
                OverlayKind::Cycloid7,
                OverlayKind::Viceroy,
                OverlayKind::Koorde,
            ],
            sizes: vec![(4, 64), (5, 160)],
            per_node_factor: 0.25,
            per_node_cap: Some(6),
            seed: 42,
            jobs: 1,
        };
        measure(&params)
    }

    #[test]
    fn sweep_covers_all_cells() {
        let rows = quick_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].n, 64);
        assert_eq!(rows[5].n, 160);
        for row in &rows {
            assert!(row.agg.path.mean > 0.0, "{} has no hops", row.agg.label);
            assert_eq!(row.agg.failures, 0);
        }
    }

    #[test]
    fn viceroy_paths_exceed_cycloid() {
        // The headline Fig. 5 shape: Viceroy's paths are much longer than
        // Cycloid's at equal n.
        let rows = quick_rows();
        let cycloid = rows
            .iter()
            .find(|r| r.agg.label == "Cycloid(7)" && r.n == 160)
            .unwrap();
        let viceroy = rows
            .iter()
            .find(|r| r.agg.label == "Viceroy" && r.n == 160)
            .unwrap();
        assert!(
            viceroy.agg.path.mean > cycloid.agg.path.mean,
            "Viceroy {} should exceed Cycloid {}",
            viceroy.agg.path.mean,
            cycloid.agg.path.mean
        );
    }

    #[test]
    fn cycloid_ascending_share_is_small() {
        // Fig. 7(a): ascending is a small share of Cycloid's path.
        let rows = quick_rows();
        let cycloid = rows
            .iter()
            .find(|r| r.agg.label == "Cycloid(7)" && r.n == 160)
            .unwrap();
        let share = cycloid.agg.breakdown.share(HopPhase::Ascending);
        assert!(share < 0.4, "ascending share {share} should be small");
    }
}
