//! Discrete-event simulation harness and experiment drivers for the
//! Cycloid evaluation (§4 of the paper).
//!
//! * [`factory`] — builds any of the compared overlays (Cycloid 7/11,
//!   Viceroy, Koorde, Chord) at a given network size with the sizing rules
//!   the paper uses,
//! * [`event`] — a façade over the virtual-clock kernel
//!   ([`dht_core::clock`]): the time-ordered event queue and Poisson
//!   arrival streams,
//! * [`churn`] — the §4.4 continuous join/leave simulation (lookups at one
//!   per second, churn at rate `R`, stabilization every 30 s), optionally
//!   composed with a message-level [`dht_core::net::FaultPlan`] and
//!   runnable in lockstep rounds or on the continuous virtual clock
//!   ([`churn::TimeModel`]),
//! * [`experiments`] — one driver per table/figure, returning structured
//!   rows, including the [`experiments::fault_tolerance`] loss-rate sweep,
//! * [`report`] — fixed-width table and CSV rendering for the `repro`
//!   binary,
//! * [`chart`] — terminal line charts so the figures render as figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod churn;
pub mod event;
pub mod experiments;
pub mod factory;
pub mod report;

pub use factory::{
    build_overlay, build_overlay_spaced, OverlayKind, ALL_KINDS, EXTENDED_KINDS, PAPER_KINDS,
};
