//! Fixed-width table and CSV rendering for the `repro` binary.

use dht_core::audit::AuditReport;
use dht_core::stats::Summary;

/// A simple text table builder with fixed-width columns.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated; cells containing commas are
    /// quoted).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three significant decimals.
#[must_use]
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a [`Summary`] the way the paper reports distributions:
/// `mean (p01, p99)`.
#[must_use]
pub fn mean_p01_p99(s: &Summary) -> String {
    format!("{:.2} ({:.0}, {:.0})", s.mean, s.p01, s.p99)
}

/// Formats an optional [`AuditReport`] as a table cell: `-` when auditing
/// was off, `clean (N)` after `N` clean node checks, or the violation
/// count when the audit flagged anything.
#[must_use]
pub fn audit_cell(report: Option<&AuditReport>) -> String {
    match report {
        None => "-".to_string(),
        Some(r) if r.is_clean() => format!("clean ({})", r.checked_nodes()),
        Some(r) => format!("{} violations", r.violations().len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["x-long-cell".into(), "y".into(), "z".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a,b".into(), "plain".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"a,b\",plain"));
    }

    #[test]
    fn summary_formatting() {
        let s = Summary::of(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mean_p01_p99(&s), "2.00 (0, 4)");
    }

    #[test]
    fn audit_cell_formatting() {
        use dht_core::audit::AuditScope;
        assert_eq!(audit_cell(None), "-");
        let mut clean = AuditReport::new("demo", AuditScope::Online);
        clean.note_checked(42);
        assert_eq!(audit_cell(Some(&clean)), "clean (42)");
        let mut bad = AuditReport::new("demo", AuditScope::Online);
        bad.record(1, "demo/broken", "detail".into());
        assert_eq!(audit_cell(Some(&bad)), "1 violations");
    }
}
