//! The §4.4 continuous-churn simulation.
//!
//! "Key lookups are generated according to a Poisson process at a rate of
//! one per second. Joins and voluntary leaves are modeled by a Poisson
//! process with a mean rate of R... each node invokes the stabilization
//! protocol once every 30 s and each node's stabilization routine is at
//! intervals that are uniformly distributed in the 30 s interval. The
//! network starts with 2048 nodes."
//!
//! The engine runs in one of two [`TimeModel`]s on the same virtual
//! clock ([`dht_core::clock`]):
//!
//! * [`TimeModel::Rounds`] — the original lockstep semantics: lookups
//!   buffered between membership/stabilization events and routed as
//!   instantaneous parallel batches. Message delays are *billed* to
//!   [`dht_core::net::NetCosts::latency_us`] but never advance the
//!   clock.
//! * [`TimeModel::Continuous`] — lookups are *suspended* between hops
//!   ([`dht_core::sim::LookupCursor`]): each hop's reply schedules the
//!   walk's resumption after its simulated delay, so in-flight lookups
//!   interleave with joins, leaves, and per-node stabilization timers,
//!   and reported latency equals virtual-clock elapsed time by
//!   construction. With zero message delays and the same
//!   [`StabilizePhase`], the continuous engine reproduces the rounds
//!   engine's measurements exactly (under zero churn; with churn the
//!   two differ only in *when* repairs land: streaming per-lookup
//!   versus after each batch).

use std::collections::BTreeMap;

use dht_core::audit::{AuditReport, AuditScope};
use dht_core::lookup::LookupTrace;
use dht_core::net::NetConditions;
use dht_core::obs::{Event as TraceEvent, Phase, PhaseAccountant, PhaseCosts, SinkHandle};
use dht_core::overlay::Overlay;
use dht_core::sim::{CursorStep, LookupCursor};
use rand::{Rng, RngCore};

use crate::event::{exp_delay, EventQueue, SimTime, SECOND};

/// Which notion of time the churn engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeModel {
    /// Lockstep stabilization rounds: lookups resolve instantaneously
    /// between membership events (the engine's original semantics, and
    /// the configuration all historical goldens were recorded under).
    #[default]
    Rounds,
    /// Discrete-event virtual clock: lookups are suspended per hop and
    /// interleave with churn and stabilization timers.
    Continuous,
}

/// How per-node stabilization timers are phased within the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StabilizePhase {
    /// Each node's timer offset is its token hash modulo the period —
    /// the paper's "intervals uniformly distributed in the 30 s
    /// interval" (§4.4).
    #[default]
    Hashed,
    /// Every node stabilizes at the end of the period, in one sweep —
    /// the degenerate phasing that, with zero message delays, recovers
    /// classic round-based semantics.
    Synchronized,
}

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Lookup arrival rate per second (the paper uses 1.0).
    pub lookup_rate: f64,
    /// Join rate per second == leave rate per second (the paper's `R`).
    pub churn_rate: f64,
    /// Stabilization period per node in seconds (the paper uses 30).
    pub stabilization_period_secs: u64,
    /// Number of lookups to observe before stopping.
    pub lookups: usize,
    /// Warm-up lookups discarded before measurement starts.
    pub warmup_lookups: usize,
    /// Run the online state audit (see [`dht_core::audit`]) after every
    /// full stabilization round and at the end of the run.
    pub audit: bool,
    /// Network conditions (fault plan + retry policy) lookups run under,
    /// so message loss and churn compose. Default: an ideal network.
    pub conditions: NetConditions,
    /// Trace sink installed on the overlay for the run: the walk engine
    /// emits lookup events through it, and the churn engine adds
    /// `Join`/`Leave`/`StabilizeRound`/`AuditRun`. Default: disabled.
    pub sink: SinkHandle,
    /// Worker-thread cap for lookup batches. Lookups arriving between two
    /// membership/stabilization events are independent reads, so the
    /// engine buffers them and routes each batch through
    /// [`Overlay::lookup_batch`]; results are bit-identical for every
    /// value. Under [`TimeModel::Continuous`] there is no batching (each
    /// lookup is an event-driven walk), so `jobs` is ignored and every
    /// value is trivially bit-identical. Default: 1.
    pub jobs: usize,
    /// Which notion of time the run uses. Default: [`TimeModel::Rounds`].
    pub time: TimeModel,
    /// Stabilization timer phasing. Default: [`StabilizePhase::Hashed`].
    pub phase: StabilizePhase,
    /// Run each node's self-stabilizing repair routine
    /// ([`Overlay::repair_node`]) on its stabilization timer *instead of*
    /// the plain stabilizer. Repair subsumes stabilization — on a healthy
    /// or merely stale network it performs exactly the refresh the
    /// stabilizer would (same state, same RNG draws), so enabling it on
    /// an uncorrupted run is bit-identical to leaving it off; the
    /// difference is that repaired entries are counted into
    /// [`ChurnOutcome::repair_entries`]. Default: false.
    pub repair: bool,
    /// Per-phase cost accountant installed on the overlay for the run:
    /// every lookup, stabilization sweep, repair, join, leave, and audit
    /// bills its messages and virtual time to its [`Phase`]. Like the
    /// sink, the disabled default records nothing and changes no routing
    /// result. Default: disabled.
    pub accountant: PhaseAccountant,
    /// Telemetry sampling cadence in virtual µs: every `sample_every_us`
    /// of simulated time, a read-only [`ChurnSample`] snapshot is pushed
    /// into [`ChurnOutcome::samples`]. The sampler draws no RNG, mutates
    /// nothing, and (in rounds mode) does not flush the pending lookup
    /// batch, so enabling it changes no measurement. 0 disables sampling
    /// (the default).
    pub sample_every_us: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        Self {
            lookup_rate: 1.0,
            churn_rate: 0.05,
            stabilization_period_secs: 30,
            lookups: 10_000,
            warmup_lookups: 200,
            audit: false,
            conditions: NetConditions::ideal(),
            sink: SinkHandle::disabled(),
            jobs: 1,
            time: TimeModel::default(),
            phase: StabilizePhase::default(),
            repair: false,
            accountant: PhaseAccountant::disabled(),
            sample_every_us: 0,
        }
    }
}

/// One virtual-time telemetry snapshot (see
/// [`ChurnParams::sample_every_us`]). Cumulative fields count from the
/// start of the run, so consumers can difference consecutive samples
/// into rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSample {
    /// Virtual time of the snapshot, in µs.
    pub t_us: u64,
    /// Live nodes at the snapshot instant.
    pub live_nodes: u64,
    /// Cumulative messages billed per phase, indexed in
    /// [`dht_core::obs::ALL_PHASES`] order. All-zero when the run's
    /// [`ChurnParams::accountant`] is disabled.
    pub phase_msgs: [u64; 6],
    /// Median per-node query load (nearest rank over live nodes).
    pub load_p50: u64,
    /// 99th-percentile per-node query load.
    pub load_p99: u64,
    /// Violations found by the most recent audit pass (0 before the
    /// first pass, or when auditing is off).
    pub audit_violations: u64,
    /// Routing-state bytes per live node.
    pub bytes_per_node: f64,
}

/// Aggregate result of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Path length of every measured lookup.
    pub path_lens: Vec<usize>,
    /// Timeout count of every measured lookup.
    pub timeouts: Vec<u64>,
    /// Lookups that did not resolve at the key's owner.
    pub failures: usize,
    /// Total joins executed.
    pub joins: usize,
    /// Total leaves executed.
    pub leaves: usize,
    /// Final network size.
    pub final_size: usize,
    /// Message retries of every measured lookup (loss-induced re-sends;
    /// all-zero under an ideal [`ChurnParams::conditions`]).
    pub retries: Vec<u64>,
    /// Simulated end-to-end latency of every measured lookup, in µs.
    pub latency_us: Vec<u64>,
    /// Accumulated online audit (one pass per stabilization round plus a
    /// final pass), when [`ChurnParams::audit`] was set.
    pub audit: Option<AuditReport>,
    /// Largest network size observed during the run (the peak
    /// `Membership` population).
    pub peak_size: usize,
    /// Per-node stabilization routines invoked — the run's maintenance
    /// message proxy.
    pub stabilize_calls: u64,
    /// Full stabilization rounds completed.
    pub stabilize_rounds: u64,
    /// Wall-clock time spent inside audit passes, in µs (zero when
    /// auditing is off).
    pub audit_us: u64,
    /// Virtual-clock elapsed time of every measured lookup (arrival to
    /// completion), in µs, aligned with [`ChurnOutcome::latency_us`].
    /// Empty under [`TimeModel::Rounds`], where lookups resolve
    /// instantaneously and nothing elapses.
    pub elapsed_us: Vec<u64>,
    /// Virtual time at which the run ended, in µs.
    pub sim_end_us: u64,
    /// In-flight lookups whose current holder departed mid-walk, leaving
    /// them unable to progress (counted into
    /// [`ChurnOutcome::failures`] when measured). Always zero under
    /// [`TimeModel::Rounds`], where lookups never span membership
    /// events.
    pub stranded: usize,
    /// Routing-state entries rewritten by repair routines, summed over
    /// every [`Overlay::repair_node`] call the run fired. Always zero
    /// when [`ChurnParams::repair`] is off, and zero on a run whose
    /// network was never corrupted (repair is a no-op on healthy state).
    pub repair_entries: u64,
    /// Telemetry snapshots taken every [`ChurnParams::sample_every_us`]
    /// of virtual time, in ascending `t_us` order. Empty when sampling
    /// is off.
    pub samples: Vec<ChurnSample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Lookup,
    Join,
    Leave,
    /// Stabilization tick for one bucket of nodes.
    StabilizeBucket(u64),
    /// Resume the suspended lookup with this id (continuous mode only).
    Step(u64),
    /// Read-only telemetry snapshot (scheduled only when
    /// [`ChurnParams::sample_every_us`] is nonzero).
    Sample,
}

/// One timed online audit pass: merged into the accumulated report,
/// billed to `audit_us` (and, when accounting is on, to
/// [`Phase::Audit`] — one message per invariant check, wall-clock
/// time), and announced through the sink. Returns the number of
/// violations this pass found; no-op returning 0 when auditing is off.
fn audit_pass(overlay: &mut dyn Overlay, outcome: &mut ChurnOutcome, sink: &SinkHandle) -> u64 {
    if outcome.audit.is_none() {
        return 0;
    }
    let started = std::time::Instant::now();
    let report = overlay.audit_state(AuditScope::Online);
    let wall_us = started.elapsed().as_micros() as u64;
    outcome.audit_us = outcome.audit_us.saturating_add(wall_us);
    let violations = report.violations().len() as u64;
    sink.emit(|| TraceEvent::AuditRun {
        clean: report.is_clean(),
        checked: report.checked_nodes() as u64,
        violations,
    });
    overlay
        .phase_accountant()
        .bill(Phase::Audit, || PhaseCosts {
            calls: 1,
            msgs: report.checked_nodes() as u64,
            time_us: wall_us,
            ..PhaseCosts::default()
        });
    if let Some(acc) = outcome.audit.as_mut() {
        acc.merge(report);
    }
    violations
}

/// Pushes one read-only telemetry snapshot. Draws no RNG and mutates
/// nothing, so sampling cannot perturb the run it observes.
fn record_sample(
    overlay: &dyn Overlay,
    outcome: &mut ChurnOutcome,
    acct: &PhaseAccountant,
    t_us: SimTime,
    audit_violations: u64,
) {
    let mut phase_msgs = [0u64; 6];
    if let Some(table) = acct.snapshot() {
        for (i, (_, costs)) in table.iter().enumerate() {
            phase_msgs[i] = costs.msgs;
        }
    }
    let mut loads = overlay.query_loads();
    loads.sort_unstable();
    let rank = |q: f64| -> u64 {
        if loads.is_empty() {
            return 0;
        }
        let idx = ((q * loads.len() as f64).ceil() as usize).clamp(1, loads.len()) - 1;
        loads[idx]
    };
    outcome.samples.push(ChurnSample {
        t_us,
        live_nodes: overlay.len() as u64,
        phase_msgs,
        load_p50: rank(0.5),
        load_p99: rank(0.99),
        audit_violations,
        bytes_per_node: overlay.bytes_per_node(),
    });
}

/// Per-bucket membership index for [`StabilizePhase::Hashed`]: maps each
/// per-second stabilization bucket to the set of live tokens hashing into
/// it, maintained incrementally at every join and leave. A bucket tick
/// then touches only the nodes that actually fire — amortized O(1) per
/// membership event plus O(fired) per tick — instead of sweeping all `n`
/// tokens every simulated second. Tokens are stored sorted, so the fire
/// order within a bucket is identical to the full ascending sweep the
/// engine originally ran.
struct BucketIndex {
    period: u64,
    buckets: Vec<std::collections::BTreeSet<dht_core::overlay::NodeToken>>,
}

impl BucketIndex {
    /// Indexes the overlay's current population.
    fn new(overlay: &dyn Overlay, period: u64) -> Self {
        let mut idx = Self {
            period,
            buckets: vec![std::collections::BTreeSet::new(); period as usize],
        };
        for token in overlay.node_tokens() {
            idx.insert(token);
        }
        idx
    }

    fn bucket_of(&self, token: dht_core::overlay::NodeToken) -> usize {
        (dht_core::hash::splitmix64(token) % self.period) as usize
    }

    fn insert(&mut self, token: dht_core::overlay::NodeToken) {
        let b = self.bucket_of(token);
        self.buckets[b].insert(token);
    }

    fn remove(&mut self, token: dht_core::overlay::NodeToken) {
        let b = self.bucket_of(token);
        self.buckets[b].remove(&token);
    }

    /// Runs the stabilization (or, with `repair`, the self-stabilizing
    /// repair) routines of every node in `bucket`, in ascending token
    /// order. Returns the number of routines invoked and the entries
    /// repaired (always zero without `repair`). When the overlay's
    /// accountant is enabled, the tick is billed to
    /// [`Phase::Stabilize`] (or [`Phase::Repair`]) — one message per
    /// routing entry examined, via [`Overlay::maintenance_msgs`].
    fn fire(&self, overlay: &mut dyn Overlay, bucket: u64, repair: bool) -> (u64, u64) {
        let acct = overlay.phase_accountant();
        let count_msgs = acct.is_enabled();
        let mut calls = 0;
        let mut entries = 0;
        let mut msgs = 0;
        for &token in &self.buckets[bucket as usize] {
            if count_msgs {
                msgs += overlay.maintenance_msgs(token);
            }
            if repair {
                entries += overlay.repair_node(token);
            } else {
                overlay.stabilize_node(token);
            }
            calls += 1;
        }
        let phase = if repair {
            Phase::Repair
        } else {
            Phase::Stabilize
        };
        acct.bill(phase, || PhaseCosts {
            calls,
            msgs,
            repair_entries: entries,
            ..PhaseCosts::default()
        });
        (calls, entries)
    }
}

/// Builds the incremental bucket index when the phasing benefits from one
/// ([`StabilizePhase::Hashed`]); synchronized phasing keeps the plain
/// whole-network sweep.
fn maybe_bucket_index(
    overlay: &dyn Overlay,
    phase: StabilizePhase,
    period: u64,
) -> Option<BucketIndex> {
    match phase {
        StabilizePhase::Hashed => Some(BucketIndex::new(overlay, period)),
        StabilizePhase::Synchronized => None,
    }
}

/// Runs one per-second stabilization bucket: under [`StabilizePhase::Hashed`]
/// the nodes whose token hashes into `bucket` stabilize; under
/// [`StabilizePhase::Synchronized`] the whole network stabilizes on the
/// period's last bucket and the other buckets are no-ops. Returns the
/// number of per-node routines invoked.
///
/// This is the reference O(n)-sweep formulation; the churn engines use the
/// incremental [`BucketIndex`] for hashed phasing and fall back to this
/// sweep for synchronized phasing (and for callers like the convergence
/// experiment that stabilize a static population).
pub(crate) fn stabilize_bucket(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    bucket: u64,
) -> u64 {
    let acct = overlay.phase_accountant();
    let count_msgs = acct.is_enabled();
    let mut calls = 0;
    let mut msgs = 0;
    for token in overlay.node_tokens() {
        let fires = match phase {
            StabilizePhase::Hashed => dht_core::hash::splitmix64(token) % period == bucket,
            StabilizePhase::Synchronized => bucket + 1 == period,
        };
        if fires {
            if count_msgs {
                msgs += overlay.maintenance_msgs(token);
            }
            overlay.stabilize_node(token);
            calls += 1;
        }
    }
    acct.bill(Phase::Stabilize, || PhaseCosts {
        calls,
        msgs,
        ..PhaseCosts::default()
    });
    calls
}

/// [`stabilize_bucket`]'s repair-mode sibling: the same per-second timer
/// phasing, but each firing node runs [`Overlay::repair_node`] instead of
/// its stabilizer. Returns `(routines invoked, entries repaired)`. Used by
/// the churn engines when [`ChurnParams::repair`] is set and by the
/// recovery experiment, which drives repair over a static corrupted
/// population.
pub(crate) fn repair_bucket(
    overlay: &mut dyn Overlay,
    phase: StabilizePhase,
    period: u64,
    bucket: u64,
) -> (u64, u64) {
    let acct = overlay.phase_accountant();
    let count_msgs = acct.is_enabled();
    let mut calls = 0;
    let mut entries = 0;
    let mut msgs = 0;
    for token in overlay.node_tokens() {
        let fires = match phase {
            StabilizePhase::Hashed => dht_core::hash::splitmix64(token) % period == bucket,
            StabilizePhase::Synchronized => bucket + 1 == period,
        };
        if fires {
            if count_msgs {
                msgs += overlay.maintenance_msgs(token);
            }
            entries += overlay.repair_node(token);
            calls += 1;
        }
    }
    acct.bill(Phase::Repair, || PhaseCosts {
        calls,
        msgs,
        repair_entries: entries,
        ..PhaseCosts::default()
    });
    (calls, entries)
}

/// Runs the churn simulation on `overlay`, which should already contain
/// the starting population, under the [`TimeModel`] the parameters
/// select.
///
/// Per-node stabilization at uniformly distributed offsets is modelled by
/// splitting the period into per-second buckets: every second, the nodes
/// whose token hashes into that bucket run their stabilization routine —
/// statistically identical to each node keeping its own 30 s timer with a
/// uniform phase (see [`StabilizePhase`]).
pub fn run_churn(
    overlay: &mut dyn Overlay,
    params: ChurnParams,
    rng: &mut impl RngCore,
) -> ChurnOutcome {
    assert!(overlay.len() > 1, "churn needs a populated overlay");
    overlay.set_net_conditions(params.conditions);
    overlay.set_trace_sink(params.sink.clone());
    overlay.set_phase_accountant(params.accountant.clone());
    let mut outcome = ChurnOutcome {
        path_lens: Vec::with_capacity(params.lookups),
        timeouts: Vec::with_capacity(params.lookups),
        failures: 0,
        joins: 0,
        leaves: 0,
        final_size: 0,
        retries: Vec::with_capacity(params.lookups),
        latency_us: Vec::with_capacity(params.lookups),
        audit: params
            .audit
            .then(|| AuditReport::new(overlay.name(), AuditScope::Online)),
        peak_size: overlay.len(),
        stabilize_calls: 0,
        stabilize_rounds: 0,
        audit_us: 0,
        elapsed_us: Vec::new(),
        sim_end_us: 0,
        stranded: 0,
        repair_entries: 0,
        samples: Vec::new(),
    };
    match params.time {
        TimeModel::Rounds => run_rounds(overlay, &params, rng, &mut outcome),
        TimeModel::Continuous => run_continuous(overlay, &params, rng, &mut outcome),
    }
    audit_pass(overlay, &mut outcome, &params.sink);
    outcome.final_size = overlay.len();
    outcome
}

/// The lockstep engine: lookups buffered between membership events and
/// routed as instantaneous parallel batches.
fn run_rounds(
    overlay: &mut dyn Overlay,
    params: &ChurnParams,
    rng: &mut impl RngCore,
    outcome: &mut ChurnOutcome,
) {
    let period = params.stabilization_period_secs.max(1);
    let mut buckets = maybe_bucket_index(overlay, params.phase, period);
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule(exp_delay(params.lookup_rate, rng), Event::Lookup);
    if params.churn_rate > 0.0 {
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Join);
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Leave);
    }
    for bucket in 0..period {
        queue.schedule((bucket + 1) * SECOND, Event::StabilizeBucket(bucket));
    }
    if params.sample_every_us > 0 {
        queue.schedule(params.sample_every_us, Event::Sample);
    }

    let acct = overlay.phase_accountant();
    let mut last_viol = 0u64;
    let mut seen_lookups = 0usize;
    // Lookups arriving between two membership events are buffered with
    // their arrival ordinal and routed as one parallel batch right
    // before the next state mutation (join/leave/stabilization), the
    // next audit, or the end of the run. Sources, keys, and the
    // measurement window are drawn/decided at arrival time, so the
    // workload is identical to the sequential engine's.
    let mut pending: Vec<(usize, dht_core::overlay::NodeToken, u64)> = Vec::new();

    // Routes the buffered lookups as one batch and records the measured
    // ones (by arrival ordinal) into the outcome.
    let flush = |overlay: &mut dyn Overlay,
                 outcome: &mut ChurnOutcome,
                 pending: &mut Vec<(usize, dht_core::overlay::NodeToken, u64)>| {
        if pending.is_empty() {
            return;
        }
        let reqs: Vec<(dht_core::overlay::NodeToken, u64)> =
            pending.iter().map(|&(_, src, raw)| (src, raw)).collect();
        let traces = overlay.lookup_batch(&reqs, params.jobs.max(1));
        for ((ordinal, _, _), trace) in pending.drain(..).zip(traces) {
            let trace: LookupTrace = trace;
            if ordinal > params.warmup_lookups {
                outcome.path_lens.push(trace.path_len());
                outcome.timeouts.push(u64::from(trace.timeouts));
                outcome.retries.push(u64::from(trace.net.retries));
                outcome.latency_us.push(trace.net.latency_us);
                if !trace.outcome.is_success() {
                    outcome.failures += 1;
                }
            }
        }
    };

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Lookup => {
                seen_lookups += 1;
                if let Some(src) = overlay.random_node(rng) {
                    let raw: u64 = rng.gen();
                    pending.push((seen_lookups, src, raw));
                }
                if seen_lookups < params.warmup_lookups + params.lookups {
                    queue.schedule_in(exp_delay(params.lookup_rate, rng), Event::Lookup);
                } else {
                    // Last arrival: route everything still buffered so the
                    // run can stop without waiting for a membership event.
                    flush(overlay, outcome, &mut pending);
                }
            }
            Event::Join => {
                flush(overlay, outcome, &mut pending);
                if let Some(node) = overlay.join(rng) {
                    outcome.joins += 1;
                    outcome.peak_size = outcome.peak_size.max(overlay.len());
                    if let Some(idx) = buckets.as_mut() {
                        idx.insert(node);
                    }
                    params.sink.emit(|| TraceEvent::Join { node });
                    acct.bill(Phase::Join, || PhaseCosts {
                        calls: 1,
                        msgs: overlay.maintenance_msgs(node),
                        ..PhaseCosts::default()
                    });
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Join);
            }
            Event::Leave => {
                flush(overlay, outcome, &mut pending);
                // Keep at least a handful of nodes alive.
                if overlay.len() > 8 {
                    if let Some(node) = overlay.random_node(rng) {
                        // Teardown messages go to the links held *before*
                        // departure; computed only when accounting is on.
                        let msgs = if acct.is_enabled() {
                            overlay.maintenance_msgs(node)
                        } else {
                            0
                        };
                        if overlay.leave(node) {
                            outcome.leaves += 1;
                            if let Some(idx) = buckets.as_mut() {
                                idx.remove(node);
                            }
                            params.sink.emit(|| TraceEvent::Leave {
                                node,
                                graceful: true,
                            });
                            acct.bill(Phase::Leave, || PhaseCosts {
                                calls: 1,
                                msgs,
                                ..PhaseCosts::default()
                            });
                        }
                    }
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Leave);
            }
            Event::StabilizeBucket(bucket) => {
                flush(overlay, outcome, &mut pending);
                let (calls, entries) = match buckets.as_ref() {
                    Some(idx) => idx.fire(overlay, bucket, params.repair),
                    None if params.repair => repair_bucket(overlay, params.phase, period, bucket),
                    None => (stabilize_bucket(overlay, params.phase, period, bucket), 0),
                };
                outcome.stabilize_calls += calls;
                outcome.repair_entries += entries;
                // The last bucket closes a full stabilization round:
                // every online invariant must hold right now, mid-churn.
                if bucket + 1 == period {
                    let round = outcome.stabilize_rounds;
                    outcome.stabilize_rounds += 1;
                    params.sink.emit(|| TraceEvent::StabilizeRound {
                        round,
                        nodes: overlay.len() as u64,
                    });
                    last_viol = audit_pass(overlay, outcome, &params.sink);
                }
                queue.schedule_in(period * SECOND, Event::StabilizeBucket(bucket));
            }
            Event::Sample => {
                // Deliberately no flush: the sampler observes applied
                // state only, so enabling it cannot reorder the batch
                // stream.
                record_sample(overlay, outcome, &acct, now, last_viol);
                queue.schedule_in(params.sample_every_us, Event::Sample);
            }
            Event::Step(_) => unreachable!("rounds mode schedules no Step events"),
        }
        if outcome.path_lens.len() >= params.lookups {
            break;
        }
    }

    flush(overlay, outcome, &mut pending);
    outcome.sim_end_us = queue.now();
}

/// The discrete-event engine: each in-flight lookup is a suspended
/// [`LookupCursor`] resumed by a `Step` event when its per-hop reply
/// delay elapses, interleaving with joins, leaves, and the per-second
/// stabilization ticks on one virtual clock.
///
/// Arrival handling draws from `rng` in exactly the order the rounds
/// engine does (source, key, next inter-arrival gap), so with zero
/// message delays — where every walk completes within its arrival
/// instant — the two engines produce identical measurement streams.
fn run_continuous(
    overlay: &mut dyn Overlay,
    params: &ChurnParams,
    rng: &mut impl RngCore,
    outcome: &mut ChurnOutcome,
) {
    let period = params.stabilization_period_secs.max(1);
    let mut buckets = maybe_bucket_index(overlay, params.phase, period);
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule(exp_delay(params.lookup_rate, rng), Event::Lookup);
    if params.churn_rate > 0.0 {
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Join);
        queue.schedule(exp_delay(params.churn_rate, rng), Event::Leave);
    }
    for bucket in 0..period {
        queue.schedule((bucket + 1) * SECOND, Event::StabilizeBucket(bucket));
    }
    if params.sample_every_us > 0 {
        queue.schedule(params.sample_every_us, Event::Sample);
    }
    let acct = overlay.phase_accountant();
    let mut last_viol = 0u64;

    struct InFlight {
        ordinal: usize,
        cursor: Box<dyn LookupCursor>,
        started_at: SimTime,
    }

    let mut seen_lookups = 0usize;
    let mut next_id: u64 = 0;
    let mut in_flight: BTreeMap<u64, InFlight> = BTreeMap::new();

    // Completes one lookup: applies its deferred effects (in completion
    // order — the continuous engine's canonical stream) and records the
    // measured ones.
    let finalize =
        |overlay: &mut dyn Overlay, outcome: &mut ChurnOutcome, fl: InFlight, end: SimTime| {
            let (trace, fx) = fl.cursor.finish();
            overlay.apply_walk_effects(fx);
            if fl.ordinal > params.warmup_lookups {
                outcome.path_lens.push(trace.path_len());
                outcome.timeouts.push(u64::from(trace.timeouts));
                outcome.retries.push(u64::from(trace.net.retries));
                outcome.latency_us.push(trace.net.latency_us);
                outcome.elapsed_us.push(end.saturating_sub(fl.started_at));
                if !trace.outcome.is_success() {
                    outcome.failures += 1;
                }
            }
        };

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Lookup => {
                seen_lookups += 1;
                if let Some(src) = overlay.random_node(rng) {
                    let raw: u64 = rng.gen();
                    let cursor = overlay.lookup_begin(src, raw);
                    let id = next_id;
                    next_id += 1;
                    in_flight.insert(
                        id,
                        InFlight {
                            ordinal: seen_lookups,
                            cursor,
                            started_at: now,
                        },
                    );
                    // First step fires at the arrival instant (FIFO after
                    // anything already scheduled for `now`).
                    queue.schedule_in(0, Event::Step(id));
                }
                if seen_lookups < params.warmup_lookups + params.lookups {
                    queue.schedule_in(exp_delay(params.lookup_rate, rng), Event::Lookup);
                }
            }
            Event::Step(id) => {
                let Some(mut fl) = in_flight.remove(&id) else {
                    unreachable!("step for unknown lookup {id}");
                };
                if !overlay.contains(fl.cursor.current()) {
                    // The node holding the lookup departed while the walk
                    // was suspended: the lookup is stranded.
                    fl.cursor.strand();
                    outcome.stranded += 1;
                    finalize(overlay, outcome, fl, now);
                } else {
                    match fl.cursor.step(&*overlay) {
                        CursorStep::Forwarded { delay_us } => {
                            queue.schedule_in(delay_us, Event::Step(id));
                            in_flight.insert(id, fl);
                        }
                        CursorStep::Finished { delay_us } => {
                            // The final reply lands `delay_us` later; bill
                            // it without scheduling another event.
                            finalize(overlay, outcome, fl, now + delay_us);
                        }
                    }
                }
            }
            Event::Join => {
                if let Some(node) = overlay.join(rng) {
                    outcome.joins += 1;
                    outcome.peak_size = outcome.peak_size.max(overlay.len());
                    if let Some(idx) = buckets.as_mut() {
                        idx.insert(node);
                    }
                    params.sink.emit(|| TraceEvent::Join { node });
                    acct.bill(Phase::Join, || PhaseCosts {
                        calls: 1,
                        msgs: overlay.maintenance_msgs(node),
                        ..PhaseCosts::default()
                    });
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Join);
            }
            Event::Leave => {
                // Keep at least a handful of nodes alive.
                if overlay.len() > 8 {
                    if let Some(node) = overlay.random_node(rng) {
                        let msgs = if acct.is_enabled() {
                            overlay.maintenance_msgs(node)
                        } else {
                            0
                        };
                        if overlay.leave(node) {
                            outcome.leaves += 1;
                            if let Some(idx) = buckets.as_mut() {
                                idx.remove(node);
                            }
                            params.sink.emit(|| TraceEvent::Leave {
                                node,
                                graceful: true,
                            });
                            acct.bill(Phase::Leave, || PhaseCosts {
                                calls: 1,
                                msgs,
                                ..PhaseCosts::default()
                            });
                        }
                    }
                }
                queue.schedule_in(exp_delay(params.churn_rate, rng), Event::Leave);
            }
            Event::StabilizeBucket(bucket) => {
                let (calls, entries) = match buckets.as_ref() {
                    Some(idx) => idx.fire(overlay, bucket, params.repair),
                    None if params.repair => repair_bucket(overlay, params.phase, period, bucket),
                    None => (stabilize_bucket(overlay, params.phase, period, bucket), 0),
                };
                outcome.stabilize_calls += calls;
                outcome.repair_entries += entries;
                if bucket + 1 == period {
                    let round = outcome.stabilize_rounds;
                    outcome.stabilize_rounds += 1;
                    params.sink.emit(|| TraceEvent::StabilizeRound {
                        round,
                        nodes: overlay.len() as u64,
                    });
                    last_viol = audit_pass(overlay, outcome, &params.sink);
                }
                queue.schedule_in(period * SECOND, Event::StabilizeBucket(bucket));
            }
            Event::Sample => {
                record_sample(overlay, outcome, &acct, now, last_viol);
                queue.schedule_in(params.sample_every_us, Event::Sample);
            }
        }
        if outcome.path_lens.len() >= params.lookups && in_flight.is_empty() {
            break;
        }
    }
    outcome.sim_end_us = queue.now();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_overlay, OverlayKind};
    use dht_core::rng::stream;

    fn small_params(rate: f64) -> ChurnParams {
        ChurnParams {
            lookup_rate: 1.0,
            churn_rate: rate,
            stabilization_period_secs: 30,
            lookups: 300,
            warmup_lookups: 20,
            audit: false,
            conditions: NetConditions::ideal(),
            sink: SinkHandle::disabled(),
            jobs: 1,
            time: TimeModel::Rounds,
            phase: StabilizePhase::Hashed,
            repair: false,
            accountant: PhaseAccountant::disabled(),
            sample_every_us: 0,
        }
    }

    #[test]
    fn churn_run_produces_measurements() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
        let mut rng = stream(2, "churn-test");
        let out = run_churn(net.as_mut(), small_params(0.2), &mut rng);
        assert_eq!(out.path_lens.len(), 300);
        assert_eq!(out.timeouts.len(), 300);
        assert!(out.joins > 0, "joins should occur at R=0.2");
        assert!(out.leaves > 0, "leaves should occur at R=0.2");
        assert_eq!(out.failures, 0, "Cycloid under churn must not fail");
    }

    #[test]
    fn zero_churn_is_steady_state() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 128, 3);
        let mut rng = stream(4, "steady");
        let out = run_churn(net.as_mut(), small_params(0.0), &mut rng);
        assert_eq!(out.joins, 0);
        assert_eq!(out.leaves, 0);
        assert_eq!(out.final_size, 128);
        assert!(out.timeouts.iter().all(|&t| t == 0));
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = build_overlay(OverlayKind::Koorde, 128, seed);
            let mut rng = stream(seed, "det");
            run_churn(net.as_mut(), small_params(0.1), &mut rng).path_lens
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn audited_churn_reports_clean_state() {
        let mut net = build_overlay(OverlayKind::Chord, 128, 9);
        let mut rng = stream(10, "audit-churn");
        let mut params = small_params(0.2);
        params.audit = true;
        let out = run_churn(net.as_mut(), params, &mut rng);
        let audit = out.audit.expect("audit requested");
        assert!(audit.checked_nodes() > 0, "audit must run at least once");
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn audit_off_reports_nothing() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 64, 11);
        let mut rng = stream(12, "no-audit");
        let out = run_churn(net.as_mut(), small_params(0.1), &mut rng);
        assert!(out.audit.is_none());
    }

    #[test]
    fn lossy_churn_composes_and_stays_deterministic() {
        use dht_core::net::{FaultPlan, RetryPolicy};
        let run = || {
            let mut net = build_overlay(OverlayKind::Cycloid7, 128, 21);
            let mut rng = stream(22, "lossy-churn");
            let mut params = small_params(0.2);
            params.conditions =
                NetConditions::new(FaultPlan::lossy(5, 0.05), RetryPolicy::standard());
            run_churn(net.as_mut(), params, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.path_lens, b.path_lens);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.latency_us, b.latency_us);
        assert_eq!(a.retries.len(), 300);
        assert!(a.retries.iter().sum::<u64>() > 0, "5% loss must retry");
        // Zero-hop lookups (source owns the key) legitimately bill nothing,
        // so check the aggregate rather than every sample.
        assert!(a.latency_us.iter().sum::<u64>() > 0, "hops are billed");
    }

    #[test]
    fn churn_tracks_maintenance_counters() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
        let mut rng = stream(2, "counters");
        let out = run_churn(net.as_mut(), small_params(0.2), &mut rng);
        assert!(out.peak_size >= 256, "peak covers at least the start size");
        assert!(out.peak_size >= out.final_size);
        assert!(out.stabilize_calls > 0, "stabilization must run");
        assert!(out.stabilize_rounds > 0, "at least one full round");
        assert_eq!(out.audit_us, 0, "no audit requested, no audit time");
    }

    #[test]
    fn repair_mode_is_bit_identical_to_stabilization_under_churn() {
        let run = |repair: bool| {
            let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
            let mut rng = stream(2, "repair-churn");
            let mut params = small_params(0.2);
            params.audit = true;
            params.repair = repair;
            run_churn(net.as_mut(), params, &mut rng)
        };
        let plain = run(false);
        let repaired = run(true);
        // Repair subsumes stabilization: the same timers fire the same
        // state transitions, so every measurement stream matches.
        assert_eq!(plain.path_lens, repaired.path_lens);
        assert_eq!(plain.latency_us, repaired.latency_us);
        assert_eq!(plain.joins, repaired.joins);
        assert_eq!(plain.leaves, repaired.leaves);
        assert_eq!(plain.stabilize_calls, repaired.stabilize_calls);
        assert_eq!(plain.repair_entries, 0, "repair off never counts entries");
        assert!(repaired.audit.expect("audit requested").is_clean());
    }

    #[test]
    fn repair_mode_counts_nothing_on_a_steady_network() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 128, 3);
        let mut rng = stream(4, "repair-steady");
        let mut params = small_params(0.0);
        params.repair = true;
        let out = run_churn(net.as_mut(), params, &mut rng);
        assert!(out.stabilize_calls > 0, "repair timers must fire");
        assert_eq!(out.repair_entries, 0, "healthy network: nothing to repair");
    }

    #[test]
    fn continuous_repair_mode_matches_plain_stabilization() {
        let run = |repair: bool| {
            let mut net = build_overlay(OverlayKind::Chord, 128, 13);
            let mut rng = stream(14, "cont-repair");
            let mut params = continuous_params(0.3);
            params.repair = repair;
            run_churn(net.as_mut(), params, &mut rng)
        };
        let plain = run(false);
        let repaired = run(true);
        assert_eq!(plain.path_lens, repaired.path_lens);
        assert_eq!(plain.elapsed_us, repaired.elapsed_us);
        assert_eq!(plain.sim_end_us, repaired.sim_end_us);
        assert_eq!(plain.stabilize_calls, repaired.stabilize_calls);
    }

    #[test]
    fn churn_emits_membership_and_round_events() {
        use dht_core::obs::RingBufferSink;
        use std::sync::{Arc, Mutex};
        let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 16)));
        let mut net = build_overlay(OverlayKind::Chord, 128, 9);
        let mut rng = stream(10, "churn-events");
        let mut params = small_params(0.3);
        params.audit = true;
        params.sink = SinkHandle::new(Arc::clone(&ring));
        let out = run_churn(net.as_mut(), params, &mut rng);
        let events = ring.lock().unwrap().snapshot();
        let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Join { .. })),
            out.joins,
            "one Join event per executed join"
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Leave { graceful: true, .. })),
            out.leaves
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::StabilizeRound { .. })) as u64,
            out.stabilize_rounds
        );
        // One audit per round plus the final pass.
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::AuditRun { .. })) as u64,
            out.stabilize_rounds + 1
        );
        assert!(out.audit_us > 0, "audit passes are timed");
        assert!(
            count(&|e| matches!(e, TraceEvent::LookupStart { .. })) > 0,
            "lookup events flow through the same sink"
        );
    }

    #[test]
    fn viceroy_under_churn_never_times_out() {
        let mut net = build_overlay(OverlayKind::Viceroy, 256, 5);
        let mut rng = stream(6, "vchurn");
        let out = run_churn(net.as_mut(), small_params(0.4), &mut rng);
        assert!(out.timeouts.iter().all(|&t| t == 0));
        assert_eq!(out.failures, 0);
    }

    fn continuous_params(rate: f64) -> ChurnParams {
        use dht_core::net::{FaultPlan, RetryPolicy};
        let mut p = small_params(rate);
        p.time = TimeModel::Continuous;
        // `lossy` includes 20–80 ms uniform delays, so walks genuinely
        // suspend between hops.
        p.conditions = NetConditions::new(FaultPlan::lossy(5, 0.02), RetryPolicy::standard());
        p
    }

    #[test]
    fn continuous_run_measures_elapsed_time() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 256, 1);
        let mut rng = stream(2, "cont");
        let out = run_churn(net.as_mut(), continuous_params(0.2), &mut rng);
        assert_eq!(out.path_lens.len(), 300);
        assert_eq!(out.elapsed_us.len(), 300, "continuous mode times lookups");
        assert!(out.sim_end_us > 0, "the virtual clock advanced");
        // Satellite invariant: reported latency IS elapsed virtual time.
        assert_eq!(out.latency_us, out.elapsed_us);
    }

    #[test]
    fn continuous_run_is_deterministic_per_seed() {
        let run = || {
            let mut net = build_overlay(OverlayKind::Chord, 128, 13);
            let mut rng = stream(14, "cont-det");
            run_churn(net.as_mut(), continuous_params(0.3), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.path_lens, b.path_lens);
        assert_eq!(a.latency_us, b.latency_us);
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.sim_end_us, b.sim_end_us);
        assert_eq!(a.stranded, b.stranded);
    }

    #[test]
    fn rounds_mode_records_no_elapsed_time() {
        let mut net = build_overlay(OverlayKind::Cycloid7, 128, 3);
        let mut rng = stream(4, "rounds-elapsed");
        let out = run_churn(net.as_mut(), small_params(0.1), &mut rng);
        assert!(out.elapsed_us.is_empty());
        assert_eq!(out.stranded, 0);
        assert!(out.sim_end_us > 0);
    }

    #[test]
    fn bucket_index_matches_reference_sweep() {
        // The incremental index must fire exactly the tokens the O(n)
        // reference sweep fires, in the same ascending order, including
        // after churn has moved tokens in and out of buckets.
        let mut net = build_overlay(OverlayKind::Chord, 96, 17);
        let mut rng = stream(18, "bucket-index");
        let period = 30u64;
        let mut idx = BucketIndex::new(net.as_ref(), period);
        for step in 0..40 {
            if step % 3 == 0 {
                let victim = net.node_tokens()[step % net.len()];
                assert!(net.leave(victim));
                idx.remove(victim);
            } else {
                let node = net.join(&mut rng).expect("join succeeds");
                idx.insert(node);
            }
        }
        for bucket in 0..period {
            let expected: Vec<_> = net
                .node_tokens()
                .into_iter()
                .filter(|&t| dht_core::hash::splitmix64(t) % period == bucket)
                .collect();
            let got: Vec<_> = idx.buckets[bucket as usize].iter().copied().collect();
            assert_eq!(got, expected, "bucket {bucket}");
        }
    }

    #[test]
    fn accountant_bills_every_active_phase_in_both_time_models() {
        for time in [TimeModel::Rounds, TimeModel::Continuous] {
            let mut net = build_overlay(OverlayKind::Cycloid7, 128, 9);
            let mut rng = stream(10, "churn-billing");
            let acct = PhaseAccountant::enabled();
            let mut p = small_params(0.2);
            p.time = time;
            p.audit = true;
            p.accountant = acct.clone();
            let out = run_churn(net.as_mut(), p, &mut rng);
            let table = acct.snapshot().expect("enabled accountant snapshots");
            let ctx = format!("{time:?}");
            for phase in [
                Phase::Lookup,
                Phase::Stabilize,
                Phase::Join,
                Phase::Leave,
                Phase::Audit,
            ] {
                let costs = table.get(phase);
                assert!(costs.calls > 0, "{ctx}: no {} calls", phase.label());
                assert!(costs.msgs > 0, "{ctx}: no {} messages", phase.label());
            }
            // Lookup message counts stay tied to the engine's own path
            // measurements: at least one message per measured hop.
            let hops: u64 = out.path_lens.iter().map(|&l| l as u64).sum();
            assert!(table.get(Phase::Lookup).msgs >= hops, "{ctx}");
            // Every executed lookup bills one call; the engine also runs
            // warmup and any lookups already scheduled when measurement
            // completed, so the count is a floor, not an equality.
            assert!(
                table.get(Phase::Lookup).calls as usize >= out.path_lens.len() + 20,
                "{ctx}: fewer lookup calls than measured lookups"
            );
        }
    }

    #[test]
    fn sampler_records_monotone_cumulative_snapshots() {
        for time in [TimeModel::Rounds, TimeModel::Continuous] {
            let mut net = build_overlay(OverlayKind::Chord, 96, 11);
            let mut rng = stream(12, "churn-sampler");
            let mut p = small_params(0.1);
            p.time = time;
            p.audit = true;
            p.accountant = PhaseAccountant::enabled();
            p.sample_every_us = 20 * SECOND;
            let out = run_churn(net.as_mut(), p, &mut rng);
            assert!(
                out.samples.len() >= 2,
                "{time:?}: expected several samples, got {}",
                out.samples.len()
            );
            for pair in out.samples.windows(2) {
                assert!(pair[0].t_us < pair[1].t_us, "{time:?}: timestamps");
                for i in 0..pair[0].phase_msgs.len() {
                    assert!(
                        pair[0].phase_msgs[i] <= pair[1].phase_msgs[i],
                        "{time:?}: cumulative counts regressed"
                    );
                }
            }
            let last = out.samples.last().expect("samples recorded");
            assert!(last.live_nodes > 0, "{time:?}");
            assert!(last.bytes_per_node > 0.0, "{time:?}");
            assert!(last.load_p99 >= last.load_p50, "{time:?}");
        }
    }

    #[test]
    fn sampling_changes_no_measurement() {
        let run_with = |sample_every_us: u64| {
            let mut net = build_overlay(OverlayKind::Koorde, 96, 13);
            let mut rng = stream(14, "churn-sampler-eq");
            let mut p = small_params(0.15);
            p.audit = true;
            p.sample_every_us = sample_every_us;
            run_churn(net.as_mut(), p, &mut rng)
        };
        let base = run_with(0);
        let sampled = run_with(10 * SECOND);
        assert_eq!(base.path_lens, sampled.path_lens);
        assert_eq!(base.timeouts, sampled.timeouts);
        assert_eq!(base.latency_us, sampled.latency_us);
        assert_eq!(base.joins, sampled.joins);
        assert_eq!(base.leaves, sampled.leaves);
        assert_eq!(base.final_size, sampled.final_size);
        assert_eq!(base.stabilize_calls, sampled.stabilize_calls);
        assert!(base.samples.is_empty() && !sampled.samples.is_empty());
    }

    #[test]
    fn synchronized_phase_stabilizes_everyone_at_once() {
        let mut net = build_overlay(OverlayKind::Chord, 64, 5);
        let mut rng = stream(6, "sync-phase");
        let mut p = small_params(0.0);
        p.phase = StabilizePhase::Synchronized;
        p.lookups = 100;
        p.warmup_lookups = 0;
        let out = run_churn(net.as_mut(), p, &mut rng);
        // Every full round stabilizes the whole (static) network.
        assert_eq!(out.stabilize_calls, out.stabilize_rounds * 64);
    }
}
